"""Tests for final-safety certificates (section 8.3)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baplus.certificate import Certificate
from repro.common.errors import InvalidCertificate, LedgerError
from repro.common.params import TEST_PARAMS
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.node.catchup import verify_final_safety
from repro.sortition.roles import FINAL_STEP


@pytest.fixture(scope="module")
def final_sim():
    sim = Simulation(SimulationConfig(num_users=16, seed=111))
    sim.submit_payments(20)
    sim.run_rounds(3)
    return sim


class TestFinalCertificates:
    def test_final_rounds_carry_final_certificates(self, final_sim):
        node = final_sim.nodes[0]
        for round_number in (1, 2, 3):
            record = node.metrics.round_record(round_number)
            if record.kind == "final":
                certificate = node.chain.final_certificate_at(round_number)
                assert certificate is not None
                assert certificate.is_final
                assert certificate.value == node.chain.block_at(
                    round_number).block_hash

    def test_latest_final_round(self, final_sim):
        node = final_sim.nodes[0]
        assert node.chain.latest_final_round() == 3

    def test_verify_final_safety(self, final_sim):
        node = final_sim.nodes[0]
        verified_round = verify_final_safety(
            node.chain, backend=final_sim.backend, params=TEST_PARAMS)
        assert verified_round == 3

    def test_no_certificate_returns_none(self, final_sim):
        from repro.ledger.blockchain import Blockchain
        fresh = Blockchain({b"k" * 32: 5}, H(b"g"), 10)
        assert verify_final_safety(fresh, backend=final_sim.backend,
                                   params=TEST_PARAMS) is None

    def test_tampered_final_certificate_rejected(self, final_sim):
        node = final_sim.nodes[1]
        genuine = node.chain.final_certificate_at(3)
        truncated = Certificate(
            round_number=3, step=FINAL_STEP, value=genuine.value,
            votes=genuine.votes[:2])
        chain = node.chain
        chain.set_final_certificate(3, truncated)
        try:
            with pytest.raises(InvalidCertificate):
                verify_final_safety(chain, backend=final_sim.backend,
                                    params=TEST_PARAMS)
        finally:
            chain.set_final_certificate(3, genuine)

    def test_wrong_step_certificate_rejected(self, final_sim):
        node = final_sim.nodes[2]
        deciding = node.chain.certificate_at(3)  # step "1", not final
        chain = node.chain
        genuine = chain.final_certificate_at(3)
        chain.set_final_certificate(3, deciding)
        try:
            with pytest.raises(InvalidCertificate):
                verify_final_safety(chain, backend=final_sim.backend,
                                    params=TEST_PARAMS)
        finally:
            chain.set_final_certificate(3, genuine)

    def test_cannot_certify_future_round(self, final_sim):
        with pytest.raises(LedgerError):
            final_sim.nodes[0].chain.set_final_certificate(99, object())

    def test_pipelined_rounds_also_get_final_certificates(self):
        params = dataclasses.replace(TEST_PARAMS, pipeline_final_step=True)
        sim = Simulation(SimulationConfig(num_users=16, seed=112,
                                          params=params))
        sim.run_rounds(2)
        sim.env.run(until=sim.env.now + 2 * params.lambda_step)
        node = sim.nodes[0]
        assert node.chain.latest_final_round() is not None
        assert verify_final_safety(node.chain, backend=sim.backend,
                                   params=params) is not None
