"""End-to-end automatic recovery: partition -> halt -> daemon -> healed.

The full section 8.2 story without any harness intervention: a long
partition exhausts MaxSteps on both sides, nodes halt (HangForever), the
clock-driven recovery daemons fire after the partition heals, and the
network converges back onto one chain and can commit blocks again.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary import FilterChain, Partitioner
from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig
from repro.node.recovery import RecoveryDaemon, attach_recovery_daemons

# Small MaxSteps so partitions halt quickly; short recovery interval so
# daemons fire within the test window.
PARAMS = dataclasses.replace(
    TEST_PARAMS, max_steps=9, lambda_step=1.0, lambda_block=2.0,
    lambda_priority=0.5, lambda_stepvar=0.5, recovery_interval=30.0)


class TestAutomaticRecovery:
    def test_partition_halt_then_automatic_recovery(self):
        sim = Simulation(SimulationConfig(num_users=16, seed=91,
                                          params=PARAMS))
        controls = FilterChain(sim.network)
        partition = Partitioner(controls,
                                [set(range(8)), set(range(8, 16))])
        # Partition from the start; heal at t=40 (after MaxSteps burns).
        partition.schedule(sim.env, start=0.0, end=40.0)
        daemons = attach_recovery_daemons(sim.nodes, skew_per_node=0.01,
                                          resume_target=1)

        for node in sim.nodes:
            node.start(1)
        sim.env.run(until=25.0)
        assert all(node.halted for node in sim.nodes)

        # Heal + let the daemons run a recovery attempt or two.
        sim.env.run(until=400.0)
        assert all(not node.halted for node in sim.nodes)
        assert sum(d.recoveries for d in daemons) > 0
        # Liveness fully restored: block production resumed and round 1
        # finally committed, identically everywhere.
        assert all(node.chain.height >= 1 for node in sim.nodes)
        assert len({node.chain.block_at(1).block_hash
                    for node in sim.nodes}) == 1

    def test_daemon_idle_when_healthy(self):
        sim = Simulation(SimulationConfig(num_users=12, seed=92,
                                          params=PARAMS))
        daemons = attach_recovery_daemons(sim.nodes)
        sim.run_rounds(1, time_limit=200.0)
        # Healthy run: daemons never fired a recovery.
        assert all(d.recoveries == 0 for d in daemons)
        assert len(sim.agreed_hashes(1)) == 1

    def test_daemon_validation(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=93,
                                          params=PARAMS))
        with pytest.raises(ValueError):
            RecoveryDaemon(sim.nodes[0], safety_margin=-1)


class TestForkMonitor:
    def test_clean_run_sees_no_foreign_chains(self):
        sim = Simulation(SimulationConfig(num_users=12, seed=94))
        sim.run_rounds(2)
        assert all(not node.fork_monitor for node in sim.nodes)

    def test_forked_vote_is_noticed(self):
        """A vote binding to an unknown prev-hash lands in the monitor."""
        from repro.baplus.messages import make_vote
        from repro.crypto.hashing import H
        from repro.network.message import vote_envelope

        sim = Simulation(SimulationConfig(num_users=8, seed=95))
        node = sim.nodes[0]
        stranger = sim.nodes[1]
        foreign = make_vote(
            sim.backend, stranger.keypair.secret, stranger.keypair.public,
            node.chain.next_round, "1", H(b"sort"), b"proof",
            H(b"some-other-chain"), H(b"value"))
        node.handle_envelope(vote_envelope(b"x", foreign))
        assert node.fork_monitor.get(H(b"some-other-chain")) == 1