"""Tests for the pending-transaction pool."""

from __future__ import annotations

import pytest

from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.account import AccountState
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import make_transaction


@pytest.fixture
def backend():
    return FastBackend()


@pytest.fixture
def users(backend):
    return [backend.keypair(H(b"mp-user", bytes([i]))) for i in range(4)]


def _tx(backend, sender, recipient, amount, nonce, note=b""):
    return make_transaction(backend, sender.secret, sender.public,
                            recipient.public, amount, nonce, note=note)


class TestMempool:
    def test_add_and_contains(self, backend, users):
        pool = Mempool()
        tx = _tx(backend, users[0], users[1], 1, 0)
        assert pool.add(tx)
        assert tx.txid in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self, backend, users):
        pool = Mempool()
        tx = _tx(backend, users[0], users[1], 1, 0)
        assert pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1

    def test_byte_cap(self, backend, users):
        tx = _tx(backend, users[0], users[1], 1, 0, note=b"\x00" * 100)
        pool = Mempool(max_bytes=tx.size + 10)
        assert pool.add(tx)
        assert not pool.add(_tx(backend, users[0], users[1], 1, 1,
                                note=b"\x00" * 100))

    def test_assemble_respects_block_size(self, backend, users):
        pool = Mempool()
        state = AccountState({users[0].public: 100})
        txs = [_tx(backend, users[0], users[1], 1, n, note=b"\x00" * 50)
               for n in range(10)]
        for tx in txs:
            pool.add(tx)
        chosen = pool.assemble(state, max_block_bytes=txs[0].size * 3 + 1)
        assert 1 <= len(chosen) <= 3
        assert sum(t.size for t in chosen) <= txs[0].size * 3 + 1

    def test_assemble_produces_valid_sequence(self, backend, users):
        pool = Mempool()
        state = AccountState({users[0].public: 5})
        # Only the first few fit the balance.
        for n in range(10):
            pool.add(_tx(backend, users[0], users[1], 1, n))
        chosen = pool.assemble(state, max_block_bytes=10**6)
        assert len(chosen) == 5
        assert state.would_accept(chosen)

    def test_assemble_skips_nonce_gaps(self, backend, users):
        pool = Mempool()
        state = AccountState({users[0].public: 100})
        pool.add(_tx(backend, users[0], users[1], 1, 3))  # future nonce
        assert pool.assemble(state, 10**6) == []

    def test_prune_committed(self, backend, users):
        pool = Mempool()
        state = AccountState({users[0].public: 100})
        committed = _tx(backend, users[0], users[1], 1, 0)
        pending = _tx(backend, users[0], users[1], 1, 1)
        pool.add(committed)
        pool.add(pending)
        state.apply(committed)
        pool.prune_committed([committed], state)
        assert committed.txid not in pool
        assert pending.txid in pool

    def test_prune_drops_replayed_nonces(self, backend, users):
        pool = Mempool()
        state = AccountState({users[0].public: 100})
        # A conflicting tx with the same nonce got committed instead.
        loser = _tx(backend, users[0], users[2], 1, 0)
        winner = _tx(backend, users[0], users[1], 1, 0)
        pool.add(loser)
        state.apply(winner)
        pool.prune_committed([winner], state)
        assert loser.txid not in pool

    def test_size_accounting(self, backend, users):
        pool = Mempool()
        tx = _tx(backend, users[0], users[1], 1, 0)
        pool.add(tx)
        assert pool.size_bytes == tx.size
        pool.remove([tx.txid])
        assert pool.size_bytes == 0

    def test_invalid_max_bytes(self):
        with pytest.raises(ValueError):
            Mempool(max_bytes=0)
