"""Tests for the message-path runtime: router, verification cache, wiring.

Covers the refactor's safety claims:

* routed dispatch preserves the validate-before-relay contract and
  rejects wiring bugs (double registration, unknown kinds);
* the shared :class:`VerificationCache` memoizes only context-independent
  checks, keyed by full verification inputs, so adversarial reuse of a
  signature (or msg_id) on different contents can never launder a
  verdict;
* cache on vs off produces bit-identical simulated results.
"""

from __future__ import annotations

import pytest

from repro.adversary import EquivocatingProposerNode
from repro.common.errors import NetworkError, SignatureError, VRFError
from repro.crypto.backend import CachedBackend, FastBackend
from repro.crypto.counting import CountingBackend, CryptoOpCounts
from repro.experiments.harness import Simulation, SimulationConfig
from repro.network.message import Envelope
from repro.runtime import MessageRouter, VerificationCache


# ---------------------------------------------------------------------------
# MessageRouter
# ---------------------------------------------------------------------------


def _envelope(kind: str, payload: object = "payload") -> Envelope:
    return Envelope(origin=b"origin", kind=kind, payload=payload, size=10)


class TestMessageRouter:
    def test_dispatch_routes_payload_to_handler(self):
        router = MessageRouter()
        seen = []
        router.register("vote", lambda payload: seen.append(payload) or True)
        assert router.dispatch(_envelope("vote", "ballot")) is True
        assert seen == ["ballot"]

    def test_relay_decision_passes_through(self):
        router = MessageRouter()
        router.register("tx", lambda payload: False)
        assert router.dispatch(_envelope("tx")) is False

    def test_unknown_kind_dropped_and_counted(self):
        router = MessageRouter()
        assert router.dispatch(_envelope("mystery")) is False
        assert router.dispatch(_envelope("mystery")) is False
        assert router.unknown_kinds == 2

    def test_double_registration_rejected(self):
        router = MessageRouter()
        router.register("vote", lambda payload: True)
        with pytest.raises(NetworkError):
            router.register("vote", lambda payload: True)

    def test_replace_allows_reregistration(self):
        router = MessageRouter()
        router.register("fork", lambda payload: False)
        router.register("fork", lambda payload: True, replace=True)
        assert router.dispatch(_envelope("fork")) is True

    def test_empty_kind_rejected(self):
        router = MessageRouter()
        with pytest.raises(NetworkError):
            router.register("", lambda payload: True)

    def test_unregister_and_introspection(self):
        router = MessageRouter()
        router.register("chain", lambda payload: True)
        assert router.is_registered("chain")
        assert router.kinds() == frozenset({"chain"})
        router.unregister("chain")
        router.unregister("chain")  # idempotent
        assert not router.is_registered("chain")
        assert router.dispatch(_envelope("chain")) is False


# ---------------------------------------------------------------------------
# VerificationCache
# ---------------------------------------------------------------------------


@pytest.fixture
def counting():
    return CountingBackend(FastBackend())


@pytest.fixture
def keypair(counting):
    return counting.keypair(b"k" * 32)


class TestVerificationCache:
    def test_signature_hit_miss_accounting(self, counting, keypair):
        cache = VerificationCache(counts=counting.counts)
        signature = counting.sign(keypair.secret, b"msg")
        for _ in range(3):
            cache.verify(counting, keypair.public, b"msg", signature)
        assert cache.misses == 1
        assert cache.hits == 2
        assert counting.counts.verifies == 1  # inner reached once
        assert counting.counts.cache_hits == 2
        assert counting.counts.cache_misses == 1
        assert counting.counts.verifications_avoided == 2
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_vrf_hit_returns_cached_beta(self, counting, keypair):
        cache = VerificationCache()
        beta, proof = counting.vrf_prove(keypair.secret, b"alpha")
        first = cache.vrf_verify(counting, keypair.public, proof, b"alpha")
        second = cache.vrf_verify(counting, keypair.public, proof, b"alpha")
        assert first == second == beta
        assert counting.counts.vrf_verifies == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_negative_results_cached_and_reraised(self, counting, keypair):
        cache = VerificationCache()
        with pytest.raises(SignatureError):
            cache.verify(counting, keypair.public, b"msg", b"forged")
        with pytest.raises(SignatureError):
            cache.verify(counting, keypair.public, b"msg", b"forged")
        assert counting.counts.verifies == 1  # failure memoized too
        with pytest.raises(VRFError):
            cache.vrf_verify(counting, keypair.public, b"bogus", b"alpha")
        with pytest.raises(VRFError):
            cache.vrf_verify(counting, keypair.public, b"bogus", b"alpha")
        assert counting.counts.vrf_verifies == 1

    def test_key_includes_message_bytes(self, counting, keypair):
        """A valid signature for message A must not validate message B."""
        cache = VerificationCache()
        signature = counting.sign(keypair.secret, b"message-a")
        cache.verify(counting, keypair.public, b"message-a", signature)
        with pytest.raises(SignatureError):
            cache.verify(counting, keypair.public, b"message-b", signature)
        assert cache.hits == 0  # different inputs, different key

    def test_eviction_bounds_entries(self, counting, keypair):
        cache = VerificationCache(max_entries=8)
        for i in range(40):
            message = b"m%d" % i
            signature = counting.sign(keypair.secret, message)
            cache.verify(counting, keypair.public, message, signature)
        assert len(cache) <= 8

    def test_stats_shape(self):
        cache = VerificationCache()
        assert cache.stats() == {"hits": 0, "misses": 0, "negative_hits": 0,
                                 "sort_hits": 0, "sort_misses": 0,
                                 "hit_rate": 0.0, "entries": 0,
                                 "batch_primed": 0}

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            VerificationCache(max_entries=0)


class TestCachedBackend:
    def test_wraps_and_delegates(self, counting, keypair):
        cache = VerificationCache(counts=counting.counts)
        backend = CachedBackend(counting, cache)
        assert backend.name == f"cached({counting.name})"
        signature = backend.sign(keypair.secret, b"msg")
        backend.verify(keypair.public, b"msg", signature)
        backend.verify(keypair.public, b"msg", signature)
        assert counting.counts.verifies == 1
        assert cache.hits == 1
        beta, proof = backend.vrf_prove(keypair.secret, b"alpha")
        assert backend.vrf_verify(keypair.public, proof, b"alpha") == beta
        assert backend.vrf_verify(keypair.public, proof, b"alpha") == beta
        assert counting.counts.vrf_verifies == 1


# ---------------------------------------------------------------------------
# Simulation wiring + determinism
# ---------------------------------------------------------------------------


def _run(cache_on: bool, *, seed: int = 7, rounds: int = 2,
         num_users: int = 10, backend=None, malicious_class=None,
         num_malicious: int = 0) -> Simulation:
    sim = Simulation(
        SimulationConfig(num_users=num_users, seed=seed,
                         num_malicious=num_malicious,
                         use_verification_cache=cache_on),
        backend=backend, malicious_class=malicious_class,
    )
    sim.submit_payments(10)
    sim.run_rounds(rounds)
    return sim


class TestSimulationWiring:
    def test_cache_enabled_by_default_and_hit(self):
        sim = _run(cache_on=True)
        assert sim.verification_cache is not None
        # Gossip fan-out means most verifications repeat across nodes.
        assert sim.verification_cache.hits > sim.verification_cache.misses

    def test_cache_disabled_leaves_backend_bare(self):
        sim = _run(cache_on=False)
        assert sim.verification_cache is None
        assert not isinstance(sim.backend, CachedBackend)

    def test_counting_backend_sees_only_misses(self):
        counting = CountingBackend(FastBackend())
        sim = _run(cache_on=True, backend=counting)
        counts: CryptoOpCounts = counting.counts
        cache = sim.verification_cache
        assert counts.cache_hits == cache.hits
        assert counts.cache_misses == cache.misses
        # Every cached check either hit or reached the inner backend.
        assert counts.total_verifications == cache.misses

    def test_identical_results_cache_on_vs_off(self):
        """The acceptance criterion: the cache is pure memoization —
        same seed must produce the same blocks and the same timings."""
        on = _run(cache_on=True, seed=11, rounds=2)
        off = _run(cache_on=False, seed=11, rounds=2)
        for round_number in (1, 2):
            hashes_on = {node.chain.block_at(round_number).block_hash
                         for node in on.nodes}
            hashes_off = {node.chain.block_at(round_number).block_hash
                          for node in off.nodes}
            assert hashes_on == hashes_off
            assert len(hashes_on) == 1
            assert (on.round_latencies(round_number)
                    == off.round_latencies(round_number))
        assert on.env.now == off.env.now

    def test_single_user_payments_no_crash(self):
        """num_users == 1 used to crash rng.integers(0); now a no-op."""
        sim = Simulation(SimulationConfig(num_users=1, num_observers=1,
                                          seed=3))
        sim.submit_payments(5)
        assert all(len(node.mempool) == 0 for node in sim.nodes)


class TestEquivocationNotLaundered:
    def test_shared_signature_never_validates_other_contents(self):
        """Unit-level laundering proof: an adversary re-attaching a
        cached-valid signature to different bytes gets a rejection, even
        though the (public, signature) pair is already in the cache."""
        backend = FastBackend()
        cache = VerificationCache()
        cached = CachedBackend(backend, cache)
        kp = backend.keypair(b"e" * 32)
        signature = backend.sign(kp.secret, b"block-A")
        cached.verify(kp.public, b"block-A", signature)  # now cached valid
        with pytest.raises(SignatureError):
            cached.verify(kp.public, b"block-B", signature)

    def test_equivocating_proposer_with_cache(self):
        """End-to-end: with the shared cache on, equivocators still never
        win and safety holds — cached *crypto* verdicts do not bypass the
        per-node equivocation tracking (context-dependent, uncached)."""
        sim = _run(cache_on=True, seed=13, rounds=2, num_users=16,
                   num_malicious=3, malicious_class=EquivocatingProposerNode)
        malicious_keys = {node.keypair.public for node in sim.nodes[13:16]}
        for round_number in (1, 2):
            assert len(sim.agreed_hashes(round_number)) == 1
        honest = sim.nodes[:13]
        for node in honest:
            for block in node.chain.blocks[1:]:
                assert block.proposer not in malicious_keys
        # The cache did real work during the adversarial run.
        assert sim.verification_cache.hits > 0


class TestChainSync:
    def test_laggard_bootstraps_beyond_announcer_neighborhood(self):
        """Up-to-date nodes relay a matching announcement, so the flood
        reaches laggards that are not direct neighbors of the announcer."""
        from repro.ledger.blockchain import Blockchain
        from repro.node import ChainSync

        sim = _run(cache_on=True, seed=5, rounds=2, num_users=12)
        laggard = sim.nodes[3]
        laggard.chain = Blockchain(
            laggard.chain.initial_balances, laggard.chain.genesis_seed,
            sim.config.params.seed_refresh_interval)
        syncs = [ChainSync(node) for node in sim.nodes]
        syncs[0].announce()
        sim.env.run()
        assert laggard.chain.height == 2
        assert laggard.chain.tip_hash == sim.nodes[0].chain.tip_hash
        assert syncs[3].adopted == 1

    def test_invalid_announcement_rejected_not_relayed(self):
        from repro.ledger.blockchain import Blockchain
        from repro.node import ChainSync
        from repro.node.catchup import ChainAnnouncement

        sim = _run(cache_on=True, seed=5, rounds=2, num_users=12)
        victim = sim.nodes[5]
        victim.chain = Blockchain(
            victim.chain.initial_balances, victim.chain.genesis_seed,
            sim.config.params.seed_refresh_interval)
        sync = ChainSync(victim)
        source = sim.nodes[0].chain
        forged = ChainAnnouncement(
            blocks=source.blocks[1:],
            certificates={},  # stripped certificates must fail replay
        )
        relay = victim.handle_envelope(Envelope(
            origin=b"adv", kind="chain", payload=forged, size=forged.size))
        assert relay is False
        assert victim.chain.height == 0
        assert sync.rejected == 1

    def test_close_unregisters(self):
        from repro.node import ChainSync

        sim = _run(cache_on=True, seed=5, rounds=1, num_users=10)
        sync = ChainSync(sim.nodes[0])
        assert sim.nodes[0].router.is_registered("chain")
        sync.close()
        assert not sim.nodes[0].router.is_registered("chain")
