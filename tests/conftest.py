"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.encoding import encode
from repro.crypto.backend import Ed25519Backend, FastBackend
from repro.crypto.hashing import H


@pytest.fixture
def fast_backend():
    """Simulation-grade crypto backend (one registry per test)."""
    return FastBackend()


@pytest.fixture(scope="session")
def ed_backend():
    """Real Ed25519/ECVRF backend (stateless, safe to share)."""
    return Ed25519Backend()


def key_seed(label: str, index: int = 0) -> bytes:
    """Deterministic 32-byte key seed for tests."""
    return H(b"test-key", encode([label, index]))


@pytest.fixture
def keypair(fast_backend):
    return fast_backend.keypair(key_seed("default"))


@pytest.fixture
def chaos_seeds():
    """The deterministic seed block for chaos sweeps (20 seeds).

    Every chaos test draws from this one block so the whole suite
    exercises the same reproducible scenarios; rotate it here (not in
    individual tests) if a protocol change makes a generated scenario
    degenerate.
    """
    return list(range(100, 120))
