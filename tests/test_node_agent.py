"""Unit tests for Node message handling and relay policies (section 8.4)."""

from __future__ import annotations

import pytest

from repro.baplus.messages import make_vote
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.transaction import make_transaction
from repro.network.message import Envelope, vote_envelope


@pytest.fixture
def sim():
    return Simulation(SimulationConfig(num_users=8, seed=3))


def _vote_from(sim, node, round_number=1, step="1", value=None):
    return make_vote(
        sim.backend, node.keypair.secret, node.keypair.public,
        round_number, step, H(b"sorthash"), b"proof",
        node.chain.tip_hash, value if value is not None else H(b"value"),
    )


class TestVoteRelay:
    def test_valid_vote_buffered_and_relayed(self, sim):
        node = sim.nodes[0]
        vote = _vote_from(sim, sim.nodes[1])
        assert node.handle_envelope(vote_envelope(b"x", vote))
        assert vote in node.buffer.messages(1, "1")

    def test_duplicate_key_not_relayed(self, sim):
        """At most one relayed message per (pk, round, step) — §8.4."""
        node = sim.nodes[0]
        first = _vote_from(sim, sim.nodes[1], value=H(b"a"))
        second = _vote_from(sim, sim.nodes[1], value=H(b"b"))
        assert node.handle_envelope(vote_envelope(b"x", first))
        assert not node.handle_envelope(vote_envelope(b"x", second))
        # Second message is not even buffered.
        assert len(node.buffer.messages(1, "1")) == 1

    def test_bad_signature_dropped(self, sim):
        node = sim.nodes[0]
        vote = _vote_from(sim, sim.nodes[1])
        forged = make_vote(sim.backend, sim.nodes[2].keypair.secret,
                           sim.nodes[1].keypair.public, 1, "1",
                           vote.sorthash, vote.sortproof, vote.prev_hash,
                           vote.value)
        assert not node.handle_envelope(vote_envelope(b"x", forged))
        assert not node.buffer.messages(1, "1")

    def test_stale_round_dropped(self, sim):
        node = sim.nodes[0]
        vote = _vote_from(sim, sim.nodes[1], round_number=0)
        assert not node.handle_envelope(vote_envelope(b"x", vote))

    def test_future_round_buffered(self, sim):
        """Nodes slightly behind still accept and relay future-round
        votes (steps are not synchronized across users, section 4)."""
        node = sim.nodes[0]
        vote = _vote_from(sim, sim.nodes[1], round_number=3)
        assert node.handle_envelope(vote_envelope(b"x", vote))
        assert vote in node.buffer.messages(3, "1")


class TestTransactionRelay:
    def test_valid_transaction_added(self, sim):
        node = sim.nodes[0]
        sender = sim.nodes[1]
        tx = make_transaction(sim.backend, sender.keypair.secret,
                              sender.keypair.public,
                              node.keypair.public, 1, 0)
        envelope = Envelope(origin=b"x", kind="tx", payload=tx,
                            size=tx.size)
        assert node.handle_envelope(envelope)
        assert tx.txid in node.mempool
        # Duplicate not relayed again.
        assert not node.handle_envelope(envelope)

    def test_malformed_transaction_dropped(self, sim):
        node = sim.nodes[0]
        sender = sim.nodes[1]
        tx = make_transaction(sim.backend, sender.keypair.secret,
                              sender.keypair.public,
                              node.keypair.public, 1, 0)
        forged = type(tx)(sender=tx.sender, recipient=tx.recipient,
                          amount=999, nonce=tx.nonce,
                          signature=tx.signature)
        envelope = Envelope(origin=b"x", kind="tx", payload=forged,
                            size=forged.size)
        assert not node.handle_envelope(envelope)
        assert len(node.mempool) == 0


class TestUnknownKinds:
    def test_unknown_kind_not_relayed(self, sim):
        node = sim.nodes[0]
        envelope = Envelope(origin=b"x", kind="mystery", payload=None,
                            size=10)
        assert not node.handle_envelope(envelope)

    def test_extra_handler_invoked(self, sim):
        node = sim.nodes[0]
        seen = []
        node.router.register("custom", lambda payload: (
            seen.append(payload) or True))
        envelope = Envelope(origin=b"x", kind="custom", payload="hello",
                            size=10)
        assert node.handle_envelope(envelope)
        assert seen == ["hello"]


class TestPruning:
    def test_old_state_pruned_after_round(self, sim):
        sim.run_rounds(2)
        node = sim.nodes[0]
        # Buffers for round 1 are gone; nothing below round 2 remains.
        assert all(r >= 2 for r in node.buffer.rounds_buffered())
        assert all(key[1] >= 2 for key in node._seen_votes)
        assert all(r >= 2 for r in node._trackers)


class TestOwnVotesCounted:
    def test_gossip_vote_self_delivery(self, sim):
        """A committee member counts its own vote without the network
        echoing it back (gossip never loops a message to its origin)."""
        node = sim.nodes[0]
        vote = _vote_from(sim, node)
        node._gossip_vote(vote)
        assert vote in node.buffer.messages(1, "1")
