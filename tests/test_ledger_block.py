"""Tests for blocks, block validation, the blockchain and storage."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidBlock, LedgerError
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.account import AccountState
from repro.ledger.block import (
    Block,
    empty_block,
    empty_block_hash,
    validate_block,
)
from repro.ledger.blockchain import Blockchain
from repro.ledger.storage import ShardedStore, shard_of_key, stores_round
from repro.ledger.transaction import make_transaction
from repro.sortition.seed import propose_seed


@pytest.fixture
def backend():
    return FastBackend()


@pytest.fixture
def alice(backend):
    return backend.keypair(H(b"alice"))


@pytest.fixture
def bob(backend):
    return backend.keypair(H(b"bob"))


def _real_block(backend, proposer, round_number, prev_hash, prev_seed,
                timestamp=10.0, transactions=()):
    seed, seed_proof = propose_seed(backend, proposer.secret, prev_seed,
                                    round_number)
    return Block(
        round_number=round_number, prev_hash=prev_hash,
        timestamp=timestamp, seed=seed, seed_proof=seed_proof,
        proposer=proposer.public, proposer_vrf_hash=H(b"vrf"),
        proposer_vrf_proof=b"proof", proposer_priority=H(b"prio"),
        transactions=tuple(transactions),
    )


class TestEmptyBlock:
    def test_deterministic_across_constructions(self):
        a = empty_block(3, H(b"prev"))
        b = empty_block(3, H(b"prev"))
        assert a.block_hash == b.block_hash
        assert a.block_hash == empty_block_hash(3, H(b"prev"))

    def test_distinct_per_round_and_parent(self):
        assert empty_block_hash(3, H(b"x")) != empty_block_hash(4, H(b"x"))
        assert empty_block_hash(3, H(b"x")) != empty_block_hash(3, H(b"y"))

    def test_is_empty(self):
        assert empty_block(1, H(b"p")).is_empty
        assert empty_block(1, H(b"p")).payload_size == 0


class TestValidateBlock:
    def _state(self, alice):
        return AccountState({alice.public: 100})

    def test_valid_block_passes(self, backend, alice, bob):
        state = self._state(alice)
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 5, 0)
        block = _real_block(backend, alice, 1, H(b"prev"), b"seed0",
                            transactions=[tx])
        validate_block(block, backend=backend, state=state,
                       prev_hash=H(b"prev"), round_number=1,
                       prev_timestamp=0.0, now=10.0)

    def test_wrong_prev_hash(self, backend, alice):
        block = _real_block(backend, alice, 1, H(b"prev"), b"seed0")
        with pytest.raises(InvalidBlock):
            validate_block(block, backend=backend, state=self._state(alice),
                           prev_hash=H(b"other"), round_number=1,
                           prev_timestamp=0.0, now=10.0)

    def test_wrong_round(self, backend, alice):
        block = _real_block(backend, alice, 1, H(b"prev"), b"seed0")
        with pytest.raises(InvalidBlock):
            validate_block(block, backend=backend, state=self._state(alice),
                           prev_hash=H(b"prev"), round_number=2,
                           prev_timestamp=0.0, now=10.0)

    def test_stale_timestamp(self, backend, alice):
        block = _real_block(backend, alice, 1, H(b"prev"), b"seed0",
                            timestamp=5.0)
        with pytest.raises(InvalidBlock):
            validate_block(block, backend=backend, state=self._state(alice),
                           prev_hash=H(b"prev"), round_number=1,
                           prev_timestamp=7.0, now=10.0)

    def test_future_timestamp(self, backend, alice):
        block = _real_block(backend, alice, 1, H(b"prev"), b"seed0",
                            timestamp=99999.0)
        with pytest.raises(InvalidBlock):
            validate_block(block, backend=backend, state=self._state(alice),
                           prev_hash=H(b"prev"), round_number=1,
                           prev_timestamp=0.0, now=10.0)

    def test_invalid_transactions(self, backend, alice, bob):
        overspend = make_transaction(backend, alice.secret, alice.public,
                                     bob.public, 1000, 0)
        block = _real_block(backend, alice, 1, H(b"prev"), b"seed0",
                            transactions=[overspend])
        with pytest.raises(InvalidBlock):
            validate_block(block, backend=backend, state=self._state(alice),
                           prev_hash=H(b"prev"), round_number=1,
                           prev_timestamp=0.0, now=10.0)

    def test_empty_block_always_valid(self, backend, alice):
        block = empty_block(1, H(b"prev"))
        validate_block(block, backend=backend, state=self._state(alice),
                       prev_hash=H(b"prev"), round_number=1,
                       prev_timestamp=0.0, now=10.0)

    def test_wrong_empty_block_rejected(self, backend, alice):
        block = empty_block(2, H(b"prev"))  # wrong round
        with pytest.raises(InvalidBlock):
            validate_block(block, backend=backend, state=self._state(alice),
                           prev_hash=H(b"prev"), round_number=1,
                           prev_timestamp=0.0, now=10.0)


class TestBlockchain:
    def _chain(self, alice, bob):
        return Blockchain({alice.public: 60, bob.public: 40}, H(b"g"), 10)

    def test_genesis(self, alice, bob):
        chain = self._chain(alice, bob)
        assert chain.height == 0
        assert chain.next_round == 1
        assert chain.state.total_weight == 100

    def test_append_empty_advances_seed(self, alice, bob):
        chain = self._chain(alice, bob)
        tip = chain.tip_hash
        chain.append(empty_block(1, tip))
        assert chain.height == 1
        assert chain.seed_of_round(1) != chain.seed_of_round(0)

    def test_append_real_block_applies_transactions(self, backend, alice,
                                                    bob):
        chain = self._chain(alice, bob)
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 10, 0)
        block = _real_block(backend, alice, 1, chain.tip_hash,
                            chain.seed_of_round(0), transactions=[tx])
        chain.append(block)
        assert chain.state.balance(alice.public) == 50
        assert chain.state.balance(bob.public) == 50
        assert chain.seed_of_round(1) == block.seed

    def test_append_rejects_wrong_round(self, alice, bob):
        chain = self._chain(alice, bob)
        with pytest.raises(LedgerError):
            chain.append(empty_block(5, chain.tip_hash))

    def test_append_rejects_wrong_parent(self, alice, bob):
        chain = self._chain(alice, bob)
        with pytest.raises(LedgerError):
            chain.append(empty_block(1, H(b"not-the-tip")))

    def test_fork_from_rebuilds_state(self, backend, alice, bob):
        chain = self._chain(alice, bob)
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 10, 0)
        block = _real_block(backend, alice, 1, chain.tip_hash,
                            chain.seed_of_round(0), transactions=[tx])
        chain.append(block)
        chain.append(empty_block(2, chain.tip_hash))

        rebuilt = chain.fork_from(chain.blocks[1:])
        assert rebuilt.height == 2
        assert rebuilt.tip_hash == chain.tip_hash
        assert rebuilt.state.balance(bob.public) == 50

    def test_shares_prefix(self, alice, bob):
        a = self._chain(alice, bob)
        b = self._chain(alice, bob)
        a.append(empty_block(1, a.tip_hash))
        b.append(empty_block(1, b.tip_hash))
        assert a.shares_prefix_with(b) == 2  # genesis + round 1


class TestShardedStorage:
    def test_assignment_is_partition(self):
        keys = [H(b"user", bytes([i])) for i in range(10)]
        for round_number in range(20):
            holders = [k for k in keys if stores_round(k, round_number, 5)]
            for key in holders:
                assert round_number % 5 == shard_of_key(key, 5)

    def test_single_shard_stores_everything(self):
        key = H(b"u")
        assert all(stores_round(key, r, 1) for r in range(10))

    def test_storage_accounting(self):
        store = ShardedStore(2)
        key = H(b"user")
        block = empty_block(shard_of_key(key, 2), H(b"prev"))
        assert store.record_block(key, block, certificate_bytes=100)
        account = store.account(key)
        assert account.blocks_stored == 1
        assert account.certificate_bytes == 100
        assert account.total_bytes == block.size + 100

    def test_off_shard_round_not_stored(self):
        store = ShardedStore(2)
        key = H(b"user")
        other_round = 1 - shard_of_key(key, 2)
        assert not store.record_block(key, empty_block(other_round,
                                                       H(b"p")))

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedStore(0)
