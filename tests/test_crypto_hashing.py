"""Tests for the hashing helpers."""

from __future__ import annotations

import hashlib

from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    H,
    HASH_DOMAIN,
    HASHLEN_BITS,
    hash_fraction,
    hash_to_int,
    sha512,
)


class TestH:
    def test_matches_sha256(self):
        assert H(b"abc") == hashlib.sha256(b"abc").digest()

    def test_multi_part_concatenates(self):
        assert H(b"ab", b"c") == H(b"abc")

    def test_length(self):
        assert len(H(b"x")) * 8 == HASHLEN_BITS

    def test_domain_constant(self):
        assert HASH_DOMAIN == 2 ** HASHLEN_BITS


class TestSha512:
    def test_matches_stdlib(self):
        assert sha512(b"abc") == hashlib.sha512(b"abc").digest()

    def test_multi_part(self):
        assert sha512(b"a", b"bc") == sha512(b"abc")


class TestConversions:
    def test_hash_to_int_range(self):
        value = hash_to_int(b"anything")
        assert 0 <= value < HASH_DOMAIN

    def test_hash_fraction_range(self):
        assert 0.0 <= hash_fraction(H(b"x")) < 1.0

    def test_hash_fraction_extremes(self):
        assert hash_fraction(bytes(32)) == 0.0
        assert hash_fraction(b"\xff" * 32) < 1.0


@given(st.binary(max_size=64))
def test_h_deterministic_property(data):
    assert H(data) == H(data)
    assert 0.0 <= hash_fraction(H(data)) < 1.0
