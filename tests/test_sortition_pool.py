"""Pool sortition vs. the per-user oracle.

The aggregated population stands on one claim: the vectorized screen in
:mod:`repro.sortition.pool` selects *exactly* the accounts the scalar
per-user path selects, with bit-identical proofs and sub-user counts.
These tests hammer that claim on random stake vectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import SortitionError
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.common.encoding import encode
from repro.sortition.pool import pool_fractions, pool_select
from repro.sortition.selection import (
    SELECTION_STATS,
    hash_to_fraction,
    sortition,
)


def make_pool(backend, n, rng, max_weight=5):
    secrets = []
    for i in range(n):
        kp = backend.keypair(H(b"pool-key", encode(int(i))))
        secrets.append(kp.secret)
    weights = rng.integers(0, max_weight + 1, size=n).astype(np.int64)
    return secrets, weights


def oracle_winners(backend, secrets, weights, tau, total, seed, role):
    """The unchanged scalar path, run slot by slot."""
    winners = {}
    for slot, (secret, weight) in enumerate(zip(secrets, weights)):
        if weight == 0:
            continue
        proof = sortition(backend, secret, seed, tau, role,
                          int(weight), total)
        if proof.j > 0:
            winners[slot] = proof
    return winners


class TestOracleEquivalence:
    @pytest.mark.parametrize("trial", range(8))
    def test_pool_matches_per_user_path(self, trial):
        backend = FastBackend()
        rng = np.random.default_rng(1000 + trial)
        secrets, weights = make_pool(backend, 48, rng)
        total = int(weights.sum())
        if total == 0:
            pytest.skip("degenerate stake draw")
        seed = H(b"seed", encode(trial))
        role = b"role:" + bytes([trial])
        tau = float(rng.integers(1, max(2, total)))
        expected = oracle_winners(backend, secrets, weights, tau, total,
                                  seed, role)
        result = pool_select(backend, secrets, weights, tau, total,
                             seed, role)
        assert set(result.winners) == set(expected)
        for slot, proof in result.winners.items():
            assert proof == expected[slot]  # hash, proof, and exact j

    def test_extreme_tau_selects_all_staked(self):
        backend = FastBackend()
        rng = np.random.default_rng(7)
        secrets, weights = make_pool(backend, 20, rng)
        total = int(weights.sum())
        seed, role = H(b"s"), b"r"
        result = pool_select(backend, secrets, weights, float(total * 2),
                             total, seed, role)
        staked = set(np.flatnonzero(weights).tolist())
        # p >= 1: every staked account is a candidate AND a winner
        # (B(0; w, 1) = 0 so any fraction clears it, j = w).
        assert set(result.winners) == staked
        assert result.candidates == len(staked)
        for slot, proof in result.winners.items():
            assert proof.j == weights[slot]

    def test_zero_weight_slots_never_selected(self):
        backend = FastBackend()
        rng = np.random.default_rng(11)
        secrets, weights = make_pool(backend, 30, rng)
        weights[::2] = 0
        total = int(weights.sum())
        result = pool_select(backend, secrets, weights, 10.0, total,
                             H(b"s"), b"r")
        assert all(weights[slot] > 0 for slot in result.winners)
        assert result.evaluated == int(np.count_nonzero(weights))


class TestFractions:
    def test_fractions_match_scalar_hash_path(self):
        backend = FastBackend()
        rng = np.random.default_rng(3)
        secrets, weights = make_pool(backend, 16, rng)
        alpha = H(b"alpha")
        fractions = pool_fractions(backend, secrets, weights, alpha)
        for slot, secret in enumerate(secrets):
            if weights[slot] == 0:
                assert np.isnan(fractions[slot])
            else:
                vrf_hash, _ = backend.vrf_prove(secret, alpha)
                assert fractions[slot] == hash_to_fraction(vrf_hash)

    def test_length_mismatch_rejected(self):
        backend = FastBackend()
        with pytest.raises(SortitionError):
            pool_fractions(backend, [b"x" * 32], np.ones(2), H(b"a"))


class TestStats:
    def test_pool_counters_advance(self):
        backend = FastBackend()
        rng = np.random.default_rng(5)
        secrets, weights = make_pool(backend, 25, rng)
        total = int(weights.sum())
        before = SELECTION_STATS.as_dict()
        result = pool_select(backend, secrets, weights, 8.0, total,
                             H(b"s"), b"r")
        delta = SELECTION_STATS.delta_since(before)
        assert delta["pool_evaluations"] == result.evaluated
        assert delta["pool_candidates"] == result.candidates
        assert delta["pool_selected"] == len(result.winners)

    def test_invalid_inputs_rejected(self):
        backend = FastBackend()
        secrets, weights = make_pool(backend, 4,
                                     np.random.default_rng(1))
        with pytest.raises(SortitionError):
            pool_select(backend, secrets, weights, 0.0,
                        int(weights.sum()), H(b"s"), b"r")
        with pytest.raises(SortitionError):
            pool_select(backend, secrets, weights, 5.0, 0, H(b"s"), b"r")
