"""Tests for the committee-size analysis (Figure 3, Appendix B)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.committee import (
    FIGURE3_EPSILON,
    best_threshold,
    certificate_forgery_log2,
    check_paper_step_parameters,
    committee_size_for,
    figure3_curve,
    final_step_safety,
    violation_probability,
)


class TestViolationProbability:
    def test_paper_operating_point(self):
        """h=80%, tau=2000, T=0.685 must give ~5e-9 (the paper's claim)."""
        p = check_paper_step_parameters()
        assert 1e-9 < p < 1e-8

    def test_monotone_decreasing_in_tau(self):
        probabilities = [violation_probability(tau, 0.685, 0.80)
                         for tau in (200, 500, 1000, 2000)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_monotone_decreasing_in_h(self):
        probabilities = [violation_probability(2000, 0.685, h)
                         for h in (0.76, 0.80, 0.85, 0.90)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_extreme_thresholds_are_bad(self):
        """T too close to h kills liveness; T at 2/3 kills safety —
        the optimum is interior."""
        mid = violation_probability(2000, 0.685, 0.80)
        low = violation_probability(2000, 0.667, 0.80)
        high = violation_probability(2000, 0.79, 0.80)
        assert mid < low
        assert mid < high

    def test_input_validation(self):
        with pytest.raises(ValueError):
            violation_probability(0, 0.685, 0.8)
        with pytest.raises(ValueError):
            violation_probability(2000, 0.685, 0.0)


class TestBestThreshold:
    def test_paper_threshold_recovered(self):
        """The optimizer should land on T ~ 0.685 at the paper's point."""
        threshold, _ = best_threshold(2000, 0.80)
        assert abs(threshold - 0.685) < 0.02


class TestCommitteeSizeFor:
    def test_reproduces_paper_tau_step(self):
        """Figure 3's starred point: tau ~ 2000 at h = 80%."""
        tau, threshold = committee_size_for(0.80)
        assert 1800 <= tau <= 2200
        assert abs(threshold - 0.685) < 0.03

    def test_committee_shrinks_with_honesty(self):
        tau_80, _ = committee_size_for(0.80)
        tau_90, _ = committee_size_for(0.90)
        assert tau_90 < tau_80 / 2

    def test_committee_explodes_toward_two_thirds(self):
        """Figure 3's left edge: h -> 2/3 forces huge committees."""
        tau_76, _ = committee_size_for(0.76)
        tau_80, _ = committee_size_for(0.80)
        assert tau_76 > 1.5 * tau_80

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            committee_size_for(0.70, epsilon=1e-18, tau_max=500)


class TestFigure3Curve:
    def test_curve_is_monotone(self):
        points = figure3_curve([0.78, 0.82, 0.86, 0.90])
        sizes = [point.committee_size for point in points]
        assert sizes == sorted(sizes, reverse=True)
        assert all(p.threshold > 2 / 3 for p in points)

    def test_default_epsilon(self):
        assert FIGURE3_EPSILON == 5e-9


class TestFinalStepAndForgery:
    def test_final_step_far_safer_than_ordinary(self):
        assert final_step_safety() < check_paper_step_parameters() / 10

    def test_certificate_forgery_beyond_paper_bound(self):
        """Paper: < 2^-166 per step for tau > 1000. Our exact tail is
        even smaller; it must at least clear the paper's bound."""
        assert certificate_forgery_log2(tau=1000, threshold=0.685) < -166
        assert certificate_forgery_log2() < -166

    def test_forgery_not_a_tail_when_adversary_dominates(self):
        assert certificate_forgery_log2(
            tau=100, threshold=0.685, honest_fraction=0.05) == 0.0

    def test_forgery_log_is_finite(self):
        value = certificate_forgery_log2()
        assert math.isfinite(value)
