"""Edge-case tests for remaining uncovered branches."""

from __future__ import annotations

import pytest

from repro.common.errors import LedgerError, NetworkError
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.block import empty_block
from repro.node.metrics import NodeMetrics, RoundRecord
from repro.node.proposal import ProposalTracker
from repro.node.registry import BlockRegistry


class TestBlockRegistry:
    def test_fetch_unknown_hash_raises(self):
        registry = BlockRegistry()
        with pytest.raises(LedgerError):
            registry.fetch(H(b"never-built"))

    def test_fetch_counts_slow_path(self):
        registry = BlockRegistry()
        block = empty_block(1, H(b"p"))
        registry.register(block)
        assert block.block_hash in registry
        assert registry.fetch(block.block_hash) is block
        assert registry.fetches == 1
        assert len(registry) == 1


class TestProposalTrackerEdges:
    def test_best_block_without_any_priority(self):
        tracker = ProposalTracker(1)
        assert tracker.best_block() is None

    def test_observe_block_without_proposer(self):
        from repro.sim.loop import Environment
        tracker = ProposalTracker(1)
        assert not tracker.observe_block(empty_block(1, H(b"p")),
                                         Environment())


class TestMetricsEdges:
    def test_finalize_kind_unknown_round_is_noop(self):
        metrics = NodeMetrics()
        metrics.finalize_kind(7, "final")  # must not raise
        assert metrics.rounds == []

    def test_finalize_kind_updates_in_place(self):
        metrics = NodeMetrics()
        metrics.record_round(RoundRecord(
            round_number=1, start_time=0, proposal_done_time=1,
            ba_done_time=2, end_time=3, kind="tentative", block_hash=b"h",
            is_empty=False, payload_bytes=0, binary_steps=1))
        metrics.finalize_kind(1, "final")
        assert metrics.round_record(1).kind == "final"
        # Other fields preserved.
        assert metrics.round_record(1).end_time == 3


class TestGossipSendToEdges:
    def test_send_to_non_neighbor_rejected(self):
        # 30 nodes with ~8 neighbors each: strangers are guaranteed.
        sim = Simulation(SimulationConfig(num_users=30, seed=5))
        iface = sim.network.interfaces[0]
        stranger = next(i for i in range(30)
                        if i != 0 and i not in iface.neighbors)
        from repro.network.message import Envelope
        with pytest.raises(NetworkError):
            iface.send_to(Envelope(origin=b"o", kind="t", payload=None,
                                   size=10), [stranger])

    def test_send_to_while_disconnected_is_noop(self):
        sim = Simulation(SimulationConfig(num_users=6, seed=5))
        iface = sim.network.interfaces[0]
        iface.disconnected = True
        from repro.network.message import Envelope
        iface.send_to(Envelope(origin=b"o", kind="t", payload=None,
                               size=10), list(iface.neighbors))
        sim.env.run(until=1.0)
        assert iface.bytes_sent == 0


class TestHarnessEdges:
    def test_no_observers_property_empty(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=6))
        assert sim.observers == []

    def test_round_latencies_before_any_round(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=6))
        assert sim.round_latencies(1) == []

    def test_agreed_hashes_partial_progress(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=6))
        assert sim.agreed_hashes(1) == set()


class TestScaledParams:
    def test_zero_weight_context_rejected(self):
        from repro.baplus.context import BAContext
        from repro.common.errors import SortitionError
        with pytest.raises(SortitionError):
            BAContext(seed=H(b"s"), weights={}, total_weight=0,
                      last_block_hash=H(b"t"))

    def test_context_weights_frozen(self):
        from repro.baplus.context import BAContext
        ctx = BAContext.from_weights(H(b"s"), {b"k" * 32: 5}, H(b"t"))
        with pytest.raises(TypeError):
            ctx.weights[b"x" * 32] = 10  # type: ignore[index]
