"""Tests for the vote buffer and node metrics records."""

from __future__ import annotations

from repro.baplus.buffer import VoteBuffer
from repro.baplus.messages import VoteMessage
from repro.node.metrics import NodeMetrics, RoundRecord
from repro.sim.loop import Environment


def _vote(round_number: int, step: str, voter: bytes = b"v") -> VoteMessage:
    return VoteMessage(voter=voter, round_number=round_number, step=step,
                       sorthash=b"h", sortproof=b"p", prev_hash=b"prev",
                       value=b"val", signature=b"sig")


class TestVoteBuffer:
    def test_bucket_indexing(self):
        env = Environment()
        buffer = VoteBuffer(env)
        buffer.add(_vote(1, "1"))
        buffer.add(_vote(1, "2"))
        buffer.add(_vote(2, "1"))
        assert len(buffer.messages(1, "1")) == 1
        assert len(buffer.messages(1, "2")) == 1
        assert len(buffer.messages(2, "1")) == 1
        assert buffer.messages(3, "1") == []

    def test_signal_pulses_waiters(self):
        env = Environment()
        buffer = VoteBuffer(env)
        got = []

        def waiter():
            yield buffer.signal(1, "1").next_event()
            got.append(env.now)

        env.process(waiter())
        env.schedule(2, lambda: buffer.add(_vote(1, "1")))
        env.run()
        assert got == [2.0]

    def test_add_without_signal_waiters_is_fine(self):
        env = Environment()
        buffer = VoteBuffer(env)
        buffer.add(_vote(1, "1"))  # no signal ever requested

    def test_prune_before(self):
        env = Environment()
        buffer = VoteBuffer(env)
        for round_number in (1, 2, 3):
            buffer.add(_vote(round_number, "1"))
        buffer.prune_before(3)
        assert buffer.rounds_buffered() == {3}
        assert buffer.messages(1, "1") == []

    def test_live_bucket_iteration(self):
        """CountVotes indexes into the live list; appends during
        iteration must be visible."""
        env = Environment()
        buffer = VoteBuffer(env)
        bucket = buffer.messages(1, "1")
        buffer.add(_vote(1, "1", b"a"))
        assert len(bucket) == 1
        buffer.add(_vote(1, "1", b"b"))
        assert len(bucket) == 2


class TestRoundRecord:
    def _record(self):
        return RoundRecord(
            round_number=1, start_time=10.0, proposal_done_time=12.0,
            ba_done_time=15.0, end_time=16.0, kind="final",
            block_hash=b"h", is_empty=False, payload_bytes=100,
            binary_steps=1)

    def test_segment_arithmetic(self):
        record = self._record()
        assert record.duration == 6.0
        assert record.proposal_duration == 2.0
        assert record.ba_duration == 3.0
        assert record.final_step_duration == 1.0
        assert (record.proposal_duration + record.ba_duration
                + record.final_step_duration) == record.duration

    def test_metrics_lookup(self):
        metrics = NodeMetrics()
        record = self._record()
        metrics.record_round(record)
        assert metrics.round_record(1) is record
        assert metrics.round_record(2) is None

    def test_step_durations(self):
        metrics = NodeMetrics()
        metrics.record_step(1, "1", 0.5)
        metrics.record_step(1, "final", 0.7)
        assert metrics.step_durations == [(1, "1", 0.5), (1, "final", 0.7)]
