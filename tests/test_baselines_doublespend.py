"""Tests for double-spend analysis and the related-systems comparison."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.baselines.doublespend import (
    catch_up_probability,
    confirmation_latency_seconds,
    confirmations_needed,
    double_spend_probability,
    risk_curve,
    speedup_table,
)
from repro.baselines.related import (
    BITCOIN,
    BYZCOIN,
    HONEY_BADGER,
    algorand_profile,
    comparison_rows,
    dominates,
)


class TestCatchUp:
    def test_gamblers_ruin_known_values(self):
        assert catch_up_probability(1, 0.25) == pytest.approx(1 / 3)
        assert catch_up_probability(2, 0.25) == pytest.approx(1 / 9)

    def test_majority_attacker_always_wins(self):
        assert catch_up_probability(10, 0.5) == 1.0
        assert catch_up_probability(10, 0.6) == 1.0

    def test_no_deficit_trivial(self):
        assert catch_up_probability(0, 0.1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            catch_up_probability(1, 1.0)


class TestDoubleSpend:
    def test_rosenfeld_exact_values(self):
        """Published exact values (Rosenfeld 2014, Table 1)."""
        assert double_spend_probability(6, 0.10) == pytest.approx(
            5.914e-4, rel=1e-2)
        assert double_spend_probability(6, 0.30) == pytest.approx(
            0.1564, rel=1e-2)
        # (z=1, q=0.1) is exactly 0.2 in the negative-binomial model;
        # Nakamoto's Poisson approximation gives the oft-quoted 0.2045.
        assert double_spend_probability(1, 0.10) == pytest.approx(0.2)

    def test_zero_confirmations_always_lose(self):
        assert double_spend_probability(0, 0.1) == 1.0

    def test_powerless_attacker(self):
        assert double_spend_probability(6, 0.0) == 0.0

    def test_monotone_decreasing_in_z(self):
        values = [double_spend_probability(z, 0.2) for z in range(0, 8)]
        assert values == sorted(values, reverse=True)

    def test_monotone_increasing_in_q(self):
        values = [double_spend_probability(6, q)
                  for q in (0.05, 0.1, 0.2, 0.3, 0.4)]
        assert values == sorted(values)

    def test_majority_attacker_always_succeeds(self):
        assert double_spend_probability(50, 0.51) == pytest.approx(1.0)


class TestConfirmationsNeeded:
    def test_bitcoin_folklore_six_blocks(self):
        """The '6 confirmations' rule the paper's hour-long wait rests
        on: q = 10%, ~0.1% risk."""
        assert confirmations_needed(0.10, 1e-3) == 6

    def test_stronger_attacker_needs_deeper(self):
        assert confirmations_needed(0.25, 1e-3) > confirmations_needed(
            0.10, 1e-3)

    def test_latency_seconds(self):
        assert confirmation_latency_seconds(0.10, 1e-3) == 3600.0

    def test_unreachable_risk(self):
        with pytest.raises(ValueError):
            confirmations_needed(0.45, 1e-12, z_max=5)

    def test_risk_validation(self):
        with pytest.raises(ValueError):
            confirmations_needed(0.1, 0.0)


class TestSpeedupTable:
    def test_paper_order_of_magnitude(self):
        """Bitcoin needs ~an hour; Algorand ~22 s: >100x faster
        confirmation at comparable assurance."""
        rows = speedup_table()
        by_q = {row["q"]: row for row in rows}
        assert by_q[0.10]["bitcoin_wait_s"] == 3600.0
        assert by_q[0.10]["speedup"] > 100

    def test_risk_curve_shape(self):
        curve = risk_curve(0.2)
        assert curve[0] == (0, 1.0)
        assert curve[-1][1] < 0.01


class TestRelatedSystems:
    def test_rows_sorted_by_latency(self):
        rows = comparison_rows()
        latencies = [row.latency_seconds for row in rows]
        assert latencies == sorted(latencies)

    def test_paper_reported_numbers(self):
        assert HONEY_BADGER.latency_seconds == 300.0
        assert BYZCOIN.latency_seconds == 35.0
        assert BITCOIN.latency_seconds == 3600.0
        assert HONEY_BADGER.participants == 104

    def test_algorand_unique_combination(self):
        """The paper's positioning: only Algorand is simultaneously
        decentralized, fork-free, and robust to adaptive adversaries."""
        algorand = algorand_profile()
        others = [BITCOIN, HONEY_BADGER, BYZCOIN]
        assert algorand.decentralized
        assert not algorand.forks_possible
        assert algorand.adaptive_adversary
        for other in others:
            assert not (other.decentralized
                        and not other.forks_possible
                        and other.adaptive_adversary)

    def test_algorand_dominates_bitcoin(self):
        assert dominates(algorand_profile(), BITCOIN)

    def test_no_one_dominates_algorand(self):
        algorand = algorand_profile()
        for other in (BITCOIN, HONEY_BADGER, BYZCOIN):
            assert not dominates(other, algorand)


@given(z=st.integers(min_value=0, max_value=12),
       q=st.floats(min_value=0.0, max_value=0.45))
def test_double_spend_is_probability(z, q):
    value = double_spend_probability(z, q)
    assert 0.0 <= value <= 1.0
