"""Long-haul soak: many rounds with a live transaction stream.

Earlier integration tests inject all payments up front; real deployments
see transactions arriving *while* consensus runs. This soak drives an
8-round run with payments gossiped mid-flight at random offsets and
checks sustained liveness, safety, and bounded state growth.
"""

from __future__ import annotations

import pytest

from repro.baplus.protocol import FINAL
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.transaction import make_transaction

ROUNDS = 8


@pytest.fixture(scope="module")
def soak_sim():
    sim = Simulation(SimulationConfig(num_users=16, seed=121,
                                      initial_balance=50))

    def submitter():
        nonces = {}
        for burst in range(ROUNDS * 2):
            yield sim.env.timeout(1.3)
            for offset in range(4):
                index = (burst * 4 + offset) % 16
                node = sim.nodes[index]
                public = node.keypair.public
                if node.chain.state.balance(public) < 1:
                    continue
                nonce = nonces.get(
                    index, node.mempool.next_nonce_for(node.chain.state,
                                                       public))
                recipient = sim.nodes[(index + 7) % 16].keypair.public
                tx = make_transaction(sim.backend, node.keypair.secret,
                                      public, recipient, 1, nonce)
                nonces[index] = nonce + 1
                node.submit_transaction(tx)

    sim.env.process(submitter(), "tx-stream")
    sim.run_rounds(ROUNDS)
    return sim


class TestSoak:
    def test_all_rounds_agree(self, soak_sim):
        for round_number in range(1, ROUNDS + 1):
            assert len(soak_sim.agreed_hashes(round_number)) == 1

    def test_chains_identical(self, soak_sim):
        assert soak_sim.all_chains_equal()

    def test_mostly_final_consensus(self, soak_sim):
        kinds = [soak_sim.nodes[0].metrics.round_record(r).kind
                 for r in range(1, ROUNDS + 1)]
        assert kinds.count(FINAL) >= ROUNDS - 1

    def test_streamed_transactions_committed(self, soak_sim):
        committed = sum(len(block.transactions)
                        for block in soak_sim.nodes[0].chain.blocks[1:])
        assert committed >= 30

    def test_money_conserved(self, soak_sim):
        for node in soak_sim.nodes:
            assert node.chain.state.total_weight == 16 * 50

    def test_latency_stable_over_time(self, soak_sim):
        """No drift: late rounds are no slower than early ones."""
        early = max(soak_sim.round_latencies(2))
        late = max(soak_sim.round_latencies(ROUNDS))
        assert late < 3 * early

    def test_state_bounded(self, soak_sim):
        """Pruning keeps per-node round state from accumulating."""
        for node in soak_sim.nodes:
            assert len(node._trackers) <= 3
            assert len(node.buffer.rounds_buffered()) <= 3

    def test_weight_history_full_depth(self, soak_sim):
        """Snapshots exist for every round (look-back support)."""
        node = soak_sim.nodes[0]
        for round_number in range(0, ROUNDS + 1):
            assert node.chain.weights_at(round_number) is not None
