"""Tests for the pluggable crypto backends (shared behavioural contract)."""

from __future__ import annotations

import pytest

from repro.common.errors import CryptoError, SignatureError, VRFError
from repro.crypto.backend import Ed25519Backend, FastBackend, default_backend
from repro.crypto.hashing import H


@pytest.fixture(params=["fast", "ed25519"])
def backend(request):
    if request.param == "fast":
        return FastBackend()
    return Ed25519Backend()


class TestBackendContract:
    """Both backends must satisfy the same interface semantics."""

    def test_keypair_deterministic(self, backend):
        seed = H(b"seed-a")
        kp1 = backend.keypair(seed)
        kp2 = backend.keypair(seed)
        assert kp1.public == kp2.public
        assert kp1.secret == seed

    def test_keypair_seed_length_enforced(self, backend):
        with pytest.raises(CryptoError):
            backend.keypair(b"short")

    def test_distinct_seeds_distinct_keys(self, backend):
        kp1 = backend.keypair(H(b"a"))
        kp2 = backend.keypair(H(b"b"))
        assert kp1.public != kp2.public

    def test_sign_verify(self, backend):
        kp = backend.keypair(H(b"signer"))
        sig = backend.sign(kp.secret, b"payload")
        backend.verify(kp.public, b"payload", sig)

    def test_verify_rejects_tampered_message(self, backend):
        kp = backend.keypair(H(b"signer"))
        sig = backend.sign(kp.secret, b"payload")
        with pytest.raises(SignatureError):
            backend.verify(kp.public, b"payload2", sig)

    def test_verify_rejects_wrong_key(self, backend):
        kp1 = backend.keypair(H(b"signer1"))
        kp2 = backend.keypair(H(b"signer2"))
        sig = backend.sign(kp1.secret, b"payload")
        with pytest.raises(SignatureError):
            backend.verify(kp2.public, b"payload", sig)

    def test_is_valid_signature(self, backend):
        kp = backend.keypair(H(b"signer"))
        sig = backend.sign(kp.secret, b"m")
        assert backend.is_valid_signature(kp.public, b"m", sig)
        assert not backend.is_valid_signature(kp.public, b"n", sig)

    def test_vrf_prove_verify(self, backend):
        kp = backend.keypair(H(b"vrf-user"))
        vrf_hash, proof = backend.vrf_prove(kp.secret, b"alpha")
        assert backend.vrf_verify(kp.public, proof, b"alpha") == vrf_hash

    def test_vrf_deterministic(self, backend):
        kp = backend.keypair(H(b"vrf-user"))
        assert (backend.vrf_prove(kp.secret, b"x")
                == backend.vrf_prove(kp.secret, b"x"))

    def test_vrf_rejects_wrong_alpha(self, backend):
        kp = backend.keypair(H(b"vrf-user"))
        _, proof = backend.vrf_prove(kp.secret, b"alpha")
        with pytest.raises(VRFError):
            backend.vrf_verify(kp.public, proof, b"other")

    def test_vrf_output_differs_per_alpha(self, backend):
        kp = backend.keypair(H(b"vrf-user"))
        h1, _ = backend.vrf_prove(kp.secret, b"a")
        h2, _ = backend.vrf_prove(kp.secret, b"b")
        assert h1 != h2


class TestFastBackendSpecifics:
    def test_unknown_key_raises(self):
        backend = FastBackend()
        other = FastBackend().keypair(H(b"elsewhere"))
        with pytest.raises(CryptoError):
            backend.verify(other.public, b"m", b"\x00" * 32)

    def test_registries_are_isolated(self):
        b1, b2 = FastBackend(), FastBackend()
        kp = b1.keypair(H(b"user"))
        sig = b1.sign(kp.secret, b"m")
        with pytest.raises(CryptoError):
            b2.verify(kp.public, b"m", sig)

    def test_default_backend_is_fast(self):
        assert isinstance(default_backend(), FastBackend)


def test_backends_cross_check_vrf_uniformity():
    """Fast and real VRF outputs should both look uniform: compare mean
    of the leading byte across inputs (coarse distributional check)."""
    fast = FastBackend()
    kp = fast.keypair(H(b"u"))
    values = [fast.vrf_prove(kp.secret, bytes([i]))[0][0]
              for i in range(64)]
    assert 80 < sum(values) / len(values) < 175
