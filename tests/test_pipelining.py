"""Tests for the pipelined final step (section 10.2 optimization)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig

PIPELINED = dataclasses.replace(TEST_PARAMS, pipeline_final_step=True)


@pytest.fixture(scope="module")
def pipelined_sim():
    sim = Simulation(SimulationConfig(num_users=16, seed=61,
                                      params=PIPELINED))
    sim.submit_payments(30)
    sim.run_rounds(3)
    # Let outstanding final-vote counters finish.
    sim.env.run(until=sim.env.now + 2 * PIPELINED.lambda_step)
    return sim


class TestPipelinedRounds:
    def test_agreement_unchanged(self, pipelined_sim):
        sim = pipelined_sim
        assert sim.all_chains_equal()
        for round_number in (1, 2, 3):
            assert len(sim.agreed_hashes(round_number)) == 1

    def test_kinds_eventually_final(self, pipelined_sim):
        """The async final count still designates rounds final."""
        for node in pipelined_sim.nodes:
            for round_number in (1, 2, 3):
                record = node.metrics.round_record(round_number)
                assert record.kind == "final"

    def test_rounds_faster_than_unpipelined(self):
        def total_time(params, seed=61):
            sim = Simulation(SimulationConfig(num_users=16, seed=seed,
                                              params=params))
            sim.run_rounds(3)
            return sim.env.now

        # Same seed, same workload: pipelining saves roughly one final
        # count per round.
        assert total_time(PIPELINED) < total_time(TEST_PARAMS)

    def test_pipelined_run_commits_the_workload(self):
        """Pipelining is a latency optimization only: the submitted
        payments still commit (blocks are not identical across modes —
        proposal timestamps legitimately differ — but the work is)."""
        sim = Simulation(SimulationConfig(num_users=16, seed=62,
                                          params=PIPELINED))
        sim.submit_payments(20)
        sim.run_rounds(2)
        committed = sum(len(block.transactions)
                        for block in sim.nodes[0].chain.blocks[1:])
        assert committed >= 15
        assert sim.all_chains_equal()
