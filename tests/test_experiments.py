"""Tests for the experiment harness, metrics, and figure runners.

Runner tests use deliberately tiny deployments — they validate plumbing
and result shapes; the benchmarks exercise the real sweeps.
"""

from __future__ import annotations

import math

import pytest

from repro.common.errors import NoSamplesError
from repro.common.params import PAPER_PARAMS
from repro.experiments.costs import expected_certificate_bytes, measure_costs
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.latency import flatness, run_latency_point
from repro.experiments.metrics import LatencySummary, format_table
from repro.experiments.adversarial import run_adversarial_point
from repro.experiments.throughput import (
    paper_scale_projection,
    run_block_size_point,
    throughput_table,
)
from repro.experiments.timeouts import measure_priority_gossip


class TestLatencySummary:
    def test_percentiles(self):
        summary = LatencySummary.from_samples([1, 2, 3, 4, 5])
        assert summary.minimum == 1
        assert summary.median == 3
        assert summary.maximum == 5
        assert summary.count == 5

    def test_empty_rejected(self):
        with pytest.raises(NoSamplesError):
            LatencySummary.from_samples([])

    def test_empty_is_still_a_value_error(self):
        # pre-existing callers catch ValueError; the typed error must
        # remain compatible with that contract
        with pytest.raises(ValueError):
            LatencySummary.from_samples([])

    def test_empty_placeholder(self):
        summary = LatencySummary.empty()
        assert summary.count == 0
        assert math.isnan(summary.median)
        assert set(summary.row()) == {"min", "p25", "median", "p75", "max"}

    def test_row_rounding(self):
        row = LatencySummary.from_samples([1.23456]).row()
        assert row["median"] == 1.23


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["a", "bee"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[3]
        assert len(lines) == 4


class TestSimulationConfig:
    def test_balance_override_validated(self):
        config = SimulationConfig(num_users=3, balances=[1, 2])
        with pytest.raises(ValueError):
            config.make_balances()

    def test_malicious_requires_class(self):
        with pytest.raises(ValueError):
            Simulation(SimulationConfig(num_users=4, num_malicious=1))

    def test_unknown_latency_model(self):
        with pytest.raises(ValueError):
            Simulation(SimulationConfig(num_users=4,
                                        latency_model="quantum"))


class TestRunners:
    def test_latency_point_shape(self):
        point = run_latency_point(10, seed=1, rounds=1, measure_round=1)
        assert point.num_users == 10
        assert point.summary.count == 10
        assert point.summary.minimum > 0

    def test_flatness_of_identical_points(self):
        point = run_latency_point(10, seed=1, rounds=1, measure_round=1)
        assert flatness([point, point]) == 1.0

    def test_block_size_point_segments_positive(self):
        point = run_block_size_point(5_000, num_users=10, seed=2)
        assert point.proposal_time > 0
        assert point.ba_time >= 0
        assert point.final_step_time >= 0
        assert point.total > 0

    def test_throughput_table_structure(self):
        point = run_block_size_point(5_000, num_users=10, seed=2)
        rows = throughput_table([point])
        assert rows[0].system == "bitcoin"
        assert rows[1].system == "algorand"
        assert rows[1].ratio_vs_bitcoin == pytest.approx(
            rows[1].bytes_per_hour / rows[0].bytes_per_hour)

    def test_pipelining_final_step_increases_throughput(self):
        point = run_block_size_point(5_000, num_users=10, seed=2)
        plain = throughput_table([point])[1]
        pipelined = throughput_table([point], pipeline_final_step=True)[1]
        assert pipelined.bytes_per_hour >= plain.bytes_per_hour

    def test_adversarial_point_bounds(self):
        point = run_adversarial_point(0.2, num_users=10, rounds=1, seed=3)
        assert point.num_malicious == 2
        assert point.agreed
        with pytest.raises(ValueError):
            run_adversarial_point(0.5)

    def test_costs_report_consistency(self):
        report = measure_costs(10, rounds=1, seed=4, payload_bytes=2_000)
        assert report.mean_bytes_sent_per_user > 0
        assert report.certificate_votes > 0
        assert report.certificate_overhead > 0
        assert (report.storage_per_round_unsharded
                > report.storage_per_round_sharded_10)

    def test_priority_gossip_fast(self):
        assert measure_priority_gossip(20, seed=5) < 2.0


class TestPaperConstants:
    def test_certificate_size_near_paper_300kb(self):
        assert 250e3 < expected_certificate_bytes(PAPER_PARAMS) < 400e3

    def test_projection_matches_paper_750mb_hour(self):
        assert 600e6 < paper_scale_projection() < 900e6


class TestDeterministicHarness:
    def test_submit_payments_deterministic(self):
        def run():
            sim = Simulation(SimulationConfig(num_users=8, seed=6))
            sim.submit_payments(10)
            sim.run_rounds(1)
            return sim.nodes[0].chain.tip_hash

        assert run() == run()

    def test_timeout_error_when_rounds_cannot_finish(self):
        sim = Simulation(SimulationConfig(num_users=8, seed=7))
        # Freeze the network entirely: no round can complete.
        sim.network.drop_filter = lambda src, dst, envelope: True
        with pytest.raises(TimeoutError):
            sim.run_rounds(1, time_limit=5.0)
