"""Chaos engine unit tests: scripts, shapers, the monitor, and the CLI.

The negative monitor tests are the load-bearing ones: a checker that
never fires is indistinguishable from a checker that works, so we feed
it forged conflicting certificates and a stalled clock and require red.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chaos import (FaultAction, InvariantMonitor, ScenarioError,
                         ScenarioScript, ShaperChain, generate_scenario,
                         partition_heal_scenario)
from repro.chaos.__main__ import main as chaos_main
from repro.chaos.faults import _WindowedLinkEffect
from repro.experiments.harness import Simulation, SimulationConfig
from repro.network.message import Envelope


def _envelope() -> Envelope:
    return Envelope(origin=b"o", kind="t", payload=None, size=10)


class TestScenarioScript:
    def test_json_round_trip_is_lossless(self):
        script = generate_scenario(7)
        assert ScenarioScript.from_json(script.to_json()) == script

    def test_builtin_partition_heal_validates(self):
        script = partition_heal_scenario()
        script.validate()
        assert script.last_heal_time() == 50.0
        assert script.permanently_crashed() == frozenset()

    def test_with_seed_changes_only_the_seed(self):
        script = partition_heal_scenario()
        reseeded = script.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.actions == script.actions

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault kind"):
            FaultAction(kind="meteor", start=0.0, end=1.0).validate(8)

    def test_window_must_be_ordered(self):
        with pytest.raises(ScenarioError, match="end after it starts"):
            FaultAction(kind="delay", start=5.0, end=5.0,
                        extra_delay=1.0).validate(8)

    def test_only_crash_may_be_permanent(self):
        with pytest.raises(ScenarioError, match="permanent"):
            FaultAction(kind="dos", start=0.0, end=None,
                        nodes=(1,)).validate(8)

    def test_partition_needs_disjoint_groups(self):
        with pytest.raises(ScenarioError, match="two groups"):
            FaultAction(kind="partition", start=0.0, end=1.0,
                        groups=((0, 1), (1, 2))).validate(8)

    def test_permanent_crash_quorum_guard(self):
        script = ScenarioScript(
            name="too-many", num_users=6,
            actions=(FaultAction(kind="crash", start=0.0, end=None,
                                 nodes=(1, 2)),))
        with pytest.raises(ScenarioError, match="1/3"):
            script.validate()

    def test_generated_scenarios_are_seed_deterministic(self):
        assert generate_scenario(42) == generate_scenario(42)
        assert generate_scenario(42) != generate_scenario(43)


class TestLinkEffects:
    def _effect(self, **kwargs) -> _WindowedLinkEffect:
        effect = _WindowedLinkEffect(FaultAction(**kwargs),
                                     np.random.default_rng(0))
        effect.activate()
        return effect

    def test_delay_adds_constant(self):
        effect = self._effect(kind="delay", start=0.0, end=1.0,
                              extra_delay=0.5)
        assert effect(0, 1, _envelope(), [0.1]) == [0.6]

    def test_inactive_effect_is_identity(self):
        effect = self._effect(kind="delay", start=0.0, end=1.0,
                              extra_delay=0.5)
        effect.deactivate()
        assert effect(0, 1, _envelope(), [0.1]) == [0.1]

    def test_node_filter_limits_scope(self):
        effect = self._effect(kind="delay", start=0.0, end=1.0,
                              extra_delay=0.5, nodes=(3,))
        assert effect(0, 1, _envelope(), [0.1]) == [0.1]
        assert effect(3, 1, _envelope(), [0.1]) == [0.6]
        assert effect(0, 3, _envelope(), [0.1]) == [0.6]

    def test_loss_rate_one_drops_everything(self):
        effect = self._effect(kind="loss", start=0.0, end=1.0, rate=1.0)
        assert effect(0, 1, _envelope(), [0.1]) == []

    def test_duplicate_rate_one_doubles_delivery(self):
        effect = self._effect(kind="duplicate", start=0.0, end=1.0,
                              rate=1.0, jitter=0.2)
        out = effect(0, 1, _envelope(), [0.1])
        assert len(out) == 2 and out[0] == 0.1
        assert out[1] == pytest.approx(0.3)

    def test_reorder_jitter_bounded(self):
        effect = self._effect(kind="reorder", start=0.0, end=1.0,
                              jitter=0.4)
        for _ in range(50):
            (shaped,) = effect(0, 1, _envelope(), [1.0])
            assert 1.0 <= shaped < 1.4

    def test_shaper_chain_absorbs_existing_shaper(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        sim.network.link_shaper = (
            lambda src, dst, env, delay: [delay + 1.0])
        chain = ShaperChain(sim.network)
        chain.add(lambda src, dst, env, delays:
                  [delay * 2 for delay in delays])
        assert sim.network.link_shaper == chain._shape
        # Pre-existing shaper applies first (+1.0), then the new one (*2).
        assert chain._shape(0, 1, _envelope(), 0.5) == [3.0]

    def test_shaper_chain_empty_means_drop(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        chain = ShaperChain(sim.network)
        chain.add(lambda src, dst, env, delays: [])
        assert chain._shape(0, 1, _envelope(), 0.5) == []


def _commit(node: int, round_number: int, block_hash: str,
            t: float) -> dict:
    return {"t": t, "kind": "round_commit", "node": node,
            "round": round_number, "block_hash": block_hash}


class TestInvariantMonitorNegative:
    """Forged violations MUST go red — no false green."""

    def test_conflicting_certificates_flagged(self):
        monitor = InvariantMonitor(liveness_bound=100.0)
        monitor.feed([_commit(0, 1, "aa" * 16, 1.0),
                      _commit(1, 1, "bb" * 16, 1.2)])
        violations = monitor.finish(now=2.0)
        assert [v.invariant for v in violations] == ["unique-certificate"]
        assert "round 1" in violations[0].detail

    def test_rollback_commit_flagged(self):
        monitor = InvariantMonitor(liveness_bound=100.0)
        monitor.feed([_commit(0, 1, "aa" * 16, 1.0),
                      _commit(0, 2, "bb" * 16, 2.0),
                      _commit(0, 1, "aa" * 16, 3.0)])
        violations = monitor.finish(now=4.0)
        assert [v.invariant for v in violations] == ["monotonic-rounds"]

    def test_stalled_clock_after_heal_flagged(self):
        monitor = InvariantMonitor(liveness_bound=100.0, heal_time=50.0)
        # The only commit happened before the heal; the post-heal window
        # is empty and the clock ran past the deadline.
        monitor.feed([_commit(0, 1, "aa" * 16, 40.0)])
        violations = monitor.finish(now=300.0)
        assert [v.invariant for v in violations] == ["liveness"]
        assert "heal" in violations[0].detail

    def test_fault_free_stall_flagged(self):
        monitor = InvariantMonitor(liveness_bound=100.0)
        violations = monitor.finish(now=200.0)
        assert [v.invariant for v in violations] == ["liveness"]

    def test_clean_trace_stays_green(self):
        monitor = InvariantMonitor(liveness_bound=100.0, heal_time=50.0)
        monitor.feed([_commit(node, 1, "aa" * 16, 60.0 + node * 0.1)
                      for node in range(4)])
        assert monitor.finish(now=400.0) == []

    def test_commit_before_deadline_not_penalized_early(self):
        # The run ended before the liveness deadline: no verdict either
        # way yet, so no violation.
        monitor = InvariantMonitor(liveness_bound=100.0, heal_time=50.0)
        assert monitor.finish(now=80.0) == []

    def test_non_commit_events_ignored(self):
        monitor = InvariantMonitor(liveness_bound=100.0)
        monitor.feed([{"t": 1.0, "kind": "gossip_sent", "node": 0}])
        assert monitor.events_seen == 1
        assert monitor.violations == []


class TestChaosCli:
    def test_scenario_file_run_writes_artifacts(self, tmp_path):
        script = ScenarioScript(name="tiny", seed=3, num_users=6,
                                rounds=1)
        scenario_path = tmp_path / "tiny.json"
        scenario_path.write_text(script.to_json(), encoding="utf-8")
        verdict_path = tmp_path / "verdict.json"
        trace_path = tmp_path / "trace.jsonl"
        rc = chaos_main([str(scenario_path),
                         "--verdict", str(verdict_path),
                         "--trace", str(trace_path)])
        assert rc == 0
        verdict = json.loads(verdict_path.read_text(encoding="utf-8"))
        assert verdict["ok"] is True
        assert verdict["scenario"]["name"] == "tiny"
        assert trace_path.exists()
        assert trace_path.read_text(encoding="utf-8").count("\n") > 10

    def test_exactly_one_source_required(self):
        with pytest.raises(SystemExit):
            chaos_main([])
        with pytest.raises(SystemExit):
            chaos_main(["--seed", "1", "--sweep", "2"])
