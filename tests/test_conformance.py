"""Conformance harness tests: clean runs conform, mutations are caught.

Four angles on :mod:`repro.conformance`:

* clean seeded deployments (full and aggregated populations) produce
  zero violations, online and through the offline CLI round-trip;
* hand-mutated traces trip exactly the named rule the mutation breaks
  (skipped step, commit without quorum, vote after halt);
* the crash path closes every open step interval with an explicit
  ``interrupted`` step_exit (the stalling-committee regression);
* the event catalogue is authoritative: every literal emit site in
  ``src/`` uses a registered kind, and ``TraceBus(validate=True)``
  rejects malformed records while accepting a whole simulation's worth
  of real ones.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.chaos import generate_scenario, run_scenario
from repro.conformance import ConformanceMonitor, NodeMachine
from repro.conformance.__main__ import main as conformance_main
from repro.experiments.harness import Simulation, SimulationConfig
from repro.obs import (
    EVENT_KINDS,
    EventSchemaError,
    JsonlTraceSink,
    TraceBus,
    read_trace,
)
from repro.obs.report import render_report, step_timings, trace_losses

from tests.fixtures import run_sim, run_traced

USERS = 10
ROUNDS = 3
SEED = 7


@pytest.fixture(scope="module")
def clean_run():
    return run_traced(ROUNDS, payments=12, num_users=USERS, seed=SEED)


@pytest.fixture(scope="module")
def clean_events(clean_run):
    _, bus = clean_run
    return bus.events


def _check(events) -> ConformanceMonitor:
    monitor = ConformanceMonitor()
    monitor.feed(events)
    return monitor


def _rules(monitor: ConformanceMonitor) -> set[str]:
    return {violation.rule for violation in monitor.violations}


class TestCleanTraces:
    def test_seeded_sim_conforms_online(self, clean_run):
        sim, _ = clean_run
        verdict = sim.conformance.verdict()
        assert verdict.ok, verdict.violations
        assert verdict.events_checked > 0
        assert verdict.nodes == USERS
        summary = sim.summary()
        assert summary["conformance"]["ok"]
        assert summary["conformance"]["violations"] == 0

    def test_conformance_counters_in_snapshot(self, clean_run):
        _, bus = clean_run
        snapshot = bus.snapshot()
        assert snapshot["counters"]["conformance.events_checked"] > 0
        assert snapshot["counters"].get("conformance.violations", 0) == 0
        assert snapshot["gauges"]["conformance.nodes"] == USERS

    def test_aggregated_population_conforms(self):
        # Small core + dormant stake: real materialize/retire churn, so
        # the machine's RETIRED phase and self-retirement commit grace
        # are actually exercised (mirrors test_population's dormancy
        # configuration).
        from repro.common.params import TEST_PARAMS
        sim, bus = run_traced(
            2, num_users=150, initial_balance=1, seed=2,
            params=TEST_PARAMS.scaled(0.1),
            population="aggregated", always_on_core=8, steps_ahead=6)
        verdict = sim.conformance.verdict()
        assert verdict.ok, verdict.violations
        # Retirement events flow through the machine's grace path.
        assert bus.events_of_kind("agent_retired")

    def test_offline_cli_round_trip(self, clean_events, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(trace)
        for event in clean_events:
            sink.write_event(event)
        sink.write_snapshot({"counters": {}, "gauges": {}})
        sink.close()
        verdict_path = tmp_path / "verdict.json"
        code = conformance_main([str(trace), "--verdict",
                                 str(verdict_path), "--require-complete"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CONFORMS" in out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["ok"] is True
        assert verdict["violations"] == []
        assert verdict["trace_complete"] is True

    def test_offline_cli_missing_file(self, tmp_path):
        assert conformance_main([str(tmp_path / "absent.jsonl")]) == 2

    def test_monitor_is_pure_observer(self):
        def chain(conformance):
            sim = Simulation(SimulationConfig(
                num_users=8, seed=3, conformance=conformance))
            sim.submit_payments(8)
            sim.run_rounds(2)
            return [sim.nodes[0].chain.block_at(r).block_hash
                    for r in range(1, 3)]

        assert chain(True) == chain(False)

    def test_conformance_knob_validation(self):
        with pytest.raises(Exception):
            SimulationConfig(num_users=8, conformance="yes").validate()

    def test_forced_conformance_without_bus(self):
        sim = run_sim(1, num_users=8, seed=3, conformance=True)
        assert sim.conformance is not None
        assert sim.conformance.verdict().ok

    def test_conformance_off(self):
        sim = run_sim(1, obs=TraceBus(), num_users=8, seed=3,
                      conformance=False)
        assert sim.conformance is None
        assert "conformance" not in sim.summary()


class TestNegativeTraces:
    """Each mutation trips the specific rule it breaks — not a generic
    failure, the *named* violation from the transition tables."""

    def _node_round(self, events, node=0, round_number=1):
        return [e for e in events
                if e.get("node") == node and e.get("round") == round_number]

    def test_skipped_step_is_caught(self, clean_events):
        mutated = [e for e in clean_events
                   if not (e.get("node") == 0 and e.get("round") == 1
                           and e.get("step") == "reduction_one"
                           and e["kind"] in ("step_enter", "step_exit"))]
        monitor = _check(mutated)
        assert "commit-skipped-step" in _rules(monitor)

    def test_commit_without_quorum_is_caught(self, clean_events):
        commit = next(e for e in clean_events
                      if e["kind"] == "round_commit"
                      and e["node"] == 0 and e["round"] == 1)
        deciding = str(commit["binary_steps"])
        mutated = []
        for event in clean_events:
            if (event["kind"] == "step_exit" and event["node"] == 0
                    and event["round"] == 1
                    and event["step"] == deciding):
                event = dict(event, timed_out=True)
            mutated.append(event)
        monitor = _check(mutated)
        assert "commit-without-quorum" in _rules(monitor)

    def test_vote_after_halt_is_caught(self):
        machine = NodeMachine(0)
        violations = []
        for event in [
            {"kind": "round_start", "t": 0.0, "node": 0, "round": 1},
            {"kind": "proposal_resolved", "t": 1.0, "node": 0, "round": 1},
            {"kind": "consensus_halted", "t": 2.0, "node": 0, "round": 1},
            {"kind": "vote_cast", "t": 3.0, "node": 0, "round": 1,
             "step": "1"},
        ]:
            violations.extend(machine.feed(event))
        assert [v.rule for v in violations] == ["vote-phase"]

    def test_duplicate_commit_is_caught(self, clean_events):
        mutated = list(clean_events)
        commit_at = next(i for i, e in enumerate(mutated)
                         if e["kind"] == "round_commit" and e["node"] == 0)
        mutated.insert(commit_at + 1, dict(mutated[commit_at]))
        monitor = _check(mutated)
        assert "commit-phase" in _rules(monitor)

    def test_out_of_order_steps_are_caught(self):
        machine = NodeMachine(0)
        violations = []
        for event in [
            {"kind": "round_start", "t": 0.0, "node": 0, "round": 1},
            {"kind": "proposal_resolved", "t": 1.0, "node": 0, "round": 1},
            {"kind": "step_enter", "t": 2.0, "node": 0, "round": 1,
             "step": "reduction_two", "deadline_s": 3.0},
        ]:
            violations.extend(machine.feed(event))
        assert [v.rule for v in violations] == ["step-order"]

    def test_violation_context_is_complete(self, clean_events):
        mutated = [e for e in clean_events
                   if not (e.get("node") == 0 and e.get("round") == 1
                           and e.get("step") == "reduction_one"
                           and e["kind"] in ("step_enter", "step_exit"))]
        monitor = _check(mutated)
        breach = next(v for v in monitor.violations
                      if v.rule == "commit-skipped-step")
        assert breach.node == 0
        assert breach.round == 1
        assert breach.kind == "round_commit"
        assert "reduction_one" in breach.detail

    def test_verdict_caps_violations(self, clean_events):
        # Feed the mutated trace into a tiny-capped monitor: recording
        # stops, checking does not, and the verdict says so.
        mutated = [e for e in clean_events if e["kind"] != "step_exit"]
        monitor = ConformanceMonitor(max_violations=2)
        monitor.feed(mutated)
        verdict = monitor.verdict()
        assert not verdict.ok
        assert verdict.violations[-1]["rule"] == "violations-truncated"


class TestCrashClosesSteps:
    """Satellite (c): every step-termination path emits step_exit.

    The regression this pins: a node crashed mid-committee-wait used to
    leave its ``step_enter`` dangling forever, so per-step timing
    aggregations silently undercounted and a stalled committee was
    indistinguishable from a trace artifact.
    """

    def _crash_mid_step(self):
        bus = TraceBus()
        sim = Simulation(SimulationConfig(num_users=8, seed=9), obs=bus)
        for node in sim.nodes:
            node.start(2)
        sim.env.run(until=2.0)  # node 1 is inside reduction_one (seeded)
        monitor = _check(bus.events)
        assert monitor.open_steps().get("1"), \
            "fixture drift: node 1 must be mid-step at t=2.0"
        sim.nodes[1].crash()
        return sim, bus

    def test_crash_emits_interrupted_step_exit(self):
        _, bus = self._crash_mid_step()
        closing = [e for e in bus.events
                   if e["kind"] == "step_exit" and e["node"] == 1
                   and e.get("interrupted")]
        assert closing, "crash left the open step without a step_exit"
        assert all(e["timed_out"] is False for e in closing)

    def test_every_enter_has_an_exit_after_crash(self):
        _, bus = self._crash_mid_step()
        enters = [(e["round"], e["step"]) for e in bus.events
                  if e["kind"] == "step_enter" and e["node"] == 1]
        exits = [(e["round"], e["step"]) for e in bus.events
                 if e["kind"] == "step_exit" and e["node"] == 1]
        assert sorted(enters) == sorted(exits)

    def test_crashed_trace_conforms(self):
        _, bus = self._crash_mid_step()
        monitor = _check(bus.events)
        assert monitor.ok, [v.to_dict() for v in monitor.violations]
        assert not monitor.open_steps().get("1")

    def test_interrupted_exits_counted_separately_in_report(self):
        _, bus = self._crash_mid_step()
        rows = {r["step"]: r for r in step_timings(bus.events)}
        interrupted = sum(r["interrupted"] for r in rows.values())
        assert interrupted >= 1
        for row in rows.values():
            assert (row["threshold_reached"] + row["timeouts"]
                    + row["interrupted"]) == row["samples"]


class TestEventCatalogue:
    """Satellite (a): the catalogue is the single source of truth."""

    def test_every_emit_site_uses_a_registered_kind(self):
        src = Path(__file__).resolve().parent.parent / "src"
        pattern = re.compile(r'\.emit\(\s*"([^"]+)"')
        unregistered = []
        for path in sorted(src.rglob("*.py")):
            for match in pattern.finditer(path.read_text()):
                kind = match.group(1)
                if kind not in EVENT_KINDS:
                    unregistered.append((str(path), kind))
        # chaos.faults._emit passes its kind through a variable; it is
        # covered by the fault_applied/fault_cleared catalogue entries
        # and by the validating-bus simulation test below.
        assert not unregistered, unregistered

    def test_fault_kinds_are_registered_for_the_indirect_site(self):
        assert "fault_applied" in EVENT_KINDS
        assert "fault_cleared" in EVENT_KINDS

    def test_validating_bus_rejects_unknown_kind(self):
        bus = TraceBus(validate=True)
        with pytest.raises(EventSchemaError, match="unregistered"):
            bus.emit("no_such_kind", node=0)

    def test_validating_bus_rejects_missing_fields(self):
        bus = TraceBus(validate=True)
        with pytest.raises(EventSchemaError, match="round"):
            bus.emit("round_start", node=0)

    def test_validating_bus_accepts_extras(self):
        bus = TraceBus(validate=True)
        bus.emit("round_start", node=0, round=1, note="extra ok")
        assert bus.events[-1]["note"] == "extra ok"

    def test_default_bus_does_not_validate(self):
        bus = TraceBus()
        bus.emit("ad_hoc_test_kind", whatever=1)  # must not raise
        assert bus.events[-1]["kind"] == "ad_hoc_test_kind"

    def test_full_simulation_passes_validation(self):
        # Every record a real deployment emits satisfies its schema —
        # this also covers the non-literal chaos emit site.
        bus = TraceBus(validate=True)
        sim = Simulation(SimulationConfig(num_users=8, seed=3), obs=bus)
        sim.submit_payments(8)
        sim.run_rounds(2)
        assert bus.events

    def test_chaos_run_passes_validation(self):
        from repro.chaos import FaultAction, ScenarioScript
        from repro.chaos.faults import FaultInjector
        bus = TraceBus(validate=True)
        script = ScenarioScript(
            name="validate", seed=4, num_users=8, rounds=1,
            actions=(FaultAction(kind="loss", start=0.5, end=2.0,
                                 rate=0.1),))
        sim = Simulation(SimulationConfig(num_users=8, seed=4), obs=bus)
        FaultInjector(sim, script).install()
        sim.run_rounds(1)
        kinds = {e["kind"] for e in bus.events}
        assert "fault_applied" in kinds


class TestSinkOverflow:
    """Satellite (b): bounded sinks drop loudly, never silently."""

    def test_bounded_sink_counts_drops(self, tmp_path):
        bus = TraceBus()
        sink = JsonlTraceSink(tmp_path / "t.jsonl", max_records=3)
        bus.add_sink(sink)
        for i in range(8):
            bus.emit("round_start", node=0, round=i)
        snapshot = bus.close()
        assert sink.dropped == 5
        assert snapshot["gauges"]["obs.sink_dropped"] == 5
        events, stored = read_trace(tmp_path / "t.jsonl")
        assert len(events) == 3
        assert stored["gauges"]["obs.sink_dropped"] == 5

    def test_report_warns_on_incomplete_trace(self, tmp_path):
        bus = TraceBus()
        bus.add_sink(JsonlTraceSink(tmp_path / "t.jsonl", max_records=2))
        for i in range(5):
            bus.emit("round_start", node=0, round=i)
        bus.close()
        events, snapshot = read_trace(tmp_path / "t.jsonl")
        assert trace_losses(snapshot) == (0, 3)
        report = render_report(events, snapshot)
        assert "INCOMPLETE TRACE" in report

    def test_report_silent_on_complete_trace(self, clean_events, clean_run):
        _, bus = clean_run
        report = render_report(clean_events, bus.snapshot())
        assert "INCOMPLETE TRACE" not in report

    def test_offline_checker_flags_incomplete(self, tmp_path, capsys):
        bus = TraceBus()
        bus.add_sink(JsonlTraceSink(tmp_path / "t.jsonl", max_records=1))
        bus.emit("round_start", node=0, round=1)
        bus.emit("proposal_resolved", node=0, round=1, empty=False,
                 waited_s=0.1)
        bus.close()
        code = conformance_main([str(tmp_path / "t.jsonl"),
                                 "--require-complete"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INCOMPLETE" in out

    def test_sink_rejects_negative_bound(self, tmp_path):
        with pytest.raises(Exception):
            JsonlTraceSink(tmp_path / "t.jsonl", max_records=-1)


class TestChaosConformance:
    """Satellite (d): the chaos engine gates on conformance too."""

    def test_generated_scenarios_carry_conformance_section(self,
                                                           chaos_seeds):
        for seed in chaos_seeds[:3]:
            verdict = run_scenario(generate_scenario(seed))
            assert verdict.conformance is not None
            assert verdict.conformance["ok"], verdict.violations
            assert verdict.conformance["violations"] == 0
            assert verdict.conformance["events_checked"] > 0
            assert "conformance" in json.loads(verdict.to_json())

    @pytest.mark.slow
    def test_twenty_seed_sweep_is_conformant(self, chaos_seeds):
        assert len(chaos_seeds) >= 20
        failures = []
        for seed in chaos_seeds:
            verdict = run_scenario(generate_scenario(seed))
            if (verdict.conformance is None
                    or not verdict.conformance["ok"]):
                failures.append((seed, verdict.violations))
        assert not failures, failures
