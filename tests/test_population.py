"""Aggregated population vs. the classic full-agent harness.

Two bars, matching the representation's two levers:

* **Byte-identical** — with the always-on core covering the whole
  population there is no dormant stake, and the aggregated run must
  commit exactly the chains the full harness commits: same block
  dataclasses (timestamps included), same round records. This pins the
  representation changes (ArrayState, shared snapshots, batch verify
  priming) as semantics-free.
* **Protocol-outcome identical** — with a small core and real dormancy
  (materialize-on-selection, retire-after-round), commit *times* may
  shift with the thinner relay fabric, but the proposer sequence and
  seed chain are VRF-determined and must match the full run exactly.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError, PopulationError
from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig

from tests.fixtures import (
    assert_chains_byte_identical as assert_byte_identical,
    run_sim,
)


class TestRepresentationEquivalence:
    """Aggregated with core == population: byte-identical to full."""

    @pytest.mark.parametrize("n,rounds", [(20, 3), (50, 2)])
    def test_chains_and_round_records_identical(self, n, rounds):
        full = run_sim(rounds, payments=n, num_users=n, seed=11)
        agg = run_sim(rounds, payments=n, num_users=n, seed=11,
                      population="aggregated", always_on_core=n)
        assert_byte_identical(full, agg, rounds)
        # no dormant stake -> the pool pass never ran
        assert agg.summary()["sortition"]["pool_evaluations"] == 0
        assert agg.population.stats()["retired_total"] == 0

    @pytest.mark.slow
    def test_chains_identical_at_100_users(self):
        full = run_sim(2, payments=50, num_users=100, seed=11)
        agg = run_sim(2, payments=50, num_users=100, seed=11,
                      population="aggregated", always_on_core=100)
        assert_byte_identical(full, agg, 2)

    def test_batch_priming_is_invisible_and_used(self):
        # The N=20 equivalence above already ran with batch_verify on
        # (auto resolves True for aggregated); here pin that the primer
        # actually did work, so the byte-identity is a real statement
        # about priming being semantics-free rather than it being idle.
        agg = run_sim(2, num_users=20, seed=4,
                      population="aggregated", always_on_core=20)
        summary = agg.summary()
        assert summary["batch_verify"]["votes_primed"] > 0
        assert summary["verification_cache"]["batch_primed"] > 0


DORMANCY_CFG = dict(num_users=150, initial_balance=1,
                    params=TEST_PARAMS.scaled(0.1), seed=2)


class TestDormancy:
    """Small core, real materialization/retirement churn."""

    @pytest.fixture(scope="class")
    def pair(self):
        agg = run_sim(2, population="aggregated", always_on_core=8,
                      steps_ahead=6, **DORMANCY_CFG)
        full = run_sim(2, **DORMANCY_CFG)
        return full, agg

    def test_lifecycle_actually_churns(self, pair):
        _, agg = pair
        stats = agg.population.stats()
        assert stats["retired_total"] > 0
        assert stats["live"] < stats["accounts"]
        assert stats["materialized_total"] > stats["core"]
        assert agg.summary()["sortition"]["pool_evaluations"] > 0

    def test_protocol_outcomes_match_full_run(self, pair):
        full, agg = pair
        chain_full = full.nodes[0].chain
        chain_agg = agg.nodes[0].chain
        for r in (1, 2):
            block_full = chain_full.block_at(r)
            block_agg = chain_agg.block_at(r)
            assert block_agg.proposer == block_full.proposer
            assert block_agg.seed == block_full.seed
            assert block_agg.transactions == block_full.transactions
        for r in (1, 2, 3):
            assert (chain_agg.selection_seed(r)
                    == chain_full.selection_seed(r))

    def test_core_agrees_internally(self, pair):
        _, agg = pair
        assert agg.all_chains_equal()
        for node in agg.nodes:
            assert not node.halted

    def test_transients_run_with_admission_attached(self, pair):
        _, agg = pair
        for slot, node in agg.population.live.items():
            if slot not in set(agg.population.core):
                assert node.admission is not None

    @pytest.mark.slow
    def test_deep_round_stall_is_loud_and_steps_ahead_fixes_it(self):
        # Seed 1 contains a round that runs deeper than the default
        # covered steps with these tiny committees; the dormant
        # later-step committees then starve the round. The harness must
        # refuse to return a silently short chain.
        cfg = dict(num_users=300, initial_balance=1,
                   params=TEST_PARAMS.scaled(0.1), seed=1)
        with pytest.raises(TimeoutError, match="steps_ahead"):
            run_sim(3, population="aggregated", always_on_core=8, **cfg)
        deep = run_sim(3, population="aggregated", always_on_core=8,
                       steps_ahead=12, **cfg)
        assert deep.nodes[0].chain.height == 3


class TestValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(PopulationError):
            SimulationConfig(population="sharded").validate()

    def test_aggregated_is_honest_only(self):
        with pytest.raises(PopulationError):
            SimulationConfig(population="aggregated",
                             num_malicious=1).validate()
        with pytest.raises(PopulationError):
            SimulationConfig(population="aggregated",
                             num_observers=1).validate()

    def test_aggregated_bounds(self):
        with pytest.raises(PopulationError):
            SimulationConfig(population="aggregated",
                             always_on_core=0).validate()
        with pytest.raises(PopulationError):
            SimulationConfig(population="aggregated",
                             steps_ahead=0).validate()

    def test_batch_verify_resolution(self):
        assert not SimulationConfig().batch_verify_enabled()
        assert SimulationConfig(
            population="aggregated").batch_verify_enabled()
        assert SimulationConfig(batch_verify=True).batch_verify_enabled()
        with pytest.raises(ConfigError):
            SimulationConfig(batch_verify=True,
                             use_verification_cache=False).validate()
        with pytest.raises(ConfigError):
            SimulationConfig(batch_verify="yes").validate()

    def test_batch_verifier_wiring(self):
        full = Simulation(SimulationConfig(num_users=3, seed=0))
        assert full.batch_verifier is None
        assert full.network.batch_verifier is None
        agg = Simulation(SimulationConfig(
            num_users=3, seed=0, population="aggregated",
            always_on_core=3))
        assert agg.network.batch_verifier is agg.batch_verifier
        assert agg.batch_verifier is not None
