"""Public-API surface tests: exports, error hierarchy, latency details."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.common import errors
from repro.network.latency import CITIES, LatencyModel


class TestPackageRoot:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_quickstart_names_exported(self):
        for name in ("Simulation", "SimulationConfig", "ProtocolParams",
                     "PAPER_PARAMS", "TEST_PARAMS"):
            assert hasattr(repro, name)

    def test_all_is_exactly_the_public_surface(self):
        """The facade's ``__all__`` is a contract: pin it exactly.

        Adding a name here is an API decision, not a side effect of an
        import — this test makes that decision explicit in the diff.
        """
        assert sorted(repro.__all__) == sorted([
            "Simulation", "SimulationConfig",
            "NetworkConfig", "RuntimeConfig", "PopulationConfig",
            "SubstrateConfig", "deploy",
            "LiveCluster",
            "Clock", "Transport", "Substrate", "SimSubstrate",
            "TraceBus",
            "ProtocolParams", "PAPER_PARAMS", "TEST_PARAMS",
            "__version__",
        ])
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} in __all__ missing"

    def test_all_subpackages_importable(self):
        import importlib
        for package in ("common", "crypto", "sortition", "ledger", "sim",
                        "network", "baplus", "node", "adversary",
                        "baselines", "analysis", "experiments",
                        "substrate", "live"):
            module = importlib.import_module(f"repro.{package}")
            assert module.__doc__, f"repro.{package} lacks a docstring"

    def test_all_exports_resolve(self):
        """Every name in every subpackage __all__ must exist."""
        import importlib
        for package in ("common", "crypto", "sortition", "ledger", "sim",
                        "network", "baplus", "node", "adversary",
                        "baselines", "analysis", "experiments",
                        "substrate", "live"):
            module = importlib.import_module(f"repro.{package}")
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"repro.{package}.{name}"


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in ("CryptoError", "SignatureError", "VRFError",
                     "SortitionError", "LedgerError", "InvalidTransaction",
                     "InvalidBlock", "InvalidCertificate",
                     "SimulationError", "NetworkError", "ConsensusHalted"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_crypto_specializations(self):
        assert issubclass(errors.SignatureError, errors.CryptoError)
        assert issubclass(errors.VRFError, errors.CryptoError)

    def test_ledger_specializations(self):
        assert issubclass(errors.InvalidTransaction, errors.LedgerError)
        assert issubclass(errors.InvalidBlock, errors.LedgerError)
        assert issubclass(errors.InvalidCertificate, errors.LedgerError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConsensusHalted("stuck")


class TestLatencyModelDetails:
    def test_twenty_cities(self):
        assert len(CITIES) == 20
        names = [name for name, _, _ in CITIES]
        assert len(set(names)) == 20

    def test_city_assignment_stable(self):
        model = LatencyModel(30, np.random.default_rng(0))
        assert model.city_of(7) == model.city_of(7)
        assert model.city_of(7) in {name for name, _, _ in CITIES}

    def test_jitter_bounded_below(self):
        """Jitter must never produce a non-positive latency."""
        model = LatencyModel(30, np.random.default_rng(1),
                             jitter_fraction=0.5)
        samples = [model.latency(2, 20) for _ in range(200)]
        assert min(samples) > 0

    def test_jitter_fraction_validated(self):
        with pytest.raises(ValueError):
            LatencyModel(10, np.random.default_rng(0), jitter_fraction=1.5)

    def test_zero_jitter_deterministic(self):
        model = LatencyModel(30, np.random.default_rng(2),
                             jitter_fraction=0.0)
        assert model.latency(1, 5) == model.latency(1, 5)

    def test_population_validated(self):
        with pytest.raises(ValueError):
            LatencyModel(0, np.random.default_rng(0))
