"""Tests for the resilient-ingress layer: admission, budgets, quarantine.

Covers the :mod:`repro.runtime.admission` building blocks in isolation
(config validation, peer-health scoring and decay, the network-wide
quarantine directory), the bounded vote buffer's round-proximity
eviction, the quarantine-aware peer reshuffle, the recovery-round vote
leak regression, and the end-to-end determinism claim: an honest
deployment commits a byte-identical chain with admission on or off.
"""

from __future__ import annotations

import pytest

from repro.baplus.buffer import VoteBuffer
from repro.baplus.messages import VoteMessage, make_vote
from repro.common.errors import ConfigError
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.network.message import vote_envelope
from repro.node.recovery import RECOVERY_ROUND_BASE, RecoverySession
from repro.runtime.admission import (
    AdmissionConfig,
    PeerHealth,
    QuarantineDirectory,
)
from repro.sim.loop import Environment

from tests.fixtures import run_sim, signed_vote


class TestAdmissionConfig:
    def test_defaults_validate(self):
        AdmissionConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("vote_buffer_budget", 0),
        ("egress_lane_budget", 0),
        ("flood_budget_per_round", 0),
        ("quarantine_threshold", 0.0),
        ("quarantine_rounds", 0),
        ("ban_after_quarantines", 0),
        ("decay_factor", 1.0),
        ("network_quarantine_fraction", 0.0),
    ])
    def test_rejects_bad_values(self, field, value):
        config = AdmissionConfig(**{field: value})
        with pytest.raises(ConfigError):
            config.validate()

    def test_flood_weight_hits_threshold_immediately(self):
        # Sub-threshold flood penalties would decay away between rounds
        # and an over-budget flooder would never be quarantined.
        config = AdmissionConfig()
        assert config.weight_of("flood") == config.quarantine_threshold

    def test_unknown_offense_raises(self):
        with pytest.raises(ValueError):
            AdmissionConfig().weight_of("tardiness")


class TestPeerHealth:
    def test_scores_accumulate_to_quarantine(self):
        health = PeerHealth(AdmissionConfig(quarantine_threshold=4.0,
                                            w_invalid_signature=2.0))
        assert not health.penalize(3, "invalid_signature", 1)
        assert not health.is_blocked(3)
        assert health.penalize(3, "invalid_signature", 1)  # newly blocked
        assert health.is_blocked(3)
        # Further offenses while blocked report nothing new.
        assert not health.penalize(3, "invalid_signature", 1)

    def test_quarantine_expires_after_configured_rounds(self):
        health = PeerHealth(AdmissionConfig(quarantine_threshold=2.0,
                                            quarantine_rounds=2))
        health.penalize(5, "invalid_signature", 1)
        health.end_round(1)
        assert health.is_blocked(5)
        health.end_round(2)
        assert health.is_blocked(5)
        health.end_round(3)
        assert not health.is_blocked(5)

    def test_decay_forgives_subthreshold_scores(self):
        health = PeerHealth(AdmissionConfig(decay_factor=0.5))
        health.penalize(2, "duplicate", 1)  # weight 0.5
        assert health.scores[2] == 0.5
        health.end_round(1)
        assert health.scores[2] == 0.25
        for completed in range(2, 10):
            health.end_round(completed)
        assert 2 not in health.scores  # dropped below the floor

    def test_reset_forgets_everything(self):
        health = PeerHealth(AdmissionConfig(quarantine_threshold=1.0))
        health.penalize(1, "equivocation", 1)
        health.reset()
        assert not health.is_blocked(1)
        assert health.scores == {}
        assert health.offense_counts == {}


class _StubNetwork:
    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.calls: list[frozenset[int]] = []

    def set_quarantined(self, indices) -> None:
        self.calls.append(frozenset(indices))


class TestQuarantineDirectory:
    def _directory(self, num_nodes=10, **overrides):
        config = AdmissionConfig(**overrides)
        network = _StubNetwork(num_nodes)
        return QuarantineDirectory(network, config), network

    def test_requires_independent_reporters(self):
        directory, network = self._directory(
            num_nodes=10, network_quarantine_fraction=0.3)
        assert directory.required_reports() == 3
        directory.report(0, 7)
        directory.report(1, 7)
        directory.end_round(1)
        assert 7 not in directory.quarantined
        directory.report(2, 7)
        directory.end_round(2)
        assert 7 in directory.quarantined
        assert network.calls[-1] == frozenset({7})

    def test_duplicate_reports_from_one_node_do_not_count(self):
        directory, _ = self._directory(num_nodes=20)
        for _ in range(10):
            directory.report(0, 5)
        directory.end_round(1)
        assert 5 not in directory.quarantined

    def test_escalation_and_ban(self):
        directory, network = self._directory(
            num_nodes=10, quarantine_rounds=2, ban_after_quarantines=3)
        for strike in (1, 2):
            directory.report(0, 4)
            directory.report(1, 4)
            directory.end_round(strike * 10)
            # Term scales with times served: 2 rounds, then 4.
            assert directory._until[4] == strike * 10 + 2 * strike
            directory.end_round(strike * 10 + 2 * strike)
            assert 4 not in directory.quarantined
        directory.report(0, 4)
        directory.report(1, 4)
        directory.end_round(30)
        assert 4 in directory.banned
        assert 4 in directory.quarantined  # bans never expire
        directory.end_round(99)
        assert 4 in directory.banned
        assert directory.quarantines == 3
        assert network.calls[-1] == frozenset({4})

    def test_reports_against_held_offender_are_dropped(self):
        directory, _ = self._directory(num_nodes=10)
        directory.report(0, 3)
        directory.report(1, 3)
        directory.end_round(1)
        directory.report(2, 3)  # already serving; must not re-accumulate
        assert 3 not in directory._reports


def _vote(round_number: int, step: str = "1",
          voter: bytes = b"v") -> VoteMessage:
    return VoteMessage(voter=voter, round_number=round_number, step=step,
                       sorthash=b"h", sortproof=b"p", prev_hash=b"prev",
                       value=b"val", signature=b"sig")


class TestBoundedVoteBuffer:
    def test_budget_evicts_furthest_future_first(self):
        buffer = VoteBuffer(Environment(), budget_messages=3)
        buffer.anchor_round = 1
        buffer.add(_vote(1))
        buffer.add(_vote(5))
        buffer.add(_vote(9))
        assert buffer.add(_vote(2))  # evicts the round-9 vote
        assert buffer.messages(9, "1") == []
        assert len(buffer.messages(2, "1")) == 1
        assert buffer.evicted == 1

    def test_incoming_beyond_furthest_is_rejected(self):
        buffer = VoteBuffer(Environment(), budget_messages=2)
        buffer.anchor_round = 1
        buffer.add(_vote(1))
        buffer.add(_vote(5))
        assert not buffer.add(_vote(9))  # worse than any victim
        assert buffer.rejected == 1
        assert len(buffer) == 2

    def test_anchor_round_votes_are_never_evicted(self):
        buffer = VoteBuffer(Environment(), budget_messages=2)
        buffer.anchor_round = 3
        buffer.add(_vote(3, voter=b"a"))
        buffer.add(_vote(3, voter=b"b"))
        # Everything buffered is anchored: no candidates, reject incoming.
        assert not buffer.add(_vote(7))
        assert len(buffer.messages(3, "1")) == 2

    def test_high_water_tracks_peak_not_current(self):
        buffer = VoteBuffer(Environment())
        for round_number in (1, 2, 3):
            buffer.add(_vote(round_number))
        buffer.prune_before(3)
        assert len(buffer) == 1
        assert buffer.high_water == 3

    def test_eviction_pops_tail_of_live_bucket(self):
        # count_votes iterates the live bucket list by index; eviction
        # must only shorten it from the tail, never reorder or replace.
        buffer = VoteBuffer(Environment(), budget_messages=2)
        buffer.anchor_round = 1
        bucket = buffer.messages(5, "1")
        buffer.add(_vote(5, voter=b"a"))
        buffer.add(_vote(5, voter=b"b"))
        buffer.add(_vote(1))
        assert [v.voter for v in bucket] == [b"a"]

    def test_prune_at_or_above(self):
        buffer = VoteBuffer(Environment())
        buffer.add(_vote(2))
        buffer.add(_vote(RECOVERY_ROUND_BASE))
        buffer.add(_vote(RECOVERY_ROUND_BASE + 1))
        buffer.prune_at_or_above(RECOVERY_ROUND_BASE)
        assert buffer.rounds_buffered() == {2}
        assert len(buffer) == 1


class TestRecoveryVoteLeak:
    def test_close_prunes_recovery_round_buckets(self):
        """Regression: votes buffered at RECOVERY_ROUND_BASE + k survived
        every normal-round prune_before watermark, so each concluded
        recovery leaked its vote buckets for the life of the node."""
        sim = Simulation(SimulationConfig(num_users=4, seed=3))
        node = sim.nodes[0]
        session = RecoverySession(node, pre_fork_round=0)
        for attempt in range(3):
            node.buffer.add(_vote(RECOVERY_ROUND_BASE + attempt))
        assert node.buffer.rounds_buffered() >= {RECOVERY_ROUND_BASE}
        session.close()
        assert all(r < RECOVERY_ROUND_BASE
                   for r in node.buffer.rounds_buffered())

    def test_close_clears_admission_dedup_state(self):
        """After recovery every participant legitimately re-votes rounds
        it already voted in; stale dedup entries would frame honest peers
        as equivocators."""
        sim = Simulation(SimulationConfig(num_users=4, seed=3))
        node = sim.nodes[0]
        node.admission._first_vote[(b"k", 1, "1")] = _vote(1)
        session = RecoverySession(node, pre_fork_round=0)
        session.close()
        assert node.admission._first_vote == {}


class TestAdmissionGate:
    """Drive AdmissionControl.admit directly on a live simulation node."""

    def _sim(self, **kwargs):
        return run_sim(0, num_users=6, seed=11, **kwargs)

    def test_invalid_signature_rejected_and_sender_scored(self):
        sim = self._sim()
        admission = sim.nodes[0].admission
        junk = H(b"junk")
        vote = VoteMessage(voter=sim.keypairs[2].public, round_number=1,
                           step="1", sorthash=junk, sortproof=junk,
                           prev_hash=sim.nodes[0].chain.tip_hash,
                           value=junk, signature=junk[:32])
        envelope = vote_envelope(sim.keypairs[2].public, vote)
        assert not admission.admit(envelope, 2)
        assert admission.rejected["invalid_signature"] == 1
        assert admission.health.scores[2] > 0

    def test_current_round_vote_gated_on_sortition(self):
        sim = self._sim()
        node = sim.nodes[0]
        keypair = sim.keypairs[2]
        vote = make_vote(sim.backend, keypair.secret, keypair.public, 1,
                         "1", H(b"forged"), b"not-a-proof",
                         node.chain.tip_hash, H(b"value"))
        assert not node.admission.admit(vote_envelope(keypair.public, vote), 2)
        assert node.admission.rejected["failed_sortition"] == 1

    def test_future_round_vote_admitted_undecided(self):
        # Rejecting future votes would break laggards and recovery (the
        # undecidable-messages liveness trap); they are admitted
        # signature-checked and bounded by the buffer budget instead.
        sim = self._sim()
        node = sim.nodes[0]
        vote = signed_vote(sim, 2, 50, "1")
        assert node.admission.admit(
            vote_envelope(sim.keypairs[2].public, vote), 2)
        assert node.admission.admitted == 1

    def test_stale_vote_rejected_without_penalty(self):
        # A vote below the horizon (round 0 at genesis) is harmless
        # lateness, not an offense: rejected, nobody scored.
        sim = self._sim()
        node = sim.nodes[0]
        stale = signed_vote(sim, 2, 0, "1")
        assert not node.admission.admit(
            vote_envelope(sim.keypairs[2].public, stale), 2)
        assert node.admission.rejected["stale"] == 1
        assert node.admission.health.scores == {}

    def test_spoofed_origin_rejected(self):
        sim = self._sim()
        node = sim.nodes[0]
        keypair = sim.keypairs[2]
        vote = make_vote(sim.backend, keypair.secret, keypair.public, 50,
                         "1", H(b"s"), b"p", node.chain.tip_hash, H(b"v"))
        # Valid signature, but wrapped under a different origin key.
        envelope = vote_envelope(sim.keypairs[3].public, vote)
        assert not node.admission.admit(envelope, 3)
        assert node.admission.rejected["origin_mismatch"] == 1

    def test_equivocation_detected_and_origin_scored(self):
        sim = self._sim()
        node = sim.nodes[0]
        keypair = sim.keypairs[2]
        first = make_vote(sim.backend, keypair.secret, keypair.public, 50,
                          "1", H(b"s"), b"p", node.chain.tip_hash, H(b"v1"))
        second = make_vote(sim.backend, keypair.secret, keypair.public, 50,
                           "1", H(b"s"), b"p", node.chain.tip_hash, H(b"v2"))
        assert node.admission.admit(vote_envelope(keypair.public, first), 4)
        # Relayed by an innocent node 4: blame must land on origin 2.
        assert not node.admission.admit(
            vote_envelope(keypair.public, second), 4)
        assert node.admission.rejected["equivocation"] == 1
        assert node.admission.health.scores.get(4) is None
        assert node.admission.health.scores[2] > 0
        assert len(node.admission.evidence) == 1

    def test_duplicate_blames_only_the_origin_sender(self):
        sim = self._sim()
        node = sim.nodes[0]
        keypair = sim.keypairs[2]
        vote = make_vote(sim.backend, keypair.secret, keypair.public, 50,
                         "1", H(b"s"), b"p", node.chain.tip_hash, H(b"v"))
        assert node.admission.admit(vote_envelope(keypair.public, vote), 3)
        # An honest relayer (4) losing the race is not penalized...
        assert not node.admission.admit(vote_envelope(keypair.public, vote), 4)
        assert node.admission.health.scores.get(4) is None
        # ...but the origin re-sending its own vote under a fresh id is.
        assert not node.admission.admit(vote_envelope(keypair.public, vote), 2)
        assert node.admission.health.scores[2] > 0

    def test_flood_budget_blocks_origin(self):
        sim = self._sim(admission=AdmissionConfig(flood_budget_per_round=5))
        node = sim.nodes[0]
        keypair = sim.keypairs[2]
        for k in range(5):
            vote = make_vote(sim.backend, keypair.secret, keypair.public,
                             50 + k, "1", H(b"s"), b"p",
                             node.chain.tip_hash, H(b"v"))
            assert node.admission.admit(vote_envelope(keypair.public, vote), 2)
        over = make_vote(sim.backend, keypair.secret, keypair.public, 99,
                         "1", H(b"s"), b"p", node.chain.tip_hash, H(b"v"))
        assert not node.admission.admit(vote_envelope(keypair.public, over), 2)
        assert node.admission.rejected["flood"] == 1
        assert node.admission.health.is_blocked(2)

    def test_quarantined_sender_rejected_outright(self):
        sim = self._sim()
        node = sim.nodes[0]
        node.admission.health.quarantined_until[2] = 10
        keypair = sim.keypairs[2]
        vote = make_vote(sim.backend, keypair.secret, keypair.public, 50,
                         "1", H(b"s"), b"p", node.chain.tip_hash, H(b"v"))
        assert not node.admission.admit(vote_envelope(keypair.public, vote), 2)
        assert node.admission.rejected["quarantined"] == 1


class TestQuarantineTopology:
    def test_set_quarantined_severs_both_directions(self):
        sim = Simulation(SimulationConfig(num_users=10, seed=7))
        network = sim.network
        victim = 3
        assert network.interfaces[victim].neighbors  # connected before
        network.set_quarantined({victim})
        assert network.interfaces[victim].neighbors == []
        for index, interface in enumerate(network.interfaces):
            assert victim not in interface.neighbors, index

    def test_reshuffle_excludes_quarantined_and_stays_symmetric(self):
        sim = Simulation(SimulationConfig(num_users=10, seed=7))
        network = sim.network
        network.set_quarantined({2, 5})
        network.reshuffle_peers()
        for index, interface in enumerate(network.interfaces):
            assert 2 not in interface.neighbors
            assert 5 not in interface.neighbors
            for neighbor in interface.neighbors:
                assert index in network.interfaces[neighbor].neighbors, (
                    f"{index} -> {neighbor} is one-directional")
        assert network.interfaces[2].neighbors == []
        assert network.interfaces[5].neighbors == []

    def test_release_reconnects_the_freed_peer(self):
        sim = Simulation(SimulationConfig(num_users=10, seed=7))
        network = sim.network
        network.set_quarantined({4})
        network.set_quarantined(frozenset())
        assert network.interfaces[4].neighbors
        for neighbor in network.interfaces[4].neighbors:
            assert 4 in network.interfaces[neighbor].neighbors

    def test_rng_path_unchanged_without_quarantine(self):
        """Enabling the admission machinery must not perturb the honest
        topology: same seed, same neighbor map, admission on or off."""
        with_admission = Simulation(SimulationConfig(num_users=12, seed=9))
        without = Simulation(SimulationConfig(num_users=12, seed=9,
                                              use_admission=False))
        assert ([i.neighbors for i in with_admission.network.interfaces]
                == [i.neighbors for i in without.network.interfaces])


class TestHonestDeterminism:
    def test_admission_is_transparent_on_honest_runs(self):
        """Same seed, admission on vs off: byte-identical chains, zero
        rejections (beyond none at all) and no quarantines."""
        tips = {}
        for use_admission in (True, False):
            sim = run_sim(2, payments=12, num_users=10, seed=21,
                          use_admission=use_admission)
            tips[use_admission] = [node.chain.tip_hash
                                   for node in sim.nodes]
            if use_admission:
                summary = sim.summary()["admission"]
                assert summary["quarantined"] == []
                assert summary["quarantines"] == 0
        assert tips[True] == tips[False]

    def test_same_seed_same_admission_counters(self):
        def run():
            sim = Simulation(SimulationConfig(num_users=8, seed=33))
            sim.run_rounds(2)
            return sim.summary()["admission"]

        assert run() == run()
