"""Tests for cryptographic sortition (Algorithms 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SortitionError
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.sortition.selection import (
    hash_to_fraction,
    selection_probability,
    sortition,
    sub_users_selected,
    verify_sort,
)


def _hash_for_fraction(fraction: float) -> bytes:
    """A 32-byte 'VRF hash' whose hash_to_fraction is ~fraction."""
    top = int(fraction * (1 << 53))
    return (top << 11).to_bytes(8, "big") + bytes(24)


class TestHashToFraction:
    def test_zero(self):
        assert hash_to_fraction(bytes(32)) == 0.0

    def test_all_ones_below_one(self):
        assert 0.99 < hash_to_fraction(b"\xff" * 32) < 1.0

    def test_monotone(self):
        low = _hash_for_fraction(0.2)
        high = _hash_for_fraction(0.8)
        assert hash_to_fraction(low) < hash_to_fraction(high)

    def test_empty_hash_rejected(self):
        with pytest.raises(SortitionError):
            hash_to_fraction(b"")


class TestSubUsersSelected:
    def test_zero_weight_never_selected(self):
        assert sub_users_selected(H(b"x"), 0, 10, 100) == 0

    def test_result_bounded_by_weight(self):
        for i in range(16):
            j = sub_users_selected(H(bytes([i])), 5, 10, 100)
            assert 0 <= j <= 5

    def test_low_fraction_gives_zero(self):
        # fraction ~0 falls in the j=0 interval when p is small.
        assert sub_users_selected(_hash_for_fraction(0.0), 10, 1, 1000) == 0

    def test_high_fraction_gives_positive(self):
        # fraction ~1 falls in the top interval.
        j = sub_users_selected(_hash_for_fraction(0.999999), 10, 5, 100)
        assert j >= 1

    def test_certain_selection_when_p_is_one(self):
        assert sub_users_selected(H(b"x"), 7, 100, 100) == 7

    def test_validates_inputs(self):
        with pytest.raises(SortitionError):
            sub_users_selected(H(b"x"), -1, 10, 100)
        with pytest.raises(SortitionError):
            sub_users_selected(H(b"x"), 5, 10, 0)
        with pytest.raises(SortitionError):
            sub_users_selected(H(b"x"), 101, 10, 100)
        with pytest.raises(SortitionError):
            sub_users_selected(H(b"x"), 5, 0, 100)

    def test_exact_and_scipy_paths_agree(self):
        """The exact recurrence (w <= 64) must agree with scipy's ppf."""
        from scipy.stats import binom
        p = 0.07
        for i in range(64):
            fraction = hash_to_fraction(H(bytes([i])))
            exact = sub_users_selected(H(bytes([i])), 50, p * 1000, 1000)
            scipy_j = int(binom.ppf(fraction, 50, p))
            assert exact == scipy_j

    def test_expected_selection_count(self):
        """Across many users the mean number selected approximates tau."""
        tau, weight, total = 40, 10, 1000
        selections = [
            sub_users_selected(H(b"seed", bytes([i])), weight, tau, total)
            for i in range(100)  # 100 users x 10 units == total weight
        ]
        assert 25 <= sum(selections) <= 55  # tau=40, sigma~6

    def test_sybil_invariance_distributional(self):
        """Splitting weight w into k pseudonyms leaves the *distribution*
        of total selected sub-users unchanged (binomial convolution,
        section 5.1). Checked by comparing means over many trials."""
        rng = np.random.default_rng(0)
        tau, total = 50, 10_000
        single, split = [], []
        for trial in range(300):
            whole_hash = H(b"whole", trial.to_bytes(4, "big"))
            single.append(sub_users_selected(whole_hash, 40, tau, total))
            parts = 0
            for piece in range(4):
                piece_hash = H(b"piece", trial.to_bytes(4, "big"),
                               bytes([piece]))
                parts += sub_users_selected(piece_hash, 10, tau, total)
            split.append(parts)
        # E[j] = w * tau / W = 0.2 in both cases.
        assert abs(np.mean(single) - np.mean(split)) < 0.12
        assert abs(np.mean(single) - 0.2) < 0.1


class TestSortitionEndToEnd:
    def setup_method(self):
        self.backend = FastBackend()
        self.kp = self.backend.keypair(H(b"sortition-user"))

    def test_prove_then_verify(self):
        proof = sortition(self.backend, self.kp.secret, b"seed", 10,
                          b"role", 50, 100)
        j = verify_sort(self.backend, self.kp.public, proof.vrf_hash,
                        proof.vrf_proof, b"seed", 10, b"role", 50, 100)
        assert j == proof.j

    def test_verify_rejects_wrong_seed(self):
        proof = sortition(self.backend, self.kp.secret, b"seed", 50,
                          b"role", 100, 100)
        assert proof.j > 0  # p=0.5, w=100: overwhelmingly selected
        assert verify_sort(self.backend, self.kp.public, proof.vrf_hash,
                           proof.vrf_proof, b"other-seed", 50, b"role",
                           100, 100) == 0

    def test_verify_rejects_wrong_role(self):
        proof = sortition(self.backend, self.kp.secret, b"seed", 50,
                          b"role", 100, 100)
        assert verify_sort(self.backend, self.kp.public, proof.vrf_hash,
                           proof.vrf_proof, b"seed", 50, b"other", 100,
                           100) == 0

    def test_verify_rejects_forged_hash(self):
        proof = sortition(self.backend, self.kp.secret, b"seed", 50,
                          b"role", 100, 100)
        assert verify_sort(self.backend, self.kp.public, H(b"forged"),
                           proof.vrf_proof, b"seed", 50, b"role", 100,
                           100) == 0

    def test_verify_uses_claimed_weight(self):
        """A user cannot inflate their weight: the verifier looks the
        weight up in the ledger, and j is recomputed from it."""
        proof = sortition(self.backend, self.kp.secret, b"seed", 10,
                          b"role", 100, 100)
        j_honest = verify_sort(self.backend, self.kp.public,
                               proof.vrf_hash, proof.vrf_proof, b"seed",
                               10, b"role", 100, 100)
        j_zero_weight = verify_sort(self.backend, self.kp.public,
                                    proof.vrf_hash, proof.vrf_proof,
                                    b"seed", 10, b"role", 0, 100)
        assert j_honest > 0
        assert j_zero_weight == 0

    def test_selection_is_private(self):
        """Without the secret key, selection is not predictable from
        public data: different users' outcomes are independent."""
        outcomes = []
        for i in range(30):
            kp = self.backend.keypair(H(b"user", bytes([i])))
            proof = sortition(self.backend, kp.secret, b"seed", 15,
                              b"role", 1, 30)
            outcomes.append(proof.j)
        assert 0 < sum(outcomes) < 30  # some selected, some not


class TestSelectionProbability:
    def test_zero_weight(self):
        assert selection_probability(0, 10, 100) == 0.0

    def test_full_weight(self):
        assert selection_probability(100, 100, 100) == 1.0

    def test_monotone_in_weight(self):
        probabilities = [selection_probability(w, 10, 1000)
                         for w in (1, 5, 20, 100)]
        assert probabilities == sorted(probabilities)


@settings(max_examples=50, deadline=None)
@given(
    weight=st.integers(min_value=0, max_value=200),
    tau=st.integers(min_value=1, max_value=100),
    data=st.binary(min_size=8, max_size=32),
)
def test_sub_users_selected_properties(weight, tau, data):
    total = 1000
    j = sub_users_selected(H(data), weight, tau, total)
    assert 0 <= j <= weight
    # Determinism.
    assert j == sub_users_selected(H(data), weight, tau, total)
