"""Integration tests: full deployments running multiple rounds.

These exercise the whole stack — sortition, proposal, gossip (with real
latency and bandwidth), BA*, certificates, chain growth — and check the
paper's safety and liveness goals at small scale.
"""

from __future__ import annotations

import pytest

from repro.baplus.certificate import verify_certificate
from repro.baplus.context import BAContext
from repro.baplus.protocol import FINAL
from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def three_round_sim():
    """One shared 20-user, 3-round run (module-scoped: it is the
    expensive fixture that many read-only assertions share)."""
    sim = Simulation(SimulationConfig(num_users=20, seed=42))
    sim.submit_payments(40, note_bytes=20)
    sim.run_rounds(3)
    return sim


class TestSafety:
    def test_no_forks(self, three_round_sim):
        sim = three_round_sim
        for round_number in (1, 2, 3):
            assert len(sim.agreed_hashes(round_number)) == 1

    def test_all_chains_identical(self, three_round_sim):
        assert three_round_sim.all_chains_equal()

    def test_money_conserved_everywhere(self, three_round_sim):
        sim = three_round_sim
        expected = 20 * sim.config.initial_balance
        for node in sim.nodes:
            assert node.chain.state.total_weight == expected

    def test_balances_agree_across_nodes(self, three_round_sim):
        sim = three_round_sim
        reference = sim.nodes[0].chain.state.weights()
        for node in sim.nodes[1:]:
            assert node.chain.state.weights() == reference


class TestLiveness:
    def test_all_rounds_completed(self, three_round_sim):
        for node in three_round_sim.nodes:
            assert node.chain.height == 3
            assert not node.halted

    def test_transactions_committed(self, three_round_sim):
        sim = three_round_sim
        committed = sum(
            len(block.transactions)
            for block in sim.nodes[0].chain.blocks[1:]
        )
        assert committed >= 30

    def test_rounds_fast_in_common_case(self, three_round_sim):
        """Strong synchrony + honest proposer: rounds complete within a
        couple of lambda_step (well under the timeout budget)."""
        sim = three_round_sim
        for round_number in (2, 3):
            for latency in sim.round_latencies(round_number):
                assert latency < (TEST_PARAMS.lambda_priority
                                  + TEST_PARAMS.lambda_stepvar
                                  + 3 * TEST_PARAMS.lambda_step)

    def test_final_consensus_in_common_case(self, three_round_sim):
        sim = three_round_sim
        for node in sim.nodes:
            for round_number in (1, 2, 3):
                assert node.metrics.round_record(round_number).kind == FINAL


class TestCertificates:
    def test_every_round_has_verifiable_certificate(self, three_round_sim):
        sim = three_round_sim
        node = sim.nodes[0]
        # Rebuild contexts in order (as a bootstrapping user would) and
        # verify each round's certificate against them.
        from repro.ledger.blockchain import Blockchain
        replay = Blockchain(
            {kp.public: sim.config.initial_balance for kp in sim.keypairs},
            sim.genesis_seed, TEST_PARAMS.seed_refresh_interval)
        for round_number in (1, 2, 3):
            certificate = node.chain.certificate_at(round_number)
            assert certificate is not None
            ctx = BAContext.from_weights(
                replay.selection_seed(round_number),
                replay.state.weights(), replay.tip_hash)
            verify_certificate(certificate, ctx, sim.backend, TEST_PARAMS)
            assert certificate.value == node.chain.block_at(
                round_number).block_hash
            replay.append(node.chain.block_at(round_number),
                          seed_override=node.chain.seed_of_round(
                              round_number))


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            sim = Simulation(SimulationConfig(num_users=12, seed=seed))
            sim.run_rounds(2)
            return (sim.nodes[0].chain.tip_hash, sim.env.now)

        assert run(7) == run(7)

    def test_different_seeds_different_runs(self):
        def run(seed):
            sim = Simulation(SimulationConfig(num_users=12, seed=seed))
            sim.run_rounds(1)
            return sim.nodes[0].chain.tip_hash

        assert run(1) != run(2)


class TestWeightedSortitionIntegration:
    def test_unequal_stake_still_agrees(self):
        """A Zipf-ish stake distribution (whales + minnows) must not break
        agreement; weights just skew committee membership."""
        balances = [100, 50, 25, 12, 6, 3, 2, 2] + [1] * 12
        sim = Simulation(SimulationConfig(
            num_users=20, seed=9, balances=balances))
        sim.run_rounds(2)
        assert sim.all_chains_equal()
        assert len(sim.agreed_hashes(1)) == 1

    def test_zero_weight_users_cannot_vote(self):
        """Users with zero balance observe but never join committees."""
        balances = [20] * 10 + [0] * 5
        sim = Simulation(SimulationConfig(
            num_users=15, seed=11, balances=balances))
        sim.run_rounds(1)
        assert sim.all_chains_equal()
        zero_nodes = sim.nodes[10:]
        for node in zero_nodes:
            # They still completed the round (passive participation).
            assert node.chain.height == 1
            assert node.interface.bytes_sent >= 0


class TestBandwidthModel:
    def test_larger_blocks_take_longer(self):
        """Block payload size must translate into round latency through
        the bandwidth model (the mechanism behind Figure 7)."""
        import dataclasses
        params = dataclasses.replace(TEST_PARAMS, block_size=500_000)

        def median_latency(note_bytes):
            sim = Simulation(SimulationConfig(
                num_users=15, seed=3, bandwidth_bps=5e6, params=params))
            sim.submit_payments(120, note_bytes=note_bytes)
            sim.run_rounds(1)
            latencies = sorted(sim.round_latencies(1))
            return latencies[len(latencies) // 2]

        small = median_latency(10)
        large = median_latency(3500)
        # ~430 KB of payload through 5 Mbit/s uplinks adds whole seconds.
        assert large > small + 0.5
