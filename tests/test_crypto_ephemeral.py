"""Tests for Merkle commitments and forward-secure ephemeral keys (§11)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CryptoError
from repro.crypto.backend import FastBackend
from repro.crypto.ephemeral import EphemeralKeyChain, verify_ephemeral_key
from repro.crypto.hashing import H
from repro.crypto.merkle import merkle_proof, merkle_root, verify_merkle


class TestMerkle:
    def test_single_leaf(self):
        leaves = [b"only"]
        proof = merkle_proof(leaves, 0)
        assert verify_merkle(merkle_root(leaves), b"only", proof)

    def test_all_leaves_provable(self):
        leaves = [bytes([i]) * 4 for i in range(7)]  # odd count
        root = merkle_root(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_merkle(root, leaf, merkle_proof(leaves, i))

    def test_wrong_leaf_rejected(self):
        leaves = [bytes([i]) for i in range(8)]
        root = merkle_root(leaves)
        proof = merkle_proof(leaves, 3)
        assert not verify_merkle(root, b"forged", proof)

    def test_wrong_position_rejected(self):
        leaves = [bytes([i]) for i in range(8)]
        root = merkle_root(leaves)
        proof_for_3 = merkle_proof(leaves, 3)
        assert not verify_merkle(root, leaves[4], proof_for_3)

    def test_root_depends_on_order(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_leaf_node_domain_separation(self):
        """An interior node value must not be acceptable as a leaf."""
        leaves = [b"a", b"b", b"c", b"d"]
        root = merkle_root(leaves)
        # The root of a 2-leaf subtree is an interior hash; presenting it
        # as a leaf with a shortened proof must fail.
        sub = merkle_root([b"a", b"b"])
        short_proof = merkle_proof([b"x", b"y"], 0)  # arbitrary 1-level
        assert not verify_merkle(root, sub, short_proof)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merkle_root([])

    def test_index_bounds(self):
        with pytest.raises(IndexError):
            merkle_proof([b"a"], 1)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                max_size=20),
       st.data())
def test_merkle_roundtrip_property(leaves, data):
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    root = merkle_root(leaves)
    assert verify_merkle(root, leaves[index], merkle_proof(leaves, index))


class TestEphemeralKeyChain:
    def _chain(self, backend=None):
        backend = backend or FastBackend()
        return backend, EphemeralKeyChain(
            backend, H(b"master"), first_round=5, num_rounds=3,
            steps=["reduction_one", "1", "2", "final"])

    def test_disclose_and_verify(self):
        backend, chain = self._chain()
        key = chain.use_key(6, "1")
        assert verify_ephemeral_key(chain.root, key.keypair.public, 6,
                                    "1", key.proof)

    def test_signing_with_disclosed_key(self):
        backend, chain = self._chain()
        key = chain.use_key(5, "final")
        signature = backend.sign(key.keypair.secret, b"vote payload")
        backend.verify(key.keypair.public, b"vote payload", signature)

    def test_key_erased_after_use(self):
        """Forward security: a used slot cannot be re-derived, so a
        later compromise cannot re-sign an old step."""
        _, chain = self._chain()
        chain.use_key(6, "1")
        with pytest.raises(KeyError):
            chain.use_key(6, "1")

    def test_slot_binding(self):
        """A key disclosed for one slot does not verify for another."""
        _, chain = self._chain()
        key = chain.use_key(6, "1")
        assert not verify_ephemeral_key(chain.root, key.keypair.public,
                                        6, "2", key.proof)
        assert not verify_ephemeral_key(chain.root, key.keypair.public,
                                        7, "1", key.proof)

    def test_foreign_key_rejected(self):
        backend, chain = self._chain()
        intruder = backend.keypair(H(b"intruder"))
        key = chain.use_key(6, "2")
        assert not verify_ephemeral_key(chain.root, intruder.public, 6,
                                        "2", key.proof)

    def test_out_of_window_rejected(self):
        _, chain = self._chain()
        with pytest.raises(KeyError):
            chain.use_key(99, "1")
        with pytest.raises(KeyError):
            chain.use_key(5, "unknown-step")

    def test_slot_accounting(self):
        _, chain = self._chain()
        assert chain.remaining_slots() == 12
        chain.use_key(5, "1")
        assert chain.remaining_slots() == 11

    def test_deterministic_commitment(self):
        backend = FastBackend()
        a = EphemeralKeyChain(backend, H(b"m"), 0, 2, ["1"])
        b = EphemeralKeyChain(backend, H(b"m"), 0, 2, ["1"])
        assert a.root == b.root
        c = EphemeralKeyChain(backend, H(b"other"), 0, 2, ["1"])
        assert c.root != a.root

    def test_master_secret_validated(self):
        with pytest.raises(CryptoError):
            EphemeralKeyChain(FastBackend(), b"short", 0, 1, ["1"])

    def test_window_validated(self):
        with pytest.raises(ValueError):
            EphemeralKeyChain(FastBackend(), H(b"m"), 0, 0, ["1"])
        with pytest.raises(ValueError):
            EphemeralKeyChain(FastBackend(), H(b"m"), 0, 1, [])
