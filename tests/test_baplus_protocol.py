"""Tests for Reduction, BinaryBA*, BA* and certificates.

These run many participants as concurrent simulation processes over an
instant broadcast channel, isolating the protocol logic from gossip.
"""

from __future__ import annotations

import pytest

from repro.baplus.buffer import VoteBuffer
from repro.baplus.certificate import (
    Certificate,
    build_certificate,
    verify_certificate,
    votes_needed,
)
from repro.baplus.context import BAContext
from repro.baplus.protocol import (
    FINAL,
    TENTATIVE,
    ba_star,
    binary_ba_star,
    reduction,
)
from repro.baplus.voting import BAParticipant
from repro.common.errors import ConsensusHalted, InvalidCertificate
from repro.common.params import TEST_PARAMS, ProtocolParams
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.block import empty_block_hash
from repro.sim.loop import Environment
from repro.sortition.roles import FINAL_STEP


class ProtocolCluster:
    """Participants over an instant broadcast medium."""

    def __init__(self, n=20, weight=10, params=TEST_PARAMS, seed=b"seed"):
        self.env = Environment()
        self.backend = FastBackend()
        self.params = params
        self.keypairs = [self.backend.keypair(H(b"pc", bytes([i])))
                         for i in range(n)]
        weights = {kp.public: weight for kp in self.keypairs}
        self.ctx = BAContext.from_weights(H(seed), weights, H(b"tip"))
        self.participants = [
            BAParticipant(env=self.env, params=params, backend=self.backend,
                          buffer=VoteBuffer(self.env), keypair=kp,
                          gossip_vote=self._broadcast)
            for kp in self.keypairs
        ]

    def _broadcast(self, vote):
        for participant in self.participants:
            participant.buffer.add(vote)

    def run_all(self, make_generator):
        """Run ``make_generator(participant)`` on every participant and
        collect return values."""
        results = {}

        def runner(index, participant):
            results[index] = yield from make_generator(participant)

        for index, participant in enumerate(self.participants):
            self.env.process(runner(index, participant))
        self.env.run()
        return [results[i] for i in range(len(self.participants))]


class TestReduction:
    def test_unanimous_input_wins(self):
        cluster = ProtocolCluster()
        block_hash = H(b"the-block")
        results = cluster.run_all(
            lambda p: reduction(p, cluster.ctx, 1, block_hash))
        assert set(results) == {block_hash}

    def test_split_inputs_reduce_to_empty(self):
        """With inputs split 50/50 (malicious highest-priority proposer),
        no value crosses the threshold and everyone lands on empty."""
        cluster = ProtocolCluster()
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)

        def generator(participant):
            index = cluster.participants.index(participant)
            start = H(b"a") if index % 2 == 0 else H(b"b")
            return reduction(participant, cluster.ctx, 1, start)

        results = cluster.run_all(generator)
        assert set(results) == {empty}

    def test_at_most_one_nonempty_output(self):
        """Reduction's contract: never two different non-empty outputs."""
        for split in (0.55, 0.7, 0.9):
            cluster = ProtocolCluster(seed=b"s" + str(split).encode())
            empty = empty_block_hash(1, cluster.ctx.last_block_hash)
            cut = int(len(cluster.participants) * split)

            def generator(participant, cut=cut, cluster=cluster):
                index = cluster.participants.index(participant)
                start = H(b"major") if index < cut else H(b"minor")
                return reduction(participant, cluster.ctx, 1, start)

            results = cluster.run_all(generator)
            non_empty = {r for r in results if r != empty}
            assert len(non_empty) <= 1


class TestBinaryBAStar:
    def test_unanimous_block_hash_step1(self):
        cluster = ProtocolCluster()
        block_hash = H(b"blk")
        results = cluster.run_all(
            lambda p: binary_ba_star(p, cluster.ctx, 1, block_hash))
        assert all(r.value == block_hash for r in results)
        assert all(r.deciding_step == 1 for r in results)
        assert all(r.voted_final for r in results)

    def test_unanimous_empty_hash_step2(self):
        cluster = ProtocolCluster()
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)
        results = cluster.run_all(
            lambda p: binary_ba_star(p, cluster.ctx, 1, empty))
        assert all(r.value == empty for r in results)
        assert all(r.deciding_step == 2 for r in results)
        assert not any(r.voted_final for r in results)

    def test_agreement_under_split_inputs(self):
        """Even when honest users start split, all agree on one value."""
        cluster = ProtocolCluster()
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)
        block_hash = H(b"blk")

        def generator(participant):
            index = cluster.participants.index(participant)
            start = block_hash if index % 2 == 0 else empty
            return binary_ba_star(participant, cluster.ctx, 1, start)

        results = cluster.run_all(generator)
        values = {r.value for r in results}
        assert len(values) == 1
        assert values <= {block_hash, empty}

    def test_max_steps_halts(self):
        """With no committee ever reaching quorum (zero weight users vs a
        huge total), BinaryBA* must raise ConsensusHalted, not loop."""
        params = ProtocolParams(
            tau_proposer=5, tau_step=80, tau_final=100,
            lambda_priority=0.1, lambda_block=0.2, lambda_step=0.1,
            lambda_stepvar=0.1, max_steps=6,
        )
        cluster = ProtocolCluster(n=3, weight=1, params=params)
        # 3 users of weight 1 can never reach 0.685*80 votes.
        failures = []

        def runner(participant):
            try:
                yield from binary_ba_star(participant, cluster.ctx, 1,
                                          H(b"blk"))
            except ConsensusHalted:
                failures.append(participant.keypair.public)

        for participant in cluster.participants:
            cluster.env.process(runner(participant))
        cluster.env.run()
        assert len(failures) == 3


class TestBAStar:
    def test_final_consensus_common_case(self):
        cluster = ProtocolCluster()
        block_hash = H(b"blk")
        results = cluster.run_all(
            lambda p: ba_star(p, cluster.ctx, 1, block_hash))
        assert all(r.kind == FINAL for r in results)
        assert all(r.block_hash == block_hash for r in results)

    def test_tentative_on_empty(self):
        cluster = ProtocolCluster()
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)
        results = cluster.run_all(
            lambda p: ba_star(p, cluster.ctx, 1, empty))
        assert all(r.kind == TENTATIVE for r in results)
        assert all(r.block_hash == empty for r in results)

    def test_split_inputs_still_agree(self):
        cluster = ProtocolCluster()
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)

        def generator(participant):
            index = cluster.participants.index(participant)
            start = H(b"a") if index < 7 else H(b"b")
            return ba_star(participant, cluster.ctx, 1, start)

        results = cluster.run_all(generator)
        assert {r.block_hash for r in results} == {empty}


class TestCertificates:
    def _agreed_cluster(self):
        cluster = ProtocolCluster()
        block_hash = H(b"certified")
        cluster.run_all(lambda p: ba_star(p, cluster.ctx, 1, block_hash))
        return cluster, block_hash

    def test_build_and_verify(self):
        cluster, block_hash = self._agreed_cluster()
        certificate = build_certificate(
            cluster.participants[0].buffer, cluster.ctx, cluster.backend,
            cluster.params, 1, "1", block_hash)
        assert certificate is not None
        verify_certificate(certificate, cluster.ctx, cluster.backend,
                           cluster.params)

    def test_final_certificate(self):
        cluster, block_hash = self._agreed_cluster()
        certificate = build_certificate(
            cluster.participants[0].buffer, cluster.ctx, cluster.backend,
            cluster.params, 1, FINAL_STEP, block_hash)
        assert certificate is not None
        assert certificate.is_final
        verify_certificate(certificate, cluster.ctx, cluster.backend,
                           cluster.params)

    def test_truncated_certificate_rejected(self):
        cluster, block_hash = self._agreed_cluster()
        certificate = build_certificate(
            cluster.participants[0].buffer, cluster.ctx, cluster.backend,
            cluster.params, 1, "1", block_hash)
        truncated = Certificate(
            round_number=1, step="1", value=block_hash,
            votes=certificate.votes[:len(certificate.votes) // 3])
        with pytest.raises(InvalidCertificate):
            verify_certificate(truncated, cluster.ctx, cluster.backend,
                               cluster.params)

    def test_mixed_value_certificate_rejected(self):
        cluster, block_hash = self._agreed_cluster()
        certificate = build_certificate(
            cluster.participants[0].buffer, cluster.ctx, cluster.backend,
            cluster.params, 1, "1", block_hash)
        tampered = Certificate(
            round_number=1, step="1", value=H(b"other"),
            votes=certificate.votes)
        with pytest.raises(InvalidCertificate):
            verify_certificate(tampered, cluster.ctx, cluster.backend,
                               cluster.params)

    def test_duplicate_votes_rejected(self):
        cluster, block_hash = self._agreed_cluster()
        certificate = build_certificate(
            cluster.participants[0].buffer, cluster.ctx, cluster.backend,
            cluster.params, 1, "1", block_hash)
        padded = Certificate(
            round_number=1, step="1", value=block_hash,
            votes=certificate.votes + (certificate.votes[0],))
        with pytest.raises(InvalidCertificate):
            verify_certificate(padded, cluster.ctx, cluster.backend,
                               cluster.params)

    def test_votes_needed_matches_paper_formula(self):
        assert votes_needed("1", TEST_PARAMS) == int(
            TEST_PARAMS.t_step * TEST_PARAMS.tau_step) + 1
        assert votes_needed(FINAL_STEP, TEST_PARAMS) == int(
            TEST_PARAMS.t_final * TEST_PARAMS.tau_final) + 1

    def test_certificate_size_accounting(self):
        cluster, block_hash = self._agreed_cluster()
        certificate = build_certificate(
            cluster.participants[0].buffer, cluster.ctx, cluster.backend,
            cluster.params, 1, "1", block_hash)
        assert certificate.size == len(certificate.votes) * 250
