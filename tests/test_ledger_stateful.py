"""Stateful property tests: the ledger as a random state machine.

Hypothesis drives random sequences of payments, block commits, and fork
rebuilds against :class:`AccountState`/:class:`Blockchain`, checking the
invariants consensus depends on after every step:

* total currency is conserved (the sortition denominator ``W`` is fixed);
* balances never go negative;
* nonces are strictly sequential per sender;
* a chain rebuilt from its own blocks reproduces identical state.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.common.errors import InvalidTransaction
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.block import Block
from repro.ledger.blockchain import Blockchain
from repro.ledger.transaction import make_transaction
from repro.sortition.seed import propose_seed

NUM_USERS = 4
INITIAL_BALANCE = 25


class LedgerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.backend = FastBackend()
        self.users = [self.backend.keypair(H(b"sm", bytes([i])))
                      for i in range(NUM_USERS)]
        self.balances = {kp.public: INITIAL_BALANCE for kp in self.users}
        self.chain = Blockchain(self.balances, H(b"sm-genesis"), 10)
        self.pending = []  # transactions staged for the next block

    # --- rules -----------------------------------------------------------

    @rule(sender=st.integers(0, NUM_USERS - 1),
          recipient=st.integers(0, NUM_USERS - 1),
          amount=st.integers(1, 40))
    def stage_payment(self, sender, recipient, amount):
        if sender == recipient:
            return
        sender_kp = self.users[sender]
        trial = self.chain.state.copy()
        trial.apply_all(self.pending)
        nonce = trial.next_nonce(sender_kp.public)
        tx = make_transaction(self.backend, sender_kp.secret,
                              sender_kp.public,
                              self.users[recipient].public, amount, nonce)
        try:
            trial.apply(tx)
        except InvalidTransaction:
            return  # overspend at current staged state; skip
        self.pending.append(tx)

    @rule()
    def commit_block(self):
        proposer = self.users[0]
        round_number = self.chain.next_round
        seed, proof = propose_seed(
            self.backend, proposer.secret,
            self.chain.seed_of_round(round_number - 1), round_number)
        block = Block(
            round_number=round_number, prev_hash=self.chain.tip_hash,
            timestamp=float(round_number), seed=seed, seed_proof=proof,
            proposer=proposer.public, proposer_vrf_hash=H(b"v"),
            proposer_vrf_proof=b"p", proposer_priority=H(b"v"),
            transactions=tuple(self.pending),
        )
        self.chain.append(block)
        self.pending = []

    @precondition(lambda self: self.chain.height >= 1)
    @rule()
    def rebuild_from_blocks(self):
        rebuilt = self.chain.fork_from(self.chain.blocks[1:])
        assert rebuilt.tip_hash == self.chain.tip_hash
        assert rebuilt.state.weights() == self.chain.state.weights()
        assert rebuilt.height == self.chain.height

    # --- invariants --------------------------------------------------------

    @invariant()
    def total_conserved(self):
        if not hasattr(self, "chain"):
            return
        assert self.chain.state.total_weight == NUM_USERS * INITIAL_BALANCE

    @invariant()
    def no_negative_balances(self):
        if not hasattr(self, "chain"):
            return
        assert all(balance >= 0
                   for balance in self.chain.state.weights().values())

    @invariant()
    def weight_history_consistent(self):
        if not hasattr(self, "chain"):
            return
        # The latest snapshot equals live state.
        assert (self.chain.weights_at(self.chain.height)
                == self.chain.state.weights())

    @invariant()
    def staged_transactions_remain_applicable(self):
        if not hasattr(self, "chain"):
            return
        assert self.chain.state.would_accept(self.pending)


TestLedgerStateMachine = LedgerMachine.TestCase
TestLedgerStateMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None)
