"""Substrate API tests: protocols, the live clock, the live transport.

``repro.substrate`` names the seam both runners satisfy; these tests
pin that both the sim objects (``Environment``, ``NetworkInterface``,
``SimSubstrate``) and the live objects (``LiveClock``,
``LiveTransport``) structurally conform, and unit-test the live pieces
that have no sim twin: wall-clock pacing, the kick, msg_id re-stamping,
and the bounded drain.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.experiments.harness import Simulation, SimulationConfig
from repro.live.clock import LiveClock
from repro.live.transport import MSG_ID_SEQ_BITS, LiveTransport
from repro.network.message import Envelope
from repro.network.wire import encode_envelope
from repro.substrate import Clock, SimSubstrate, Substrate, Transport


def _envelope(origin: bytes, msg_id: int) -> Envelope:
    return Envelope(origin=origin, kind="priority", payload=_PRIORITY,
                    size=200, msg_id=msg_id)


def _make_priority():
    from repro.crypto.backend import FastBackend
    from repro.crypto.hashing import H
    from repro.node.proposal import PriorityMessage
    kp = FastBackend().keypair(H(b"s-prop"))
    return PriorityMessage(proposer=kp.public, round_number=1,
                           vrf_hash=H(b"vrf"), vrf_proof=b"p" * 16,
                           sub_users=1, priority=H(b"prio"))


_PRIORITY = _make_priority()


class _FakeLink:
    """Just enough of PeerLink for transport unit tests."""

    def __init__(self, peer: int) -> None:
        self.peer = peer
        self.closed = False
        self.frames: list[bytes] = []

    def send(self, frame: bytes) -> None:
        self.frames.append(frame)

    async def close(self) -> None:
        self.closed = True


class TestProtocolConformance:
    def test_sim_objects_satisfy_the_protocols(self):
        sim = Simulation(SimulationConfig(num_users=6, seed=5))
        assert isinstance(sim.env, Clock)
        assert isinstance(sim.network.interfaces[0], Transport)
        assert isinstance(sim.substrates[0], Substrate)
        assert sim.substrates[0].name == "sim"
        assert sim.substrates[0].clock is sim.env

    def test_live_objects_satisfy_the_protocols(self):
        clock = LiveClock()
        transport = LiveTransport(0, clock)
        assert isinstance(clock, Clock)
        assert isinstance(transport, Transport)
        assert isinstance(SimSubstrate(clock=clock, transport=transport,
                                       name="live"), Substrate)


class TestLiveClock:
    def test_stop_when_is_required(self):
        async def run():
            await LiveClock().run_async()
        with pytest.raises(ValueError, match="stop_when"):
            asyncio.run(run())

    def test_timers_fire_in_order_and_now_advances(self):
        clock = LiveClock(tick=0.05)
        fired: list[tuple[str, float]] = []
        clock.schedule(0.03, lambda: fired.append(("b", clock.now)))
        clock.schedule(0.01, lambda: fired.append(("a", clock.now)))
        clock.schedule_now(lambda: fired.append(("i", clock.now)))
        asyncio.run(clock.run_async(stop_when=lambda: len(fired) == 3))
        assert [name for name, _ in fired] == ["i", "a", "b"]
        times = [t for _, t in fired]
        assert times == sorted(times)
        assert times[-1] >= 0.03  # wall clock actually elapsed

    def test_deadline_raises(self):
        clock = LiveClock(tick=0.01)
        async def run():
            await clock.run_async(stop_when=lambda: False, deadline=0.05)
        with pytest.raises(TimeoutError, match="deadline"):
            asyncio.run(run())

    def test_kick_interrupts_a_long_sleep(self):
        clock = LiveClock(tick=30.0)  # would sleep half a minute idle
        done = []

        async def run():
            task = asyncio.create_task(
                clock.run_async(stop_when=lambda: bool(done)))
            await asyncio.sleep(0.05)
            done.append(True)
            clock.kick()
            await asyncio.wait_for(task, timeout=5.0)

        started = time.monotonic()
        asyncio.run(run())
        assert time.monotonic() - started < 5.0

    def test_callback_failure_propagates(self):
        clock = LiveClock(tick=0.01)

        def boom():
            raise RuntimeError("kaboom")

        clock.schedule_now(boom)
        async def run():
            await clock.run_async(stop_when=lambda: False, deadline=1.0)
        with pytest.raises(RuntimeError, match="kaboom"):
            asyncio.run(run())


class TestLiveTransport:
    def _transport(self, index=0, **kwargs) -> LiveTransport:
        transport = LiveTransport(index, LiveClock(), **kwargs)
        for peer in (1, 2):
            if peer != index:
                transport.add_link(_FakeLink(peer))
        return transport

    def test_broadcast_restamps_msg_id_into_index_namespace(self):
        transport = self._transport(index=3)
        transport.add_link(_FakeLink(1))
        envelope = _envelope(b"o" * 32, msg_id=42)
        transport.broadcast(envelope)
        transport.broadcast(envelope)
        stamped = (3 << MSG_ID_SEQ_BITS)
        assert stamped in transport._seen
        assert (stamped | 1) in transport._seen
        assert 42 not in transport._seen

    def test_broadcast_reaches_every_link_and_counts(self):
        transport = self._transport()
        transport.broadcast(_envelope(b"o" * 32, msg_id=1))
        for link in transport.links.values():
            assert len(link.frames) == 1
        assert transport.messages_sent == 2
        assert transport.bytes_sent == 400  # logical size x 2 peers
        assert transport.wire_bytes_sent > 0

    def test_deliver_dedups_and_relays_to_other_peers_only(self):
        transport = self._transport()
        payload = encode_envelope(_envelope(b"o" * 32, msg_id=99))
        transport._on_payload(1, payload)
        transport._on_payload(1, payload)  # duplicate
        transport._drain()
        assert len(transport.inbox) == 1
        assert transport.links[1].frames == []     # never back to sender
        assert len(transport.links[2].frames) == 1  # relayed once

    def test_ingress_rejection_does_not_poison_seen(self):
        transport = self._transport()
        payload = encode_envelope(_envelope(b"o" * 32, msg_id=7))
        transport.ingress = lambda envelope, from_index: False
        transport._on_payload(1, payload)
        transport._drain()
        assert len(transport.inbox) == 0
        transport.ingress = None  # later clean copy must be admitted
        transport._on_payload(2, payload)
        transport._drain()
        assert len(transport.inbox) == 1

    def test_rx_queue_bounded_drop_oldest(self):
        transport = self._transport(rx_queue_limit=3)
        for msg_id in range(5):
            transport._on_payload(
                1, encode_envelope(_envelope(b"o" * 32, msg_id=msg_id)))
        assert transport.rx_dropped == 2
        transport._drain()
        # Oldest two (ids 0, 1) were shed before delivery.
        assert sorted(e.msg_id for e in transport.inbox) == [2, 3, 4]

    def test_garbage_payload_counted_not_fatal(self):
        transport = self._transport()
        transport._on_payload(1, b"certainly not an envelope")
        assert transport.garbage_frames == 1
        transport._drain()
        assert len(transport.inbox) == 0

    def test_drain_budget_reschedules_backlog(self):
        transport = self._transport(drain_budget=2)
        for msg_id in range(5):
            transport._on_payload(
                1, encode_envelope(_envelope(b"o" * 32, msg_id=msg_id)))
        transport._drain()
        assert len(transport.inbox) == 2   # one budgeted pass
        assert transport._drain_scheduled  # backlog rescheduled itself
        transport._drain()
        transport._drain()
        assert len(transport.inbox) == 5
