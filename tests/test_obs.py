"""Tests for repro.obs: metrics registry, trace bus, JSONL sink, report.

The simulation-backed tests share two module-scoped deployments (one
traced, one not) of the same seed, so the determinism claims — tracing
changes nothing, snapshots are reproducible — are checked against real
protocol runs without paying for a simulation per test.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.harness import Simulation, SimulationConfig
from repro.obs import JsonlTraceSink, MetricsRegistry, TraceBus, read_trace
from repro.obs.metrics import HistogramSummary
from repro.obs.record import main as record_main
from repro.obs.report import main as report_main
from repro.obs.report import render_report, round_segments, traffic_by_kind

USERS = 8
ROUNDS = 2
SEED = 5
PAYMENTS = 16


def _run(obs: TraceBus | None) -> Simulation:
    sim = Simulation(SimulationConfig(num_users=USERS, seed=SEED), obs=obs)
    sim.submit_payments(PAYMENTS)
    sim.run_rounds(ROUNDS)
    return sim


def _chain_fingerprint(sim: Simulation) -> list[bytes]:
    return [sim.nodes[0].chain.block_at(r).block_hash
            for r in range(1, ROUNDS + 1)]


@pytest.fixture(scope="module")
def traced():
    bus = TraceBus()
    sim = _run(bus)
    return sim, bus


@pytest.fixture(scope="module")
def untraced():
    return _run(None)


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 4)
        registry.inc("a.c", 2.5)
        assert registry.counter("a.b") == 5
        assert registry.counter("a.c") == 2.5
        assert registry.counter("missing") == 0

    def test_set_counter_overwrites(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits", 3)
        registry.set_counter("cache.hits", 10)
        assert registry.counter("cache.hits") == 10

    def test_gauges(self):
        registry = MetricsRegistry()
        assert registry.gauge("x") is None
        registry.set_gauge("x", 1)
        registry.set_gauge("x", 7)
        assert registry.gauge("x") == 7

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.inc("gossip.sent.vote", 2)
        registry.inc("gossip.sent.block")
        registry.inc("router.dispatch.vote")
        assert registry.counters_with_prefix("gossip.sent.") == {
            "gossip.sent.block": 1, "gossip.sent.vote": 2}

    def test_histograms(self):
        registry = MetricsRegistry()
        for value in (1, 5, 3):
            registry.observe("batch", value)
        summary = registry.snapshot()["histograms"]["batch"]
        assert summary == {"count": 3, "sum": 9.0, "min": 1, "max": 5,
                           "mean": 3.0}

    def test_empty_histogram_summary(self):
        assert HistogramSummary().as_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.middle"):
            registry.inc(name)
            registry.set_gauge(name, 0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])
        assert list(snapshot["gauges"]) == sorted(snapshot["gauges"])


class TestTraceBus:
    def test_emit_stamps_bound_clock(self):
        bus = TraceBus()
        now = [0.0]
        bus.bind_clock(lambda: now[0])
        bus.emit("tick")
        now[0] = 2.5
        bus.emit("tock", node=3, round=1, step="final", extra="x")
        assert bus.events[0] == {"t": 0.0, "kind": "tick"}
        assert bus.events[1] == {"t": 2.5, "kind": "tock", "node": 3,
                                 "round": 1, "step": "final", "extra": "x"}

    def test_optional_fields_omitted(self):
        bus = TraceBus()
        bus.emit("bare")
        assert set(bus.events[0]) == {"t", "kind"}

    def test_max_events_bounds_memory(self):
        bus = TraceBus(max_events=2)
        for i in range(5):
            bus.emit("e", index=i)
        assert len(bus.events) == 2
        assert bus.dropped_events == 3
        assert bus.snapshot()["dropped_events"] == 3

    def test_events_of_kind(self):
        bus = TraceBus()
        bus.emit("a")
        bus.emit("b")
        bus.emit("a")
        assert len(bus.events_of_kind("a")) == 2
        assert bus.events_of_kind("missing") == []

    def test_harvesters_run_at_snapshot(self):
        bus = TraceBus()
        bus.add_harvester(lambda b: b.metrics.set_counter("harvested", 42))
        assert bus.snapshot()["counters"]["harvested"] == 42

    def test_close_is_idempotent(self, tmp_path):
        bus = TraceBus()
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        bus.add_sink(sink)
        bus.emit("only")
        first = bus.close()
        second = bus.close()  # must not write a second snapshot
        assert first == second
        events, snapshot = read_trace(tmp_path / "t.jsonl")
        assert len(events) == 1 and snapshot is not None


class TestTracedSimulation:
    def test_event_times_match_simulated_clock(self, traced):
        sim, bus = traced
        times = [event["t"] for event in bus.events]
        assert times == sorted(times)
        assert times[-1] <= sim.env.now

    def test_tracing_is_a_pure_observer(self, traced, untraced):
        """Identical seed with and without a bus: byte-identical chains."""
        sim_on, _ = traced
        assert _chain_fingerprint(sim_on) == _chain_fingerprint(untraced)
        assert sim_on.env.events_processed == untraced.env.events_processed

    def test_snapshot_deterministic_across_runs(self, traced):
        _, bus = traced
        rerun_bus = TraceBus()
        _run(rerun_bus)
        assert rerun_bus.snapshot() == bus.snapshot()
        assert rerun_bus.events == bus.events

    def test_expected_event_kinds_present(self, traced):
        _, bus = traced
        kinds = {event["kind"] for event in bus.events}
        assert {"round_start", "block_proposed", "proposal_resolved",
                "vote_cast", "step_enter", "step_exit",
                "round_commit"} <= kinds

    def test_every_node_commits_every_round(self, traced):
        _, bus = traced
        commits = bus.events_of_kind("round_commit")
        assert len(commits) == USERS * ROUNDS
        for commit in commits:
            assert commit["total_s"] >= commit["ba_s"]
            assert commit["consensus"] in ("final", "tentative")

    def test_summary_surfaces_runtime_counters(self, traced):
        sim, _ = traced
        summary = sim.summary()
        cache = summary["verification_cache"]
        assert cache["hits"] > 0 and "negative_hits" in cache
        assert summary["router_unknown_kinds"] == 0
        assert summary["obs"]["counters"]["router.dispatch.vote"] > 0
        assert summary["sortition"]["verifies"] > 0


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TraceBus()
        bus.add_sink(JsonlTraceSink(path, buffer_lines=2))
        bus.bind_clock(lambda: 1.25)
        bus.emit("commit", node=0, round=1, block_hash=b"\x00\xff")
        bus.emit("plain", value=3)
        bus.metrics.inc("cache.hits", 9)
        bus.close()
        events, snapshot = read_trace(path)
        assert events == [
            {"t": 1.25, "kind": "commit", "node": 0, "round": 1,
             "block_hash": "00ff"},  # bytes are hex-encoded on write
            {"t": 1.25, "kind": "plain", "value": 3},
        ]
        assert snapshot["counters"]["cache.hits"] == 9

    def test_unknown_record_types_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"event","t":0,"kind":"a"}\n'
                        '{"type":"fancy-new-thing","x":1}\n'
                        '\n'
                        '{"type":"snapshot","metrics":{"counters":{}}}\n')
        events, snapshot = read_trace(path)
        assert len(events) == 1
        assert snapshot == {"counters": {}}

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"event","t":0,"kind":"a"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_trace(path)

    def test_closed_sink_rejects_writes(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write_event({"t": 0, "kind": "late"})


class TestReport:
    def test_round_segments_aggregation(self):
        commits = [
            {"kind": "round_commit", "round": 1, "consensus": "final",
             "empty": False, "proposal_s": 2.0, "ba_s": 1.0,
             "final_s": 0.5, "total_s": 3.5},
            {"kind": "round_commit", "round": 1, "consensus": "tentative",
             "empty": False, "proposal_s": 4.0, "ba_s": 3.0,
             "final_s": 0.5, "total_s": 7.5},
        ]
        [row] = round_segments(commits)
        assert row["nodes"] == 2
        assert row["proposal_s"] == 3.0
        assert row["final_nodes"] == 1 and row["tentative_nodes"] == 1

    def test_traffic_join(self):
        rows = traffic_by_kind({
            "gossip.sent.vote": 10, "gossip.sent_bytes.vote": 1000,
            "gossip.recv.vote": 8, "gossip.relayed.vote": 5,
            "gossip.sent.block": 1,
        })
        assert [r["kind"] for r in rows] == ["block", "vote"]
        assert rows[1] == {"kind": "vote", "sent": 10, "sent_bytes": 1000,
                           "recv": 8, "recv_bytes": 0, "relayed": 5}

    def test_render_report_golden_sections(self, traced):
        _, bus = traced
        report = render_report(bus.events, bus.snapshot())
        for header in ("== Per-round segments", "== BA* step timings ==",
                       "== Message traffic by kind ==",
                       "== Runtime counters =="):
            assert header in report
        lines = report.splitlines()
        segment_rows = [line for line in lines
                        if line.split() and line.split()[0].isdigit()
                        and line.split()[1] == str(USERS)]
        assert len(segment_rows) == ROUNDS  # one aggregated row per round
        assert any("vote" in line for line in lines)
        assert any("verification cache" in line for line in lines)

    def test_render_report_empty_trace(self):
        report = render_report([], None)
        assert "(no round_commit events in trace)" in report
        assert "(trace has no snapshot record)" in report

    def test_cli_round_trip(self, traced, tmp_path, capsys):
        _, bus = traced
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        for event in bus.events:
            sink.write_event(event)
        sink.write_snapshot(bus.snapshot())
        sink.close()
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert f"({len(bus.events)} events, snapshot present)" in out
        assert "== Per-round segments" in out

    def test_cli_usage_errors(self, tmp_path, capsys):
        assert report_main([]) == 2
        assert report_main([str(tmp_path / "missing.jsonl")]) == 2
        out = capsys.readouterr().out
        assert "usage:" in out and "does not exist" in out


class TestRecordCLI:
    def test_records_playable_trace(self, tmp_path, capsys):
        path = tmp_path / "rec.jsonl"
        assert record_main(["--users", "6", "--rounds", "1", "--seed", "2",
                            "--payments", "6", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "all chains equal: True" in out
        events, snapshot = read_trace(path)
        assert events and snapshot is not None
        assert json.dumps(snapshot)  # snapshot is JSON-clean
        assert report_main([str(path)]) == 0
