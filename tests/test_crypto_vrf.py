"""Tests for the ECVRF implementation and its protocol-relevant properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import VRFError
from repro.crypto import ed25519, vrf

SK = b"\x11" * 32
PK = ed25519.secret_to_public(SK)
OTHER_SK = b"\x22" * 32
OTHER_PK = ed25519.secret_to_public(OTHER_SK)


class TestProveVerify:
    def test_roundtrip(self):
        pi = vrf.prove(SK, b"alpha")
        beta = vrf.verify(PK, pi, b"alpha")
        assert beta == vrf.proof_to_hash(pi)
        assert len(beta) == vrf.BETA_LEN

    def test_proof_length(self):
        assert len(vrf.prove(SK, b"x")) == vrf.PROOF_LEN

    def test_deterministic(self):
        assert vrf.prove(SK, b"abc") == vrf.prove(SK, b"abc")

    def test_different_inputs_different_outputs(self):
        beta1 = vrf.proof_to_hash(vrf.prove(SK, b"a"))
        beta2 = vrf.proof_to_hash(vrf.prove(SK, b"b"))
        assert beta1 != beta2

    def test_different_keys_different_outputs(self):
        beta1 = vrf.proof_to_hash(vrf.prove(SK, b"a"))
        beta2 = vrf.proof_to_hash(vrf.prove(OTHER_SK, b"a"))
        assert beta1 != beta2


class TestVerifyRejects:
    def test_wrong_input(self):
        pi = vrf.prove(SK, b"alpha")
        with pytest.raises(VRFError):
            vrf.verify(PK, pi, b"beta")

    def test_wrong_key(self):
        pi = vrf.prove(SK, b"alpha")
        with pytest.raises(VRFError):
            vrf.verify(OTHER_PK, pi, b"alpha")

    def test_tampered_gamma(self):
        pi = bytearray(vrf.prove(SK, b"alpha"))
        pi[0] ^= 0x01
        with pytest.raises(VRFError):
            vrf.verify(PK, bytes(pi), b"alpha")

    def test_tampered_challenge(self):
        pi = bytearray(vrf.prove(SK, b"alpha"))
        pi[40] ^= 0x01
        with pytest.raises(VRFError):
            vrf.verify(PK, bytes(pi), b"alpha")

    def test_tampered_scalar(self):
        pi = bytearray(vrf.prove(SK, b"alpha"))
        pi[60] ^= 0x01
        with pytest.raises(VRFError):
            vrf.verify(PK, bytes(pi), b"alpha")

    def test_wrong_length(self):
        with pytest.raises(VRFError):
            vrf.verify(PK, b"\x00" * 79, b"alpha")

    def test_scalar_out_of_range(self):
        pi = vrf.prove(SK, b"alpha")
        bad = pi[:48] + ed25519.Q.to_bytes(32, "little")
        with pytest.raises(VRFError):
            vrf.verify(PK, bad, b"alpha")


class TestUniqueness:
    """The VRF's defining property: one output per (key, input) —
    sortition's unbiasability rests on this."""

    def test_proof_to_hash_ignores_malleable_fields(self):
        # beta depends only on Gamma; c and s only authenticate it. A
        # different (c, s) either fails verification or yields same beta.
        pi = vrf.prove(SK, b"alpha")
        beta = vrf.proof_to_hash(pi)
        forged = pi[:32] + bytes(48)
        assert vrf.proof_to_hash(forged) == beta
        with pytest.raises(VRFError):
            vrf.verify(PK, forged, b"alpha")


class TestEncodeToCurve:
    def test_produces_curve_point(self):
        point = vrf._encode_to_curve(PK, b"some alpha")
        assert ed25519.is_on_curve(point)

    def test_distinct_alphas_distinct_points(self):
        p1 = vrf._encode_to_curve(PK, b"a")
        p2 = vrf._encode_to_curve(PK, b"b")
        assert not ed25519.point_equal(p1, p2)


@settings(max_examples=8, deadline=None)
@given(st.binary(max_size=48))
def test_vrf_roundtrip_property(alpha):
    pi = vrf.prove(SK, alpha)
    assert vrf.verify(PK, pi, alpha) == vrf.proof_to_hash(pi)


def test_output_bits_unbiased():
    """Across many inputs the output's first bit is ~50/50 (sanity check
    on pseudorandomness; a catastrophic bias would break the common coin)."""
    ones = sum(
        vrf.proof_to_hash(vrf.prove(SK, bytes([i])))[0] >> 7
        for i in range(40)
    )
    assert 8 <= ones <= 32
