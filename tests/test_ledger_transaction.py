"""Tests for transactions and account state."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import InvalidTransaction
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.account import AccountState
from repro.ledger.transaction import Transaction, make_transaction


@pytest.fixture
def backend():
    return FastBackend()


@pytest.fixture
def alice(backend):
    return backend.keypair(H(b"alice"))


@pytest.fixture
def bob(backend):
    return backend.keypair(H(b"bob"))


class TestTransaction:
    def test_make_and_verify(self, backend, alice, bob):
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 5, 0)
        tx.verify_signature(backend)

    def test_tampered_amount_rejected(self, backend, alice, bob):
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 5, 0)
        forged = Transaction(sender=tx.sender, recipient=tx.recipient,
                             amount=50, nonce=tx.nonce,
                             signature=tx.signature)
        with pytest.raises(InvalidTransaction):
            forged.verify_signature(backend)

    def test_wrong_signer_rejected(self, backend, alice, bob):
        tx = make_transaction(backend, bob.secret, alice.public,
                              bob.public, 5, 0)
        with pytest.raises(InvalidTransaction):
            tx.verify_signature(backend)

    def test_shape_validation(self, backend, alice, bob):
        with pytest.raises(InvalidTransaction):
            make_transaction(backend, alice.secret, alice.public,
                             bob.public, 0, 0)
        with pytest.raises(InvalidTransaction):
            make_transaction(backend, alice.secret, alice.public,
                             bob.public, 5, -1)
        with pytest.raises(InvalidTransaction):
            make_transaction(backend, alice.secret, alice.public,
                             alice.public, 5, 0)

    def test_txid_changes_with_contents(self, backend, alice, bob):
        tx1 = make_transaction(backend, alice.secret, alice.public,
                               bob.public, 5, 0)
        tx2 = make_transaction(backend, alice.secret, alice.public,
                               bob.public, 6, 0)
        assert tx1.txid != tx2.txid

    def test_size_includes_note(self, backend, alice, bob):
        small = make_transaction(backend, alice.secret, alice.public,
                                 bob.public, 5, 0)
        padded = make_transaction(backend, alice.secret, alice.public,
                                  bob.public, 5, 0, note=b"\x00" * 200)
        assert padded.size >= small.size + 200


class TestAccountState:
    def test_initial_balances(self, alice, bob):
        state = AccountState({alice.public: 10, bob.public: 5})
        assert state.balance(alice.public) == 10
        assert state.balance(b"unknown") == 0
        assert state.total_weight == 15

    def test_negative_initial_balance_rejected(self, alice):
        with pytest.raises(ValueError):
            AccountState({alice.public: -1})

    def test_apply_moves_money(self, backend, alice, bob):
        state = AccountState({alice.public: 10})
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 4, 0)
        state.apply(tx)
        assert state.balance(alice.public) == 6
        assert state.balance(bob.public) == 4
        assert state.total_weight == 10  # conservation

    def test_overspend_rejected(self, backend, alice, bob):
        state = AccountState({alice.public: 3})
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 4, 0)
        with pytest.raises(InvalidTransaction):
            state.apply(tx)

    def test_nonce_replay_rejected(self, backend, alice, bob):
        state = AccountState({alice.public: 10})
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 1, 0)
        state.apply(tx)
        with pytest.raises(InvalidTransaction):
            state.apply(tx)  # same nonce again

    def test_nonce_gap_rejected(self, backend, alice, bob):
        state = AccountState({alice.public: 10})
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 1, 5)
        with pytest.raises(InvalidTransaction):
            state.apply(tx)

    def test_zero_balance_account_removed_from_weights(self, backend,
                                                       alice, bob):
        state = AccountState({alice.public: 4})
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 4, 0)
        state.apply(tx)
        assert alice.public not in state.weights()

    def test_copy_is_independent(self, backend, alice, bob):
        state = AccountState({alice.public: 10})
        clone = state.copy()
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 4, 0)
        clone.apply(tx)
        assert state.balance(alice.public) == 10

    def test_would_accept(self, backend, alice, bob):
        state = AccountState({alice.public: 10})
        good = [
            make_transaction(backend, alice.secret, alice.public,
                             bob.public, 4, 0),
            make_transaction(backend, alice.secret, alice.public,
                             bob.public, 6, 1),
        ]
        assert state.would_accept(good)
        bad = good + [make_transaction(backend, alice.secret, alice.public,
                                       bob.public, 1, 2)]
        assert not state.would_accept(bad)
        # Dry-run must not mutate.
        assert state.balance(alice.public) == 10


@settings(max_examples=30, deadline=None)
@given(amounts=st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                        max_size=10))
def test_total_weight_conserved_property(amounts):
    backend = FastBackend()
    alice = backend.keypair(H(b"p-alice"))
    bob = backend.keypair(H(b"p-bob"))
    state = AccountState({alice.public: 100, bob.public: 100})
    nonce = 0
    for amount in amounts:
        if state.balance(alice.public) < amount:
            break
        state.apply(make_transaction(backend, alice.secret, alice.public,
                                     bob.public, amount, nonce))
        nonce += 1
    assert state.total_weight == 200
