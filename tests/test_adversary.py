"""Tests for Byzantine strategies and adversarial network control.

The paper's safety claim is that no attack by < 1/3 of the stake can fork
the chain; these tests run the implemented attacks and assert honest
nodes never diverge, while liveness degrades only gracefully.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    DoubleVotingNode,
    EquivocatingProposerNode,
    FilterChain,
    MaliciousNode,
    Partitioner,
    SilentNode,
    TargetedDoS,
    isolate,
)
from repro.experiments.harness import Simulation, SimulationConfig


def _honest(sim):
    count = sim.config.num_users - sim.config.num_malicious
    return sim.nodes[:count]


class TestEquivocatingProposer:
    def test_safety_with_equivocators(self):
        sim = Simulation(
            SimulationConfig(num_users=16, seed=13, num_malicious=3),
            malicious_class=EquivocatingProposerNode)
        sim.submit_payments(20)
        sim.run_rounds(2)
        for round_number in (1, 2):
            assert len(sim.agreed_hashes(round_number)) == 1

    def test_equivocating_proposals_never_win(self):
        """When an equivocator holds the round's highest priority, honest
        users detect the two versions and fall back; the committed block
        is then either honest or empty, never one of the equivocator's."""
        sim = Simulation(
            SimulationConfig(num_users=16, seed=13, num_malicious=3),
            malicious_class=EquivocatingProposerNode)
        sim.run_rounds(3)
        malicious_keys = {node.keypair.public for node in sim.nodes[13:]}
        for node in _honest(sim):
            for block in node.chain.blocks[1:]:
                assert block.proposer not in malicious_keys


class TestDoubleVoting:
    def test_safety_with_double_voters(self):
        sim = Simulation(
            SimulationConfig(num_users=16, seed=17, num_malicious=3),
            malicious_class=DoubleVotingNode)
        sim.run_rounds(2)
        for round_number in (1, 2):
            assert len(sim.agreed_hashes(round_number)) == 1

    def test_full_attack_figure8_shape(self):
        """The combined attack (Figure 8): latency may grow with the
        malicious fraction but agreement and progress persist."""
        latencies = {}
        for bad in (0, 3):
            sim = Simulation(
                SimulationConfig(num_users=16, seed=23, num_malicious=bad),
                malicious_class=MaliciousNode)
            sim.run_rounds(2)
            assert len(sim.agreed_hashes(1)) == 1
            assert len(sim.agreed_hashes(2)) == 1
            latencies[bad] = max(sim.round_latencies(2))
        # Attack may slow rounds, but must stay within the BA* budget.
        assert latencies[3] < 120


class TestSilentStake:
    def test_progress_with_silent_minority(self):
        """Offline stake below the threshold margin: liveness holds."""
        sim = Simulation(
            SimulationConfig(num_users=20, seed=29, num_malicious=2),
            malicious_class=SilentNode)
        sim.run_rounds(2)
        assert len(sim.agreed_hashes(1)) == 1
        for node in _honest(sim):
            assert node.chain.height == 2


class TestPartitioner:
    def test_short_partition_stalls_then_heals(self):
        """While partitioned, neither side can reach BA* quorum (vote
        thresholds are calibrated to the full committee), so no blocks
        commit — and crucially no forks form. After healing (within the
        MaxSteps budget), the round completes, typically on the empty
        block."""
        sim = Simulation(SimulationConfig(num_users=16, seed=31))
        chain = FilterChain(sim.network)
        partition = Partitioner(chain, [set(range(8)), set(range(8, 16))])
        partition.schedule(sim.env, start=0.0, end=50.0)
        processes = [node.start(1) for node in sim.nodes]
        sim.env.run(until=40.0)
        # Mid-partition: nobody committed round 1.
        assert all(node.chain.height == 0 for node in sim.nodes)
        sim.env.run(until=600.0,
                    stop_when=lambda: all(p.done for p in processes))
        assert all(node.chain.height == 1 for node in sim.nodes)
        assert len(sim.agreed_hashes(1)) == 1

    def test_long_partition_halts_without_forking(self):
        """A partition outlasting MaxSteps * lambda_step makes BinaryBA*
        give up (the paper's HangForever): nodes halt and wait for the
        recovery protocol — but never commit divergent blocks."""
        sim = Simulation(SimulationConfig(num_users=16, seed=31))
        chain = FilterChain(sim.network)
        partition = Partitioner(chain, [set(range(8)), set(range(8, 16))])
        partition.activate()
        for node in sim.nodes:
            node.start(1)
        sim.env.run(until=300.0)
        assert all(node.halted for node in sim.nodes)
        assert all(node.chain.height == 0 for node in sim.nodes)

    def test_schedule_validation(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        chain = FilterChain(sim.network)
        partition = Partitioner(chain, [set(), set()])
        with pytest.raises(ValueError):
            partition.schedule(sim.env, start=5.0, end=5.0)


class TestTargetedDoS:
    def test_proposer_dos_does_not_stop_progress(self):
        """Participant replacement: DoS-ing each proposer after it speaks
        cannot stop Algorand — the proposer's job is already done and the
        committees of later steps are fresh users."""
        sim = Simulation(SimulationConfig(num_users=16, seed=37))
        chain = FilterChain(sim.network)
        dos = TargetedDoS(chain, sim.env, reaction_time=1.5,
                          restore_after=30.0)
        sim.run_rounds(2, time_limit=600)
        assert dos.victims  # the attack actually fired
        assert len(sim.agreed_hashes(1)) == 1
        assert len(sim.agreed_hashes(2)) == 1

    def test_reaction_time_validation(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        chain = FilterChain(sim.network)
        with pytest.raises(ValueError):
            TargetedDoS(chain, sim.env, reaction_time=-1)


class TestIsolate:
    def test_isolated_minority_stalls_but_majority_progresses(self):
        sim = Simulation(SimulationConfig(num_users=20, seed=41))
        isolate(sim.network, [18, 19])
        processes = [node.start(1) for node in sim.nodes[:18]]
        sim.env.run(until=600,
                    stop_when=lambda: all(p.done for p in processes))
        online = sim.nodes[:18]
        assert all(node.chain.height == 1 for node in online)
        assert len({node.chain.tip_hash for node in online}) == 1
