"""Tests for the section 5.3 weight look-back (+ nothing-at-stake floor)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.params import TEST_PARAMS, ProtocolParams
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.blockchain import Blockchain
from repro.ledger.block import empty_block
from repro.common.errors import LedgerError


class TestWeightHistory:
    def test_snapshot_per_round(self):
        chain = Blockchain({b"a" * 32: 10, b"b" * 32: 20}, H(b"g"), 10)
        chain.append(empty_block(1, chain.tip_hash))
        assert chain.weights_at(0) == chain.weights_at(1)
        assert chain.weights_at(1) == {b"a" * 32: 10, b"b" * 32: 20}

    def test_snapshot_frozen_against_later_changes(self):
        from repro.crypto.backend import FastBackend
        from repro.ledger.transaction import make_transaction
        from repro.sortition.seed import propose_seed
        from repro.ledger.block import Block

        backend = FastBackend()
        alice = backend.keypair(H(b"wl-alice"))
        bob = backend.keypair(H(b"wl-bob"))
        chain = Blockchain({alice.public: 30, bob.public: 10}, H(b"g"), 10)
        tx = make_transaction(backend, alice.secret, alice.public,
                              bob.public, 25, 0)
        seed, proof = propose_seed(backend, alice.secret,
                                   chain.seed_of_round(0), 1)
        block = Block(round_number=1, prev_hash=chain.tip_hash,
                      timestamp=1.0, seed=seed, seed_proof=proof,
                      proposer=alice.public, proposer_vrf_hash=H(b"v"),
                      proposer_vrf_proof=b"p", proposer_priority=H(b"v"),
                      transactions=(tx,))
        chain.append(block)
        assert chain.weights_at(0)[alice.public] == 30
        assert chain.weights_at(1)[alice.public] == 5
        assert chain.weights_at(1)[bob.public] == 35

    def test_missing_snapshot_raises(self):
        chain = Blockchain({b"a" * 32: 10}, H(b"g"), 10)
        with pytest.raises(LedgerError):
            chain.weights_at(5)


def _lookback_params(take_min: bool = False) -> ProtocolParams:
    return dataclasses.replace(TEST_PARAMS, weight_lookback_rounds=2,
                               lookback_take_min=take_min)


class TestLookbackConsensus:
    def test_rounds_complete_with_lookback(self):
        sim = Simulation(SimulationConfig(
            num_users=16, seed=44, params=_lookback_params()))
        sim.submit_payments(30)
        sim.run_rounds(3)
        assert sim.all_chains_equal()
        for round_number in (1, 2, 3):
            assert len(sim.agreed_hashes(round_number)) == 1

    def test_lookback_context_uses_old_weights(self):
        sim = Simulation(SimulationConfig(
            num_users=16, seed=44, params=_lookback_params()))
        sim.submit_payments(40)
        sim.run_rounds(3)
        node = sim.nodes[0]
        # Context for round 4 must be the snapshot from round
        # 4 - 1 - 2 = 1, not current state.
        expected = node.chain.weights_at(1)
        assert node._sortition_weights(4) == expected
        # And current state has actually drifted (payments committed).
        assert node.chain.state.weights() != expected

    def test_take_min_floors_by_current_balance(self):
        sim = Simulation(SimulationConfig(
            num_users=16, seed=44, params=_lookback_params(take_min=True)))
        sim.submit_payments(40)
        sim.run_rounds(3)
        node = sim.nodes[0]
        weights = node._sortition_weights(4)
        snapshot = node.chain.weights_at(1)
        current = node.chain.state.weights()
        for public, value in weights.items():
            assert value == min(snapshot[public], current.get(public, 0))
            assert value > 0

    def test_validation_of_negative_lookback(self):
        with pytest.raises(ValueError):
            ProtocolParams(weight_lookback_rounds=-1)
