"""Live fault-plane tests: real SIGKILLs, severed links, gossip catch-up.

The tier-1 tests here run **3-process** clusters over Unix domain
sockets with stakes ``[80, 80, 40]`` — the calibrated committee design
point (W = 200) with the victim holding the small stake, so killing or
severing it leaves 160/200 = 80% of the stake online and BA* quorums
keep forming throughout. Each test drives :class:`LiveCluster` directly
with a :class:`FaultAction` (the declarative layer the chaos engine
compiles onto the live substrate) and checks the full recovery story:
the victim rejoins, catches up via certificate-verified replay, chains
end byte-identical, and the merged trace satisfies the reference state
machine.

The 5-process scripted scenario sweep (the ``kill-partition`` builtin
via :func:`run_live_scenario`) is marked ``slow``; run with
``-m slow``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos.scenario import FaultAction, kill_partition_scenario
from repro.conformance.monitor import ConformanceMonitor
from repro.experiments.config import SimulationConfig, SubstrateConfig
from repro.live.cluster import LiveCluster
from repro.obs.sink import read_trace

NODES = 3
ROUNDS = 6
#: Stakes summing to the calibrated W = 200; the 40-stake victim can
#: vanish without stalling the surviving quorum.
BALANCES = [80, 80, 40]
VICTIM = 2


def _chaos_params():
    """LIVE_CHAOS_PARAMS with the step budget tightened further.

    ``max_steps=6`` bounds how long a quorum-less node spins before the
    ConsensusHalted -> catch-up path fires, keeping these tests tier-1
    fast; healthy loopback rounds never need more than a few steps.
    """
    from repro.chaos.live import LIVE_CHAOS_PARAMS
    return dataclasses.replace(LIVE_CHAOS_PARAMS, max_steps=6)


def _config(runtime_dir, seed: int = 7) -> SimulationConfig:
    return SimulationConfig(
        num_users=NODES,
        seed=seed,
        balances=list(BALANCES),
        params=_chaos_params(),
        substrate=SubstrateConfig(kind="live", transport="uds",
                                  runtime_dir=str(runtime_dir)),
    )


def _run(runtime_dir, faults, *, seed: int = 7,
         node_overrides=None) -> LiveCluster:
    cluster = LiveCluster(_config(runtime_dir, seed=seed), faults=faults,
                          node_overrides=node_overrides)
    cluster.submit_payments(6)
    cluster.run_rounds(ROUNDS, time_limit=120.0)
    return cluster


def _merged_events(cluster) -> list[dict]:
    events, _ = read_trace(cluster.merged_trace_path)
    return events


@pytest.fixture(scope="module")
def killed_cluster(tmp_path_factory):
    """SIGKILL the 40-stake node mid-run; respawn it 1.5s later."""
    return _run(tmp_path_factory.mktemp("live-kill"),
                [FaultAction(kind="crash", start=1.0, end=2.5,
                             nodes=(VICTIM,))])


@pytest.fixture(scope="module")
def partitioned_cluster(tmp_path_factory):
    """Sever every link of the 40-stake node for 1.5s, then heal."""
    return _run(tmp_path_factory.mktemp("live-partition"),
                [FaultAction(kind="partition", start=1.0, end=2.5,
                             groups=((0, 1), (VICTIM,)))])


class TestKilledNodeCatchesUp:
    def test_every_process_reaches_target_height(self, killed_cluster):
        assert sorted(killed_cluster.results) == list(range(NODES))
        for result in killed_cluster.results.values():
            assert result["height"] == ROUNDS

    def test_chains_byte_identical(self, killed_cluster):
        assert killed_cluster.all_chains_equal()
        tips = {r["tip"] for r in killed_cluster.results.values()}
        assert len(tips) == 1

    def test_kill_was_real_and_respawn_reported(self, killed_cluster):
        assert [k["node"] for k in killed_cluster.kill_log] == [VICTIM]
        assert killed_cluster.results[VICTIM]["incarnation"] == 1

    def test_victim_rebuilt_chain_via_catchup(self, killed_cluster):
        stats = killed_cluster.results[VICTIM]["stats"]
        assert stats["catchup_adopted"] >= 1
        served = sum(killed_cluster.results[i]["stats"]["catchup_served"]
                     for i in range(NODES) if i != VICTIM)
        assert served >= 1

    def test_merged_trace_tells_the_crash_story(self, killed_cluster):
        kinds = [e["kind"] for e in _merged_events(killed_cluster)]
        for kind in ("node_crashed", "node_restarted", "catchup_adopted",
                     "fault_applied", "fault_cleared"):
            assert kind in kinds, f"missing {kind} in merged trace"

    def test_merged_trace_conforms(self, killed_cluster):
        monitor = ConformanceMonitor()
        monitor.feed(_merged_events(killed_cluster))
        verdict = monitor.verdict()
        assert verdict.ok, verdict.violations
        assert verdict.nodes == NODES

    def test_summary_carries_fault_plane_stats(self, killed_cluster):
        summary = killed_cluster.summary()
        assert summary["kills"] and summary["kills"][0]["node"] == VICTIM
        assert summary["catchup_adopted"] >= 1
        assert summary["catchup_served"] >= 1
        assert summary["chains_equal"]
        assert set(summary["per_node"]) == set(range(NODES))
        for stats in summary["per_node"].values():
            assert "reconnect_attempts" in stats
            assert "fault_dropped_frames" in stats


class TestPartitionedNodeCatchesUp:
    def test_every_process_reaches_target_height(self, partitioned_cluster):
        assert sorted(partitioned_cluster.results) == list(range(NODES))
        for result in partitioned_cluster.results.values():
            assert result["height"] == ROUNDS

    def test_chains_byte_identical(self, partitioned_cluster):
        assert partitioned_cluster.all_chains_equal()

    def test_partition_actually_dropped_frames(self, partitioned_cluster):
        summary = partitioned_cluster.summary()
        assert summary["fault_dropped_frames"] >= 1

    def test_severed_links_reconnected(self, partitioned_cluster):
        summary = partitioned_cluster.summary()
        assert summary["reconnects"] >= 1

    def test_merged_trace_conforms(self, partitioned_cluster):
        monitor = ConformanceMonitor()
        monitor.feed(_merged_events(partitioned_cluster))
        verdict = monitor.verdict()
        assert verdict.ok, verdict.violations


class TestFailFastOrchestration:
    def test_node_dying_at_startup_aborts_with_log_tail(self, tmp_path):
        cluster = LiveCluster(
            _config(tmp_path),
            node_overrides={1: {"exit_at_start": True}})
        with pytest.raises(RuntimeError) as excinfo:
            cluster.run_rounds(2, time_limit=30.0)
        message = str(excinfo.value)
        assert "node 1" in message
        # The abort must attach the victim's log tail, not just the rc.
        assert "exit_at_start" in message

    def test_scripted_permanent_crash_is_not_an_abort(self, tmp_path):
        cluster = LiveCluster(
            _config(tmp_path),
            faults=[FaultAction(kind="crash", start=0.5, end=None,
                                nodes=(VICTIM,))])
        # A permanent crash IS scripted: this must NOT abort, and the
        # two survivors must still converge (the victim is excluded).
        cluster.submit_payments(2)
        cluster.run_rounds(3, time_limit=60.0)
        assert sorted(cluster.results) == [0, 1]
        for result in cluster.results.values():
            assert result["height"] == 3
        assert cluster.summary()["missing_nodes"] == [VICTIM]


@pytest.mark.slow
class TestKillPartitionScenarioSweep:
    """The full 5-process scripted scenario, swept over seeds."""

    @pytest.mark.parametrize("seed", [11, 29])
    def test_builtin_scenario_green(self, tmp_path, seed):
        from repro.chaos.live import run_live_scenario

        script = kill_partition_scenario(seed=seed)
        verdict = run_live_scenario(
            script, runtime_dir=str(tmp_path / f"seed-{seed}"))
        assert verdict.ok, verdict.violations
        assert verdict.converged
        assert verdict.heights == [script.rounds] * script.num_users
        assert verdict.conformance["ok"]
        assert verdict.cluster.all_chains_equal()
        events = [e for e in _merged_events(verdict.cluster)]
        kinds = [e["kind"] for e in events]
        assert "node_crashed" in kinds
        assert "node_restarted" in kinds
        assert "catchup_adopted" in kinds
