"""Unit tests for recovery-protocol internals (fork proposals)."""

from __future__ import annotations

import pytest

from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.block import empty_block
from repro.node.recovery import ForkProposal, RecoverySession
from repro.sortition.roles import fork_proposer_role
from repro.sortition.selection import sortition


@pytest.fixture
def sim():
    sim = Simulation(SimulationConfig(num_users=10, seed=55))
    sim.run_rounds(1)
    return sim


def _proposal_from(sim, node, attempt, ctx):
    proof = sortition(
        sim.backend, node.keypair.secret, ctx.seed,
        node.params.tau_proposer, fork_proposer_role(1, attempt),
        ctx.weight_of(node.keypair.public), ctx.total_weight)
    return ForkProposal(
        proposer=node.keypair.public, attempt=attempt,
        vrf_hash=proof.vrf_hash, vrf_proof=proof.vrf_proof,
        sub_users=proof.j, blocks=node.chain.blocks[1:],
    ), proof


class TestForkProposal:
    def test_properties(self, sim):
        node = sim.nodes[0]
        proposal = ForkProposal(
            proposer=node.keypair.public, attempt=0, vrf_hash=H(b"v"),
            vrf_proof=b"p", sub_users=1, blocks=node.chain.blocks[1:])
        assert proposal.length == 1
        assert proposal.tip_hash == node.chain.tip_hash
        assert proposal.size > 200
        empty = ForkProposal(proposer=b"x", attempt=0, vrf_hash=H(b"v"),
                             vrf_proof=b"p", sub_users=1, blocks=())
        assert empty.tip_hash == b""
        assert empty.length == 0


class TestRecoverySessionValidation:
    def _selected_proposal(self, sim, session, ctx, attempt=0):
        for node in sim.nodes:
            proposal, proof = _proposal_from(sim, node, attempt, ctx)
            if proof.j > 0 and proposal.sub_users == proof.j:
                return proposal
        pytest.skip("no fork proposer selected at this seed")

    def test_valid_proposal_accepted(self, sim):
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        ctx = session._recovery_ctx(0)
        proposal = self._selected_proposal(sim, session, ctx)
        assert session._valid(proposal, 0, ctx)

    def test_wrong_attempt_rejected(self, sim):
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        ctx = session._recovery_ctx(0)
        proposal = self._selected_proposal(sim, session, ctx)
        assert not session._valid(proposal, 1, ctx)

    def test_unselected_proposer_rejected(self, sim):
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        ctx = session._recovery_ctx(0)
        forged = ForkProposal(
            proposer=sim.nodes[1].keypair.public, attempt=0,
            vrf_hash=H(b"not-a-real-vrf"), vrf_proof=b"junk", sub_users=1,
            blocks=sim.nodes[1].chain.blocks[1:])
        assert not session._valid(forged, 0, ctx)

    def test_shorter_fork_rejected(self, sim):
        """Proposals shorter than our own chain are invalid — adopting
        them could drop final blocks."""
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        ctx = session._recovery_ctx(0)
        proposal = self._selected_proposal(sim, session, ctx)
        # Grow our chain past the proposal.
        sim.nodes[0].chain.append(
            empty_block(2, sim.nodes[0].chain.tip_hash))
        assert not session._valid(proposal, 0, ctx)

    def test_duplicate_proposal_not_rerelayed(self, sim):
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        ctx = session._recovery_ctx(0)
        proposal = self._selected_proposal(sim, session, ctx)
        assert session._handle_proposal(proposal)
        assert not session._handle_proposal(proposal)

    def test_best_proposal_prefers_priority(self, sim):
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        ctx = session._recovery_ctx(0)
        valid = []
        for node in sim.nodes:
            proposal, proof = _proposal_from(sim, node, 0, ctx)
            if proof.j > 0:
                session._handle_proposal(proposal)
                valid.append(proposal)
        if len(valid) < 2:
            pytest.skip("need two selected fork proposers at this seed")
        best = session._best_proposal(0, ctx)
        assert best.priority == max(p.priority for p in valid)

    def test_close_unregisters_handler(self, sim):
        session = RecoverySession(sim.nodes[0], pre_fork_round=1)
        assert sim.nodes[0].router.is_registered("fork")
        session.close()
        assert not sim.nodes[0].router.is_registered("fork")

    def test_recovery_ctx_shared_across_nodes(self, sim):
        """All nodes on the same prefix derive identical recovery
        contexts — the precondition for counting each other's votes."""
        contexts = [RecoverySession(node, 1)._recovery_ctx(0)
                    for node in sim.nodes]
        assert len({ctx.seed for ctx in contexts}) == 1
        assert len({ctx.last_block_hash for ctx in contexts}) == 1
        assert len({ctx.total_weight for ctx in contexts}) == 1
