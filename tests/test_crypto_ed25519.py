"""Tests for the pure-Python Ed25519 implementation (RFC 8032)."""

from __future__ import annotations

import binascii

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CryptoError, SignatureError
from repro.crypto import ed25519

# RFC 8032, section 7.1 test vectors (TEST 1-3).
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


class TestRFC8032Vectors:
    @pytest.mark.parametrize("sk_hex, pk_hex, msg_hex, sig_hex",
                             RFC8032_VECTORS)
    def test_public_key_derivation(self, sk_hex, pk_hex, msg_hex, sig_hex):
        sk = binascii.unhexlify(sk_hex)
        assert ed25519.secret_to_public(sk).hex() == pk_hex

    @pytest.mark.parametrize("sk_hex, pk_hex, msg_hex, sig_hex",
                             RFC8032_VECTORS)
    def test_signature(self, sk_hex, pk_hex, msg_hex, sig_hex):
        sk = binascii.unhexlify(sk_hex)
        msg = binascii.unhexlify(msg_hex)
        assert ed25519.sign(sk, msg).hex() == sig_hex

    @pytest.mark.parametrize("sk_hex, pk_hex, msg_hex, sig_hex",
                             RFC8032_VECTORS)
    def test_verify_accepts(self, sk_hex, pk_hex, msg_hex, sig_hex):
        ed25519.verify(binascii.unhexlify(pk_hex),
                       binascii.unhexlify(msg_hex),
                       binascii.unhexlify(sig_hex))


class TestVerifyRejects:
    def setup_method(self):
        self.sk = binascii.unhexlify(RFC8032_VECTORS[0][0])
        self.pk = binascii.unhexlify(RFC8032_VECTORS[0][1])
        self.sig = ed25519.sign(self.sk, b"message")

    def test_wrong_message(self):
        with pytest.raises(SignatureError):
            ed25519.verify(self.pk, b"other message", self.sig)

    def test_flipped_bit_in_signature(self):
        bad = bytearray(self.sig)
        bad[5] ^= 0x01
        with pytest.raises(SignatureError):
            ed25519.verify(self.pk, b"message", bytes(bad))

    def test_wrong_public_key(self):
        other_pk = ed25519.secret_to_public(b"\x07" * 32)
        with pytest.raises(SignatureError):
            ed25519.verify(other_pk, b"message", self.sig)

    def test_bad_signature_length(self):
        with pytest.raises(SignatureError):
            ed25519.verify(self.pk, b"message", b"\x00" * 63)

    def test_scalar_out_of_range(self):
        bad = self.sig[:32] + (ed25519.Q).to_bytes(32, "little")
        with pytest.raises(SignatureError):
            ed25519.verify(self.pk, b"message", bad)

    def test_bad_public_key_length(self):
        with pytest.raises(SignatureError):
            ed25519.verify(b"\x00" * 31, b"message", self.sig)


class TestPointArithmetic:
    def test_base_point_on_curve(self):
        assert ed25519.is_on_curve(ed25519.BASE_POINT)

    def test_base_point_has_order_q(self):
        result = ed25519.point_mul(ed25519.Q, ed25519.BASE_POINT)
        assert ed25519.point_equal(result, ed25519.IDENTITY)

    def test_addition_commutes(self):
        p2 = ed25519.point_mul(2, ed25519.BASE_POINT)
        p3 = ed25519.point_mul(3, ed25519.BASE_POINT)
        lhs = ed25519.point_add(p2, p3)
        rhs = ed25519.point_add(p3, p2)
        assert ed25519.point_equal(lhs, rhs)

    def test_scalar_mul_matches_repeated_add(self):
        acc = ed25519.IDENTITY
        for _ in range(7):
            acc = ed25519.point_add(acc, ed25519.BASE_POINT)
        assert ed25519.point_equal(acc,
                                   ed25519.point_mul(7, ed25519.BASE_POINT))

    def test_compress_decompress_roundtrip(self):
        for k in (1, 2, 12345):
            point = ed25519.point_mul(k, ed25519.BASE_POINT)
            recovered = ed25519.point_decompress(
                ed25519.point_compress(point))
            assert ed25519.point_equal(point, recovered)

    def test_decompress_rejects_bad_length(self):
        with pytest.raises(CryptoError):
            ed25519.point_decompress(b"\x01" * 31)

    def test_decompress_rejects_non_curve_point(self):
        # y = 2 has no valid x on the curve with either sign for this
        # encoding; at least reject *some* malformed encodings.
        bad = (2).to_bytes(32, "little")
        try:
            point = ed25519.point_decompress(bad)
        except CryptoError:
            return
        assert ed25519.is_on_curve(point)


class TestKeyHandling:
    def test_secret_must_be_32_bytes(self):
        with pytest.raises(CryptoError):
            ed25519.secret_to_public(b"\x01" * 16)

    def test_secret_scalar_is_clamped(self):
        scalar = ed25519.secret_scalar(b"\x42" * 32)
        assert scalar % 8 == 0
        assert (1 << 254) <= scalar < (1 << 255)


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=32, max_size=32), st.binary(max_size=64))
def test_sign_verify_roundtrip_property(seed, message):
    public = ed25519.secret_to_public(seed)
    signature = ed25519.sign(seed, message)
    ed25519.verify(public, message, signature)
    with pytest.raises(SignatureError):
        ed25519.verify(public, message + b"!", signature)
