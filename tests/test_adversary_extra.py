"""Additional adversary-layer unit tests: filter chains, strategies."""

from __future__ import annotations

import pytest

from repro.adversary import (
    DoubleVotingNode,
    EquivocatingProposerNode,
    FilterChain,
    Partitioner,
)
from repro.experiments.harness import Simulation, SimulationConfig
from repro.network.message import Envelope


class TestFilterChain:
    def test_empty_chain_drops_nothing(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        chain = FilterChain(sim.network)
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        assert not chain._evaluate(0, 1, envelope)

    def test_predicates_compose_as_or(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        chain = FilterChain(sim.network)
        chain.add(lambda s, d, e: s == 0)
        chain.add(lambda s, d, e: d == 3)
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        assert chain._evaluate(0, 1, envelope)
        assert chain._evaluate(2, 3, envelope)
        assert not chain._evaluate(1, 2, envelope)

    def test_remove_predicate(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        chain = FilterChain(sim.network)
        predicate = lambda s, d, e: True  # noqa: E731
        chain.add(predicate)
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        assert chain._evaluate(0, 1, envelope)
        chain.remove(predicate)
        assert not chain._evaluate(0, 1, envelope)

    def test_composes_with_preinstalled_drop_filter(self):
        # Regression: installing a FilterChain used to silently clobber
        # whatever drop_filter was already on the network; it must be
        # absorbed as the chain's first predicate instead.
        sim = Simulation(SimulationConfig(num_users=4, seed=1))
        sim.network.drop_filter = lambda s, d, e: s == 3
        chain = FilterChain(sim.network)
        chain.add(lambda s, d, e: d == 1)
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        assert sim.network.drop_filter == chain._evaluate
        assert chain._evaluate(3, 0, envelope)  # pre-existing filter
        assert chain._evaluate(0, 1, envelope)  # newly added predicate
        assert not chain._evaluate(0, 2, envelope)


class TestPartitionerMechanics:
    def test_heal_is_idempotent(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=2))
        chain = FilterChain(sim.network)
        partition = Partitioner(chain, [{0, 1}, {2, 3}])
        partition.activate()
        partition.heal()
        partition.heal()  # second heal must be a no-op
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        assert not chain._evaluate(0, 2, envelope)

    def test_within_group_traffic_flows(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=2))
        chain = FilterChain(sim.network)
        partition = Partitioner(chain, [{0, 1}, {2, 3}])
        partition.activate()
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        assert not chain._evaluate(0, 1, envelope)
        assert chain._evaluate(0, 2, envelope)

    def test_node_outside_all_groups(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=2))
        chain = FilterChain(sim.network)
        partition = Partitioner(chain, [{0, 1}])
        partition.activate()
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=10)
        # Nodes 2,3 share the implicit "no group" bucket (-1).
        assert not chain._evaluate(2, 3, envelope)
        assert chain._evaluate(0, 2, envelope)


class TestStrategyMechanics:
    def test_equivocator_registers_both_versions(self):
        """Both block versions must be fetchable, or honest nodes that
        agree on one of them could not resolve the hash."""
        sim = Simulation(
            SimulationConfig(num_users=12, seed=2, num_malicious=12),
            malicious_class=EquivocatingProposerNode)
        node = sim.nodes[0]
        ctx = node._current_context(1)
        from repro.sortition.roles import proposer_role
        from repro.sortition.selection import sortition
        proof = sortition(sim.backend, node.keypair.secret, ctx.seed,
                          node.params.tau_proposer, proposer_role(1),
                          ctx.weight_of(node.keypair.public),
                          ctx.total_weight)
        if proof.j == 0:
            pytest.skip("node not selected as proposer at this seed")
        before = len(sim.registry)
        node.propose_block(1, ctx, proof, node._tracker(1))
        assert len(sim.registry) == before + 2  # two versions registered

    def test_double_voter_emits_conflict(self):
        # This test hand-crafts a vote with a fake sortition proof to
        # exercise the strategy mechanics; admission would (correctly)
        # reject it at ingress, so run the pre-admission wiring.
        sim = Simulation(
            SimulationConfig(num_users=12, seed=14, num_malicious=12,
                             use_admission=False),
            malicious_class=DoubleVotingNode)
        node = sim.nodes[0]
        from repro.baplus.messages import make_vote
        from repro.crypto.hashing import H
        vote = make_vote(sim.backend, node.keypair.secret,
                         node.keypair.public, 1, "1", H(b"s"), b"p",
                         node.chain.tip_hash, H(b"value"))
        node._gossip_vote(vote)
        sim.env.run(until=5.0)
        # Some neighbor received the conflicting second vote.
        received = [
            v
            for other in sim.nodes[1:]
            for v in other.buffer.messages(1, "1")
            if v.voter == node.keypair.public
        ]
        values = {v.value for v in received}
        assert len(values) >= 1
        # Across the whole network both values circulated.
        all_values = {v.value for other in sim.nodes
                      for v in other.buffer.messages(1, "1")}
        assert len(all_values) == 2
