"""Tests for passive observers, chain persistence, and peer reshuffle."""

from __future__ import annotations

import pytest

from repro.common.errors import LedgerError
from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.waiting import run_waiting_point
from repro.ledger.persistence import (
    chain_from_bytes,
    chain_to_bytes,
    load_chain,
    save_chain,
)


class TestObservers:
    """Section 7: 'any user observing the messages can passively
    participate ... and reach the agreement decision'."""

    @pytest.fixture(scope="class")
    def observed_sim(self):
        sim = Simulation(SimulationConfig(num_users=14, seed=81,
                                          num_observers=3))
        sim.submit_payments(20)
        sim.run_rounds(2)
        return sim

    def test_observers_reach_same_decisions(self, observed_sim):
        sim = observed_sim
        assert len(sim.observers) == 3
        reference = sim.nodes[0].chain
        for observer in sim.observers:
            assert observer.chain.height == 2
            assert observer.chain.tip_hash == reference.tip_hash

    def test_observers_never_vote_or_propose(self, observed_sim):
        """Zero stake means sortition never selects them: their traffic
        is pure relay, no originated votes."""
        for observer in observed_sim.observers:
            own_votes = [
                vote
                for round_number in (1, 2)
                for step in ("1", "reduction_one", "final")
                for vote in observer.buffer.messages(round_number, step)
                if vote.voter == observer.keypair.public
            ]
            assert own_votes == []

    def test_observers_hold_no_stake(self, observed_sim):
        for observer in observed_sim.observers:
            assert observer.chain.state.balance(
                observer.keypair.public) == 0

    def test_observer_metrics_match_participants(self, observed_sim):
        sim = observed_sim
        for round_number in (1, 2):
            kinds = {node.metrics.round_record(round_number).kind
                     for node in sim.nodes}
            assert kinds == {"final"}


class TestPeerReshuffle:
    def test_reshuffle_each_round_changes_topology(self):
        sim = Simulation(SimulationConfig(num_users=14, seed=82,
                                          reshuffle_peers_each_round=True))
        before = [tuple(iface.neighbors)
                  for iface in sim.network.interfaces]
        sim.run_rounds(2)
        after = [tuple(iface.neighbors) for iface in sim.network.interfaces]
        assert before != after
        assert sim.all_chains_equal()

    def test_static_topology_by_default(self):
        sim = Simulation(SimulationConfig(num_users=14, seed=82))
        before = [tuple(iface.neighbors)
                  for iface in sim.network.interfaces]
        sim.run_rounds(1)
        after = [tuple(iface.neighbors) for iface in sim.network.interfaces]
        assert before == after


class TestPersistence:
    @pytest.fixture(scope="class")
    def finished(self):
        sim = Simulation(SimulationConfig(num_users=12, seed=83))
        sim.submit_payments(15)
        sim.run_rounds(2)
        return sim

    def _balances(self, sim):
        return {kp.public: sim.config.initial_balance
                for kp in sim.keypairs}

    def test_roundtrip(self, finished):
        sim = finished
        payload = chain_to_bytes(sim.nodes[0].chain)
        restored = chain_from_bytes(
            payload, initial_balances=self._balances(sim),
            genesis_seed=sim.genesis_seed, params=TEST_PARAMS,
            backend=sim.backend)
        assert restored.tip_hash == sim.nodes[0].chain.tip_hash
        assert restored.state.weights() == sim.nodes[0].chain.state.weights()

    def test_file_roundtrip(self, finished, tmp_path):
        sim = finished
        path = tmp_path / "chain.bin"
        written = save_chain(sim.nodes[0].chain, path)
        assert written == path.stat().st_size
        restored = load_chain(
            path, initial_balances=self._balances(sim),
            genesis_seed=sim.genesis_seed, params=TEST_PARAMS,
            backend=sim.backend)
        assert restored.height == 2

    def test_garbage_rejected(self, finished):
        with pytest.raises(LedgerError):
            chain_from_bytes(
                b"not a chain", initial_balances=self._balances(finished),
                genesis_seed=finished.genesis_seed, params=TEST_PARAMS,
                backend=finished.backend)

    def test_tampered_payload_rejected(self, finished):
        """Flipping one byte of the serialized chain must not produce a
        quietly-different chain: either decode or revalidation fails."""
        sim = finished
        payload = bytearray(chain_to_bytes(sim.nodes[0].chain))
        payload[len(payload) // 2] ^= 0x01
        with pytest.raises(Exception):
            chain_from_bytes(
                bytes(payload), initial_balances=self._balances(sim),
                genesis_seed=sim.genesis_seed, params=TEST_PARAMS,
                backend=sim.backend)


class TestWaitingPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            run_waiting_point(0.0)

    def test_generous_wait_no_empties(self):
        point = run_waiting_point(2.0, num_users=12, rounds=1, seed=84)
        assert point.empty_fraction == 0.0
        assert point.median_latency > 2.0
