"""Config regrouping tests: nested groups, flat-kwarg shims, validation.

``SimulationConfig``'s knobs moved into four frozen groups
(``network``, ``runtime``, ``population``, ``substrate``). The old flat
keyword arguments must keep working — under a ``DeprecationWarning``
that names the offending knobs — and ``dataclasses.replace`` must keep
working on configs built either way (the chaos engine relies on it).
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.common.errors import (
    BalancesError,
    ConfigError,
    LatencyModelError,
    PopulationError,
)
from repro.experiments.harness import (
    NetworkConfig,
    PopulationConfig,
    RuntimeConfig,
    SimulationConfig,
    SubstrateConfig,
)


def _quiet(**kwargs) -> SimulationConfig:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return SimulationConfig(**kwargs)


class TestNestedConstruction:
    def test_defaults_emit_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = SimulationConfig(num_users=10, seed=1)
        assert config.network == NetworkConfig()
        assert config.runtime == RuntimeConfig()
        assert config.population == PopulationConfig()
        assert config.substrate == SubstrateConfig()

    def test_groups_are_frozen(self):
        config = SimulationConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.network.bandwidth_bps = 1.0

    def test_nested_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = SimulationConfig(
                num_users=8, seed=2,
                network=NetworkConfig(latency_model="uniform",
                                      uniform_latency=0.01),
                runtime=RuntimeConfig(relay_damping=False),
                population=PopulationConfig(mode="aggregated",
                                            always_on_core=4),
                substrate=SubstrateConfig(kind="live"))
        assert config.network.latency_model == "uniform"
        assert config.runtime.relay_damping is False
        assert config.population.mode == "aggregated"
        assert config.substrate.kind == "live"


class TestFlatShims:
    def test_flat_kwarg_warns_and_names_the_knob(self):
        with pytest.warns(DeprecationWarning, match="bandwidth_bps"):
            config = SimulationConfig(num_users=6, bandwidth_bps=5e6)
        assert config.network.bandwidth_bps == 5e6

    def test_flat_and_nested_builds_are_equal(self):
        flat = _quiet(num_users=6, seed=3, latency_model="uniform",
                      uniform_latency=0.02, relay_damping=False,
                      peers_per_node=3)
        nested = SimulationConfig(
            num_users=6, seed=3,
            network=NetworkConfig(latency_model="uniform",
                                  uniform_latency=0.02, peers_per_node=3),
            runtime=RuntimeConfig(relay_damping=False))
        assert flat == nested

    def test_read_through_properties(self):
        config = SimulationConfig(
            num_users=6,
            network=NetworkConfig(peers_per_node=7),
            population=PopulationConfig(mode="aggregated",
                                        always_on_core=5, steps_ahead=2))
        assert config.peers_per_node == 7
        assert config.always_on_core == 5
        assert config.steps_ahead == 2

    def test_population_string_shim(self):
        with pytest.warns(DeprecationWarning, match="population"):
            config = SimulationConfig(num_users=6, population="aggregated",
                                      always_on_core=4)
        assert config.population.mode == "aggregated"
        assert config.population.always_on_core == 4

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="no_such_knob"):
            SimulationConfig(num_users=6, no_such_knob=1)

    def test_replace_preserves_flat_overrides(self):
        """The chaos engine does replace(config, relay_damping=...)."""
        base = _quiet(num_users=6, bandwidth_bps=5e6, peers_per_node=3)
        flipped = _quiet_replace(base, relay_damping=False)
        assert flipped.network.bandwidth_bps == 5e6
        assert flipped.network.peers_per_node == 3
        assert flipped.runtime.relay_damping is False

    def test_replace_with_nested_group(self):
        base = SimulationConfig(num_users=6,
                                runtime=RuntimeConfig(use_admission=False))
        swapped = _quiet_replace(
            base, network=NetworkConfig(latency_model="uniform"))
        assert swapped.network.latency_model == "uniform"
        assert swapped.runtime.use_admission is False


def _quiet_replace(config, **changes):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return dataclasses.replace(config, **changes)


class TestValidation:
    def test_bad_latency_model(self):
        config = SimulationConfig(
            num_users=6, network=NetworkConfig(latency_model="warp"))
        with pytest.raises(LatencyModelError):
            config.validate()

    def test_bad_population_mode(self):
        config = SimulationConfig(
            num_users=6, population=PopulationConfig(mode="imaginary"))
        with pytest.raises(PopulationError):
            config.validate()

    def test_bad_balances(self):
        config = SimulationConfig(num_users=3, balances=[1, 2])
        with pytest.raises(BalancesError):
            config.validate()

    def test_bad_substrate_kind(self):
        config = SimulationConfig(
            num_users=6, substrate=SubstrateConfig(kind="quantum"))
        with pytest.raises(ConfigError):
            config.validate()

    def test_batch_verify_requires_cache(self):
        config = SimulationConfig(
            num_users=6,
            runtime=RuntimeConfig(use_verification_cache=False,
                                  batch_verify=True))
        with pytest.raises(ConfigError):
            config.validate()

    def test_default_config_validates(self):
        SimulationConfig().validate()
