"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.loop import AnyOf, Environment, Timeout


class TestScheduling:
    def test_timers_fire_in_order(self):
        env = Environment()
        log = []
        env.schedule(3, lambda: log.append("c"))
        env.schedule(1, lambda: log.append("a"))
        env.schedule(2, lambda: log.append("b"))
        env.run()
        assert log == ["a", "b", "c"]
        assert env.now == 3

    def test_equal_times_fire_in_scheduling_order(self):
        env = Environment()
        log = []
        for name in "abc":
            env.schedule(1.0, lambda n=name: log.append(n))
        env.run()
        assert log == ["a", "b", "c"]

    def test_cancelled_timer_does_not_fire(self):
        env = Environment()
        log = []
        timer = env.schedule(1, lambda: log.append("x"))
        timer.cancel()
        env.run()
        assert log == []

    def test_run_until(self):
        env = Environment()
        log = []
        env.schedule(1, lambda: log.append(1))
        env.schedule(10, lambda: log.append(10))
        env.run(until=5)
        assert log == [1]
        assert env.now == 5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule(-1, lambda: None)

    def test_max_events_guard(self):
        env = Environment()

        def reschedule():
            env.schedule(1, reschedule)

        env.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            env.run(max_events=100)

    def test_stop_when(self):
        env = Environment()
        count = [0]

        def tick():
            count[0] += 1
            env.schedule(1, tick)

        env.schedule(1, tick)
        env.run(stop_when=lambda: count[0] >= 5)
        assert count[0] == 5


class TestProcesses:
    def test_timeout_resumes(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(2)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [2.0]

    def test_return_value_via_join(self):
        env = Environment()
        results = []

        def child():
            yield env.timeout(1)
            return "done"

        def parent():
            value = yield env.process(child())
            results.append(value)

        env.process(parent())
        env.run()
        assert results == ["done"]

    def test_event_trigger_delivers_value(self):
        env = Environment()
        event = env.event()
        got = []

        def waiter():
            value = yield event
            got.append(value)

        env.process(waiter())
        env.schedule(3, lambda: event.trigger("payload"))
        env.run()
        assert got == ["payload"]

    def test_event_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.trigger(1)
        with pytest.raises(SimulationError):
            event.trigger(2)

    def test_already_triggered_event_resumes_immediately(self):
        env = Environment()
        event = env.event()
        event.trigger("early")
        got = []

        def waiter():
            value = yield event
            got.append((value, env.now))

        env.process(waiter())
        env.run()
        assert got == [("early", 0.0)]

    def test_process_error_surfaces_in_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise RuntimeError("boom")

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_yielding_garbage_is_an_error(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_interrupt_stops_process(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(10)
            log.append("should not happen")

        process = env.process(proc())
        env.schedule(1, process.interrupt)
        env.run()
        assert log == []
        assert process.done


class TestAnyOf:
    def test_first_wins(self):
        env = Environment()
        got = []

        def proc():
            result = yield env.any_of([env.timeout(5, "slow"),
                                       env.timeout(1, "fast")])
            got.append((result, env.now))

        env.process(proc())
        env.run()
        assert got == [((1, "fast"), 1.0)]

    def test_loser_is_disarmed(self):
        """After AnyOf resolves, the losing timeout must not resume the
        process again."""
        env = Environment()
        resumes = []

        def proc():
            yield env.any_of([env.timeout(1), env.timeout(2)])
            resumes.append(env.now)
            yield env.timeout(10)
            resumes.append(env.now)

        env.process(proc())
        env.run()
        assert resumes == [1.0, 11.0]

    def test_event_and_timeout_race(self):
        env = Environment()
        signal = env.signal()
        got = []

        def proc():
            index, value = yield env.any_of([signal.next_event(),
                                             env.timeout(10)])
            got.append((index, value, env.now))

        env.process(proc())
        env.schedule(2, lambda: signal.pulse("hello"))
        env.run()
        assert got == [(0, "hello", 2.0)]

    def test_empty_anyof_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            AnyOf([])


class TestSignal:
    def test_signal_reusable(self):
        env = Environment()
        signal = env.signal()
        got = []

        def listener():
            for _ in range(3):
                value = yield signal.next_event()
                got.append(value)

        env.process(listener())
        for i, delay in enumerate((1, 2, 3)):
            env.schedule(delay, lambda i=i: signal.pulse(i))
        env.run()
        assert got == [0, 1, 2]

    def test_pulse_without_waiters_is_noop(self):
        env = Environment()
        signal = env.signal()
        signal.pulse("ignored")
        env.run()


class TestTimeoutValidation:
    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.5)


class TestImmediateQueue:
    def test_schedule_now_interleaves_with_zero_delay_timers(self):
        """Immediates share the (time, seq) key space with heap timers:
        mixing the two paths must preserve exact scheduling order."""
        env = Environment()
        log = []
        env.schedule(0, lambda: log.append("h1"))
        env.schedule_now(lambda: log.append("i1"))
        env.schedule(0, lambda: log.append("h2"))
        env.schedule_now(lambda: log.append("i2"))
        env.run()
        assert log == ["h1", "i1", "h2", "i2"]

    def test_cancelled_immediate_does_not_fire(self):
        env = Environment()
        log = []
        timer = env.schedule_now(lambda: log.append("x"))
        timer.cancel()
        env.schedule_now(lambda: log.append("y"))
        env.run()
        assert log == ["y"]

    def test_immediate_scheduled_mid_run_fires_at_current_time(self):
        env = Environment()
        log = []

        def at_two():
            env.schedule_now(lambda: log.append(env.now))

        env.schedule(2, at_two)
        env.schedule(5, lambda: log.append(env.now))
        env.run()
        assert log == [2.0, 5.0]

    def test_until_respected_for_immediates(self):
        env = Environment()
        log = []

        def at_three():
            env.schedule_now(lambda: log.append("late"))

        env.schedule(3, at_three)
        env.run(until=3)
        # The immediate carries time 3.0 == until, so it still fires.
        assert log == ["late"]
        assert env.now == 3


class TestBatchSchedule:
    def test_delivers_in_time_order(self):
        env = Environment()
        log = []
        env.schedule_batch([(2.0, "b"), (1.0, "a"), (2.0, "c")],
                           lambda p: log.append((env.now, p)))
        env.run()
        assert log == [(1.0, "a"), (2.0, "b"), (2.0, "c")]

    def test_same_time_payloads_share_one_event(self):
        env = Environment()
        log = []
        env.schedule_batch([(1.0, i) for i in range(5)], log.append)
        env.run()
        assert log == [0, 1, 2, 3, 4]
        assert env.events_processed == 1

    def test_interleaves_with_plain_timers(self):
        env = Environment()
        log = []
        env.schedule_batch([(1.0, "batch1"), (3.0, "batch3")],
                           log.append)
        env.schedule(2.0, lambda: log.append("timer2"))
        env.run()
        assert log == ["batch1", "timer2", "batch3"]

    def test_cancel_drops_undelivered(self):
        env = Environment()
        log = []
        batch = env.schedule_batch([(1.0, "a"), (5.0, "b")], log.append)
        env.run(until=2)
        batch.cancel()
        env.run()
        assert log == ["a"]

    def test_empty_batch_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule_batch([], lambda p: None)

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule_batch([(1.0, "a"), (-0.5, "b")], lambda p: None)


class TestFailureSurfacing:
    def test_stop_when_does_not_swallow_failures(self):
        """Regression: a failure recorded by the very event that makes
        ``stop_when`` true used to be silently swallowed."""
        env = Environment()

        def boom():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        env.process(boom(), "boom")
        with pytest.raises(SimulationError):
            env.run(stop_when=lambda: True)

    def test_until_exit_does_not_swallow_failures(self):
        env = Environment()

        def boom():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        env.process(boom(), "boom")
        env.schedule(10, lambda: None)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_failure_stops_processing_of_later_events(self):
        env = Environment()
        log = []

        def boom():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        env.process(boom(), "boom")
        env.schedule(1, lambda: log.append("after"))
        with pytest.raises(SimulationError):
            env.run()
        assert log == []


class TestDoneCallbacks:
    def test_done_callback_fires_synchronously_on_finish(self):
        env = Environment()
        done = []

        def worker():
            yield env.timeout(2)
            return "result"

        process = env.process(worker())
        process.add_done_callback(lambda p: done.append(env.now))
        env.run()
        assert done == [2.0]

    def test_done_callback_on_already_finished_process(self):
        env = Environment()

        def worker():
            yield env.timeout(1)

        process = env.process(worker())
        env.run()
        done = []
        process.add_done_callback(done.append)
        assert done == [process]
