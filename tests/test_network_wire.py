"""Tests for the wire format: round-trips, tamper detection, calibration."""

from __future__ import annotations

import pytest

from repro.baplus.messages import make_vote
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.block import Block, empty_block
from repro.ledger.transaction import make_transaction
from repro.network.message import PRIORITY_MESSAGE_BYTES, VOTE_MESSAGE_BYTES
from repro.network.wire import (
    WireError,
    decode_block,
    decode_certificate,
    decode_priority,
    decode_transaction,
    decode_vote,
    encode_block,
    encode_certificate,
    encode_priority,
    encode_transaction,
    encode_vote,
    wire_size,
)
from repro.node.proposal import PriorityMessage


@pytest.fixture
def backend():
    return FastBackend()


@pytest.fixture
def sample_tx(backend):
    alice = backend.keypair(H(b"w-alice"))
    bob = backend.keypair(H(b"w-bob"))
    return make_transaction(backend, alice.secret, alice.public,
                            bob.public, 5, 0, note=b"memo")


@pytest.fixture
def sample_vote(backend):
    voter = backend.keypair(H(b"w-voter"))
    return make_vote(backend, voter.secret, voter.public, 3, "1",
                     H(b"sort"), b"proof" * 10, H(b"prev"), H(b"value"))


class TestRoundTrips:
    def test_transaction(self, sample_tx, backend):
        decoded = decode_transaction(encode_transaction(sample_tx))
        assert decoded == sample_tx
        assert decoded.txid == sample_tx.txid
        decoded.verify_signature(backend)

    def test_vote(self, sample_vote, backend):
        decoded = decode_vote(encode_vote(sample_vote))
        assert decoded == sample_vote
        assert decoded.signature == sample_vote.signature
        assert decoded.verify_signature(backend)

    def test_priority(self):
        message = PriorityMessage(proposer=H(b"p"), round_number=2,
                                  vrf_hash=H(b"v"), vrf_proof=b"pr" * 40,
                                  sub_users=3, priority=H(b"best"))
        assert decode_priority(encode_priority(message)) == message

    def test_block_with_transactions(self, sample_tx):
        block = Block(round_number=1, prev_hash=H(b"prev"), timestamp=4.2,
                      seed=H(b"s"), seed_proof=b"sp", proposer=H(b"who"),
                      proposer_vrf_hash=H(b"v"), proposer_vrf_proof=b"vp",
                      proposer_priority=H(b"pri"),
                      transactions=(sample_tx,))
        decoded = decode_block(encode_block(block))
        assert decoded.block_hash == block.block_hash
        assert decoded.transactions == block.transactions

    def test_empty_block(self):
        block = empty_block(4, H(b"prev"))
        decoded = decode_block(encode_block(block))
        assert decoded.is_empty
        assert decoded.block_hash == block.block_hash

    def test_certificate_via_live_round(self):
        sim = Simulation(SimulationConfig(num_users=12, seed=71))
        sim.run_rounds(1)
        certificate = sim.nodes[0].chain.certificate_at(1)
        decoded = decode_certificate(encode_certificate(certificate))
        assert decoded.value == certificate.value
        assert decoded.votes == certificate.votes


class TestErrors:
    def test_wrong_tag_rejected(self, sample_tx):
        with pytest.raises(WireError):
            decode_vote(encode_transaction(sample_tx))

    def test_garbage_rejected(self):
        with pytest.raises(WireError):
            decode_block(b"\xff\x00garbage")

    def test_truncated_rejected(self, sample_vote):
        with pytest.raises(WireError):
            decode_vote(encode_vote(sample_vote)[:-3])

    def test_wire_size_unknown_type(self):
        with pytest.raises(TypeError):
            wire_size(object())  # type: ignore[arg-type]


class TestSizeCalibration:
    """The gossip layer charges bandwidth via constants; they must stay
    within ~2x of real encoded sizes or the cost model drifts."""

    def test_vote_constant_calibrated(self, sample_vote):
        actual = wire_size(sample_vote)
        assert VOTE_MESSAGE_BYTES / 2 <= actual <= VOTE_MESSAGE_BYTES * 2

    def test_priority_constant_calibrated(self):
        message = PriorityMessage(proposer=H(b"p"), round_number=2,
                                  vrf_hash=H(b"v"), vrf_proof=b"x" * 80,
                                  sub_users=3, priority=H(b"best"))
        actual = wire_size(message)
        assert (PRIORITY_MESSAGE_BYTES / 2
                <= actual <= PRIORITY_MESSAGE_BYTES * 2)

    def test_block_size_tracks_payload(self, backend):
        alice = backend.keypair(H(b"cal-a"))
        bob = backend.keypair(H(b"cal-b"))
        txs = tuple(
            make_transaction(backend, alice.secret, alice.public,
                             bob.public, 1, n, note=b"\x00" * 100)
            for n in range(10)
        )
        block = Block(round_number=1, prev_hash=H(b"p"), timestamp=1.0,
                      seed=H(b"s"), seed_proof=b"sp", proposer=H(b"w"),
                      proposer_vrf_hash=H(b"v"), proposer_vrf_proof=b"vp",
                      proposer_priority=H(b"pr"), transactions=txs)
        # The accounting property `block.size` approximates the real
        # encoding within 25%.
        assert abs(wire_size(block) - block.size) < 0.25 * block.size
