"""Tests for the protocol parameter set (Figure 4)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.params import PAPER_PARAMS, TEST_PARAMS, ProtocolParams


class TestPaperParams:
    """PAPER_PARAMS must match Figure 4 of the paper exactly."""

    def test_figure4_values(self):
        assert PAPER_PARAMS.honest_fraction == 0.80
        assert PAPER_PARAMS.seed_refresh_interval == 1000
        assert PAPER_PARAMS.tau_proposer == 26
        assert PAPER_PARAMS.tau_step == 2000
        assert PAPER_PARAMS.t_step == 0.685
        assert PAPER_PARAMS.tau_final == 10_000
        assert PAPER_PARAMS.t_final == 0.74
        assert PAPER_PARAMS.max_steps == 150
        assert PAPER_PARAMS.lambda_priority == 5.0
        assert PAPER_PARAMS.lambda_block == 60.0
        assert PAPER_PARAMS.lambda_step == 20.0
        assert PAPER_PARAMS.lambda_stepvar == 5.0

    def test_vote_thresholds(self):
        assert PAPER_PARAMS.step_vote_threshold == pytest.approx(1370.0)
        assert PAPER_PARAMS.final_vote_threshold == pytest.approx(7400.0)


class TestValidation:
    def test_honest_fraction_must_exceed_two_thirds(self):
        with pytest.raises(ValueError):
            ProtocolParams(honest_fraction=0.5)

    def test_honest_fraction_cannot_exceed_one(self):
        with pytest.raises(ValueError):
            ProtocolParams(honest_fraction=1.5)

    def test_thresholds_must_exceed_two_thirds(self):
        with pytest.raises(ValueError):
            ProtocolParams(t_step=0.5)
        with pytest.raises(ValueError):
            ProtocolParams(t_final=0.66)

    def test_committee_sizes_positive(self):
        with pytest.raises(ValueError):
            ProtocolParams(tau_step=0)

    def test_timeouts_positive(self):
        with pytest.raises(ValueError):
            ProtocolParams(lambda_step=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_PARAMS.tau_step = 5  # type: ignore[misc]


class TestScaled:
    def test_scaling_preserves_thresholds(self):
        scaled = PAPER_PARAMS.scaled(0.01)
        assert scaled.t_step == PAPER_PARAMS.t_step
        assert scaled.t_final == PAPER_PARAMS.t_final
        assert scaled.tau_step == 20
        assert scaled.tau_final == 100

    def test_scaling_floors(self):
        tiny = PAPER_PARAMS.scaled(1e-6)
        assert tiny.tau_step >= 8
        assert tiny.tau_final >= 12
        assert tiny.tau_proposer >= 3

    def test_scaling_overrides(self):
        scaled = PAPER_PARAMS.scaled(0.5, lambda_step=1.0)
        assert scaled.lambda_step == 1.0
        assert scaled.tau_step == 1000

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            PAPER_PARAMS.scaled(0)

    def test_test_params_have_margin(self):
        # Expected committee must clear the threshold by a wide margin for
        # the default 20-user x 10-unit test population (see params.py).
        assert TEST_PARAMS.tau_step * TEST_PARAMS.t_step < TEST_PARAMS.tau_step
        assert TEST_PARAMS.tau_step >= 4 * (
            TEST_PARAMS.tau_step - TEST_PARAMS.step_vote_threshold) ** 0.5
