"""Tests for bootstrapping (section 8.3) and fork recovery (section 8.2)."""

from __future__ import annotations

import pytest

from repro.baplus.certificate import Certificate
from repro.common.errors import InvalidCertificate, LedgerError
from repro.common.params import TEST_PARAMS
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.block import Block, empty_block
from repro.node.catchup import catch_up_from, replay_chain
from repro.node.recovery import run_recovery
from repro.sortition.seed import propose_seed


@pytest.fixture(scope="module")
def finished_sim():
    sim = Simulation(SimulationConfig(num_users=16, seed=21))
    sim.submit_payments(20, note_bytes=10)
    sim.run_rounds(3)
    return sim


def _initial_balances(sim):
    return {kp.public: sim.config.initial_balance for kp in sim.keypairs}


class TestCatchup:
    def test_new_user_replays_history(self, finished_sim):
        sim = finished_sim
        replica = catch_up_from(
            sim.nodes[0].chain, params=TEST_PARAMS, backend=sim.backend,
            initial_balances=_initial_balances(sim),
            genesis_seed=sim.genesis_seed)
        assert replica.height == 3
        assert replica.tip_hash == sim.nodes[0].chain.tip_hash
        assert replica.state.weights() == sim.nodes[0].chain.state.weights()

    def test_missing_certificate_rejected(self, finished_sim):
        sim = finished_sim
        chain = sim.nodes[0].chain
        certificates = {
            r: chain.certificate_at(r) for r in (1, 3)  # round 2 missing
        }
        with pytest.raises(InvalidCertificate):
            replay_chain(chain.blocks[1:], certificates,
                         initial_balances=_initial_balances(sim),
                         genesis_seed=sim.genesis_seed,
                         params=TEST_PARAMS, backend=sim.backend)

    def test_substituted_block_rejected(self, finished_sim):
        """An attacker serving a different block than the certificate
        certifies must be caught."""
        sim = finished_sim
        chain = sim.nodes[0].chain
        blocks = list(chain.blocks[1:])
        blocks[1] = empty_block(2, blocks[0].block_hash)
        certificates = {r: chain.certificate_at(r) for r in (1, 2, 3)}
        with pytest.raises(InvalidCertificate):
            replay_chain(blocks, certificates,
                         initial_balances=_initial_balances(sim),
                         genesis_seed=sim.genesis_seed,
                         params=TEST_PARAMS, backend=sim.backend)

    def test_forged_certificate_rejected(self, finished_sim):
        """A certificate whose votes were stripped below quorum fails."""
        sim = finished_sim
        chain = sim.nodes[0].chain
        genuine = chain.certificate_at(2)
        forged = Certificate(
            round_number=genuine.round_number, step=genuine.step,
            value=genuine.value, votes=genuine.votes[:2])
        certificates = {1: chain.certificate_at(1), 2: forged,
                        3: chain.certificate_at(3)}
        with pytest.raises(InvalidCertificate):
            replay_chain(chain.blocks[1:], certificates,
                         initial_balances=_initial_balances(sim),
                         genesis_seed=sim.genesis_seed,
                         params=TEST_PARAMS, backend=sim.backend)

    def test_out_of_order_history_rejected(self, finished_sim):
        sim = finished_sim
        chain = sim.nodes[0].chain
        blocks = [chain.blocks[2], chain.blocks[1], chain.blocks[3]]
        certificates = {r: chain.certificate_at(r) for r in (1, 2, 3)}
        with pytest.raises(LedgerError):
            replay_chain(blocks, certificates,
                         initial_balances=_initial_balances(sim),
                         genesis_seed=sim.genesis_seed,
                         params=TEST_PARAMS, backend=sim.backend)


def _forked_sim():
    """Run 2 agreed rounds, then hand-craft a divergence at round 3:
    half the nodes append block A, half append block B (the situation
    weak synchrony can produce via tentative consensus)."""
    sim = Simulation(SimulationConfig(num_users=16, seed=33))
    sim.submit_payments(10)
    sim.run_rounds(2)

    group_a = sim.nodes[:8]
    group_b = sim.nodes[8:]
    chain0 = sim.nodes[0].chain

    def craft(proposer_node, tag):
        previous_seed = chain0.seed_of_round(2)
        seed, seed_proof = propose_seed(
            sim.backend, proposer_node.keypair.secret, previous_seed, 3)
        return Block(
            round_number=3, prev_hash=chain0.tip_hash,
            timestamp=sim.env.now + 1.0, seed=seed, seed_proof=seed_proof,
            proposer=proposer_node.keypair.public,
            proposer_vrf_hash=H(tag), proposer_vrf_proof=b"p",
            proposer_priority=H(tag), transactions=(),
        )

    block_a = craft(sim.nodes[0], b"fork-a")
    block_b = craft(sim.nodes[8], b"fork-b")
    for node in group_a:
        node.chain.append(block_a)
    for node in group_b:
        node.chain.append(block_b)
    # Group A is "longer" in tie-break terms only by priority; lengths tie.
    # Extend group A by one more block so the longest-fork rule has a
    # unique winner.
    extra = empty_block(4, block_a.block_hash)
    for node in group_a:
        node.chain.append(extra)
    return sim


class TestRecovery:
    def test_forked_nodes_converge(self):
        sim = _forked_sim()
        tips_before = {node.chain.tip_hash for node in sim.nodes}
        assert len(tips_before) == 2  # genuinely forked

        run_recovery(sim.nodes, pre_fork_round=2)
        sim.env.run(until=sim.env.now + 600)
        tips_after = {node.chain.tip_hash for node in sim.nodes}
        assert len(tips_after) == 1

    def test_longest_fork_wins(self):
        sim = _forked_sim()
        longest = max(node.chain.height for node in sim.nodes)
        run_recovery(sim.nodes, pre_fork_round=2)
        sim.env.run(until=sim.env.now + 600)
        for node in sim.nodes:
            assert node.chain.height >= longest

    def test_recovery_preserves_common_prefix(self):
        sim = _forked_sim()
        prefix = [block.block_hash for block in sim.nodes[0].chain.blocks[:3]]
        run_recovery(sim.nodes, pre_fork_round=2)
        sim.env.run(until=sim.env.now + 600)
        for node in sim.nodes:
            assert [b.block_hash for b in node.chain.blocks[:3]] == prefix

    def test_unforked_network_recovery_is_noop(self):
        sim = Simulation(SimulationConfig(num_users=12, seed=8))
        sim.run_rounds(1)
        tip = sim.nodes[0].chain.tip_hash
        run_recovery(sim.nodes, pre_fork_round=1)
        sim.env.run(until=sim.env.now + 600)
        assert all(node.chain.tip_hash == tip for node in sim.nodes)
