"""End-to-end live cluster smoke test (marked slow; run with -m slow).

Spawns five real node processes over Unix domain sockets, commits three
rounds of BA*, and checks the acceptance bar for the live substrate:
byte-identical chains on every process and a merged trace the reference
state machine accepts with zero violations.
"""

from __future__ import annotations

import pytest

from repro.conformance.monitor import ConformanceMonitor
from repro.live.cluster import LiveCluster, default_live_config
from repro.obs.sink import read_trace

pytestmark = pytest.mark.slow

NODES = 5
ROUNDS = 3


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    runtime_dir = tmp_path_factory.mktemp("live-cluster")
    config = default_live_config(NODES, seed=7,
                                 runtime_dir=str(runtime_dir))
    cluster = LiveCluster(config)
    cluster.submit_payments(20)
    cluster.run_rounds(ROUNDS)
    return cluster


class TestLiveCluster:
    def test_every_process_reaches_target_height(self, cluster):
        assert sorted(cluster.results) == list(range(NODES))
        for result in cluster.results.values():
            assert result["height"] == ROUNDS
            assert not result["halted"]

    def test_chains_byte_identical(self, cluster):
        assert cluster.all_chains_equal()
        tips = {result["tip"] for result in cluster.results.values()}
        assert len(tips) == 1

    def test_decoded_chains_agree_per_round(self, cluster):
        reference = cluster.chains[0]
        assert len(reference) == ROUNDS
        for index in range(1, NODES):
            chain = cluster.chains[index]
            for left, right in zip(reference, chain):
                assert left.block_hash == right.block_hash

    def test_payments_actually_committed(self, cluster):
        total_txs = sum(len(block.transactions)
                        for block in cluster.chains[0])
        assert total_txs > 0

    def test_merged_trace_conforms_with_zero_violations(self, cluster):
        events, snapshot = read_trace(cluster.merged_trace_path)
        assert events, "merged trace must carry protocol events"
        assert snapshot is not None
        assert int(snapshot.get("dropped_events", 0)) == 0
        monitor = ConformanceMonitor()
        monitor.feed(events)
        verdict = monitor.verdict()
        assert verdict.ok, verdict.violations
        assert verdict.nodes == NODES
        assert len(monitor.violations) == 0

    def test_no_transport_loss_on_loopback(self, cluster):
        summary = cluster.summary()
        assert summary["rx_dropped"] == 0
        assert summary["garbage_frames"] == 0
        assert summary["conformance_ok"]
        assert summary["conformance_violations"] == 0
