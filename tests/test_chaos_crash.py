"""Crash/restart faults: fail-stop mid-round, certificate-verified rejoin.

The headline test kills a node in the middle of a BA* round, restarts
it after its peers have moved on, and requires it to converge by
replaying their history through :func:`repro.node.catchup.resync_from_peers`
(full certificate verification — section 8.3), with the whole run
staying invariant-green.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultAction, ScenarioScript, run_scenario
from repro.common.errors import SimulationError
from repro.experiments.harness import Simulation, SimulationConfig


class TestCrashRestartUnit:
    def test_crash_disconnects_and_clears_volatile_state(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=9))
        node = sim.nodes[1]
        node.start(2)
        sim.env.run(until=1.0)
        node.crash()
        assert node.crashed
        assert node.interface.disconnected
        assert len(node.mempool) == 0
        assert node._trackers == {}

    def test_crash_is_idempotent(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=9))
        node = sim.nodes[1]
        node.crash()
        node.crash()
        assert node.crashed

    def test_crash_preserves_committed_chain(self):
        sim = Simulation(SimulationConfig(num_users=8, seed=9))
        sim.run_rounds(1)
        node = sim.nodes[1]
        height = node.chain.height
        assert height == 1
        node.crash()
        assert node.chain.height == height

    def test_restart_requires_a_crash(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=9))
        with pytest.raises(SimulationError, match="not crashed"):
            sim.nodes[1].restart(2)

    def test_restart_reconnects(self):
        sim = Simulation(SimulationConfig(num_users=4, seed=9))
        node = sim.nodes[1]
        node.crash()
        node.restart(1)
        assert not node.crashed
        assert not node.interface.disconnected


class TestCrashScenarios:
    def test_crash_mid_step_rejoins_via_catchup_and_converges(self):
        # t=1.0 lands inside round 1's proposal/vote exchange; by the
        # t=8.0 restart the other seven nodes have finished both rounds,
        # so the victim can only converge by replaying their history.
        script = ScenarioScript(
            name="crash-mid-step", seed=5, num_users=8, rounds=2,
            actions=(FaultAction(kind="crash", start=1.0, end=8.0,
                                 nodes=(2,)),))
        verdict = run_scenario(script)
        assert verdict.ok, verdict.violations
        assert verdict.heights == [2] * 8
        obs = verdict.sim.obs
        assert [e["node"] for e in obs.events_of_kind("node_crashed")] == [2]
        assert [e["node"] for e in obs.events_of_kind("node_restarted")] == [2]
        adopted = obs.events_of_kind("catchup_adopted")
        assert any(e["node"] == 2 and e["to_height"] == 2
                   for e in adopted)

    def test_permanent_crash_excluded_from_convergence(self):
        script = ScenarioScript(
            name="crash-forever", seed=11, num_users=12, rounds=2,
            actions=(FaultAction(kind="crash", start=1.0, end=None,
                                 nodes=(5,)),))
        assert script.permanently_crashed() == frozenset({5})
        verdict = run_scenario(script)
        assert verdict.ok, verdict.violations
        # The survivors converged; the corpse keeps its honest prefix.
        heights = verdict.heights
        assert all(h == 2 for i, h in enumerate(heights) if i != 5)
        assert heights[5] < 2

    def test_crash_during_partition_still_green(self):
        # Compound fault: half-split while a node is down, then both
        # clear. Safety must hold throughout, liveness after the heal.
        script = ScenarioScript(
            name="crash-in-partition", seed=13, num_users=10, rounds=2,
            actions=(
                FaultAction(kind="partition", start=0.5, end=10.0,
                            groups=((0, 1, 2, 3, 4), (5, 6, 7, 8, 9))),
                FaultAction(kind="crash", start=1.5, end=12.0,
                            nodes=(7,)),
            ))
        verdict = run_scenario(script)
        assert verdict.ok, verdict.violations
        assert verdict.heights == [2] * 10
