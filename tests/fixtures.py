"""Shared simulation helpers for the test suite.

Deduplicates the three shapes almost every integration test rebuilds:

* :func:`run_sim` / :func:`run_traced` — build, fund and run a seeded
  :class:`~repro.experiments.harness.Simulation` in one call;
* :func:`assert_chains_byte_identical` — the byte-identity bar used by
  the admission, population and damping equivalence suites: same block
  dataclasses (timestamps included), same round records, on every node;
* :func:`signed_vote` — a validly-signed :class:`VoteMessage` from one
  of a simulation's users, with forgeable fields overridable per test.

Import from tests as ``from tests.fixtures import run_sim`` (the tests
directory is a package).
"""

from __future__ import annotations

from repro.baplus.messages import VoteMessage, make_vote
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.obs import TraceBus


def run_sim(rounds: int, payments: int = 0, *, obs: TraceBus | None = None,
            **config) -> Simulation:
    """Build a :class:`Simulation` from config kwargs and run it."""
    sim = Simulation(SimulationConfig(**config), obs=obs)
    if payments:
        sim.submit_payments(payments)
    if rounds:
        sim.run_rounds(rounds)
    return sim


def run_traced(rounds: int, payments: int = 0,
               **config) -> tuple[Simulation, TraceBus]:
    """:func:`run_sim` with a fresh :class:`TraceBus` attached."""
    bus = TraceBus()
    return run_sim(rounds, payments, obs=bus, **config), bus


def chain_fingerprint(sim: Simulation) -> list[list[tuple]]:
    """Every committed byte, per node: block dataclasses + round records.

    Two runs whose fingerprints compare equal committed literally the
    same chains — hashes, seeds, transactions, and the timestamps that
    betray any event-ordering drift — and recorded the same per-round
    telemetry.
    """
    out = []
    for node in sim.nodes:
        blocks = [node.chain.block_at(r)
                  for r in range(1, node.chain.height + 1)]
        records = [node.metrics.round_record(r)
                   for r in range(1, node.chain.height + 1)]
        out.append([(block, record)
                    for block, record in zip(blocks, records)])
    return out


def assert_chains_byte_identical(one: Simulation, other: Simulation,
                                 rounds: int) -> None:
    """The equivalence bar: both runs committed identical chains.

    Checks height, every block dataclass (covers every committed byte,
    timestamp included), tip hashes, and per-node round records.
    """
    chain_one = one.nodes[0].chain
    chain_other = other.nodes[0].chain
    assert chain_other.height == chain_one.height == rounds
    for r in range(1, rounds + 1):
        assert chain_other.block_at(r) == chain_one.block_at(r)
    assert chain_other.tip_hash == chain_one.tip_hash
    for node_one, node_other in zip(one.nodes, other.nodes):
        assert node_other.chain.tip_hash == node_one.chain.tip_hash
        for r in range(1, rounds + 1):
            assert (node_other.metrics.round_record(r)
                    == node_one.metrics.round_record(r))


def signed_vote(sim: Simulation, voter_index: int, round_number: int,
                step: str, *, value: bytes | None = None,
                sorthash: bytes | None = None,
                sortproof: bytes | None = None,
                prev_hash: bytes | None = None) -> VoteMessage:
    """A validly-signed vote from user ``voter_index``.

    The sortition fields default to junk (most ingress tests want a
    signature-valid, sortition-invalid or undecidable vote); pass real
    values to exercise the full path.
    """
    keypair = sim.keypairs[voter_index]
    return make_vote(
        sim.backend, keypair.secret, keypair.public, round_number, step,
        sorthash if sorthash is not None else H(b"test-sorthash"),
        sortproof if sortproof is not None else b"test-proof",
        prev_hash if prev_hash is not None
        else sim.nodes[0].chain.tip_hash,
        value if value is not None else H(b"test-value"),
    )
