"""Smoke tests for the ``python -m repro.experiments`` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import ARTIFACTS, main


class TestCLI:
    def test_unknown_artifact_rejected(self, capsys):
        assert main(["no-such-figure"]) == 2
        out = capsys.readouterr().out
        assert "unknown artifact" in out
        assert "fig5" in out  # lists what's available

    def test_every_documented_artifact_registered(self):
        assert set(ARTIFACTS) == {
            "fig3", "fig5", "fig6", "fig7", "fig8", "tab_throughput",
            "tab_costs", "tab_timeouts", "tab_params", "tab_related",
            "tab_waiting", "tab_scalability", "obs",
        }

    def test_related_artifact_runs(self, capsys):
        assert main(["tab_related"]) == 0
        out = capsys.readouterr().out
        assert "Algorand" in out and "Bitcoin" in out

    def test_scalability_artifact_runs(self, capsys):
        assert main(["tab_scalability"]) == 0
        out = capsys.readouterr().out
        assert "giant component" in out

    def test_params_artifact_runs(self, capsys):
        assert main(["tab_params"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "2000" in out  # tau_step

    @pytest.mark.parametrize("name", ["fig3"])
    def test_analytic_artifact_runs(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert "committee size" in out
