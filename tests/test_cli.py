"""Smoke tests for the ``python -m repro.experiments`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import ARTIFACTS, main
from repro.experiments.spec import ExperimentSpec


class TestCLI:
    def test_unknown_artifact_rejected(self, capsys):
        assert main(["no-such-figure"]) == 2
        out = capsys.readouterr().out
        assert "unknown artifact" in out
        assert "fig5" in out  # lists what's available

    def test_every_documented_artifact_registered(self):
        assert set(ARTIFACTS) == {
            "fig3", "fig5", "fig6", "fig7", "fig8", "tab_throughput",
            "tab_costs", "tab_timeouts", "tab_params", "tab_related",
            "tab_waiting", "tab_scalability", "obs", "traffic",
        }

    def test_related_artifact_runs(self, capsys):
        assert main(["tab_related"]) == 0
        out = capsys.readouterr().out
        assert "Algorand" in out and "Bitcoin" in out

    def test_scalability_artifact_runs(self, capsys):
        assert main(["tab_scalability"]) == 0
        out = capsys.readouterr().out
        assert "giant component" in out

    def test_params_artifact_runs(self, capsys):
        assert main(["tab_params"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "2000" in out  # tau_step

    @pytest.mark.parametrize("name", ["fig3"])
    def test_analytic_artifact_runs(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert "committee size" in out

    def test_unknown_artifact_mentions_sweep_subcommand(self, capsys):
        assert main(["nope"]) == 2
        assert "sweep" in capsys.readouterr().out

    def test_bad_jobs_flag_rejected(self, capsys):
        assert main(["--jobs"]) == 2
        assert main(["--jobs", "many", "fig3"]) == 2


class TestArtifactRegistry:
    def test_sweep_artifacts_declare_spec_grids(self):
        sweep_backed = {name: a for name, a in ARTIFACTS.items()
                        if a.specs is not None}
        assert set(sweep_backed) == {"fig5", "fig6", "fig7", "fig8",
                                     "tab_throughput", "tab_waiting"}
        for artifact in sweep_backed.values():
            specs = artifact.specs()
            assert specs and all(isinstance(s, ExperimentSpec)
                                 for s in specs)
            assert artifact.render is not None

    def test_analytic_artifacts_have_runners(self):
        for name, artifact in ARTIFACTS.items():
            if artifact.specs is None:
                assert artifact.runner is not None, name


class TestSweepSubcommand:
    GRID = ["--users", "6,8", "--seeds", "0", "--rounds", "1"]

    def test_merged_json_to_stdout(self, capsys):
        assert main(["sweep", *self.GRID, "--quiet"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["engine"] == "repro.experiments.sweep"
        assert [p["spec"]["num_users"] for p in merged["points"]] == [6, 8]
        assert all(p["error"] is None for p in merged["points"])

    def test_out_file_and_checkpoint(self, tmp_path, capsys):
        out = tmp_path / "merged.json"
        checkpoint = tmp_path / "points.jsonl"
        argv = ["sweep", *self.GRID, "--quiet",
                "--out", str(out), "--checkpoint", str(checkpoint)]
        assert main(argv) == 0
        first = out.read_bytes()
        lines = checkpoint.read_text().strip().splitlines()
        assert len(lines) == 2
        # resume: same command recomputes nothing, output stays identical
        assert main(argv) == 0
        assert out.read_bytes() == first
        assert len(checkpoint.read_text().strip().splitlines()) == 2

    def test_empty_grid_rejected(self, capsys):
        assert main(["sweep", "--seeds", "", "--quiet"]) == 2
