"""Damped vs undamped runs commit byte-identical chains.

The relay damper claims to be pure traffic hygiene: with the uniform
latency model and bandwidth modeling off, the arrival prefix up to every
node's threshold crossing is untouched, so the committed chains —
blocks, timestamps, certificates, round records — must be *byte
identical* with damping on or off, and the online conformance monitor
must stay green in both runs. (Under the city latency model the shared
latency RNG advances per delivery, so relay-count changes legitimately
shift timings; the identity claim is scoped to the deterministic
fabric, which is exactly the configuration where any divergence would
indict the damper itself.)

Three scenario families, the same fabric, both regimes:

* ``clean`` — no faults, payments flowing;
* ``partition-heal`` — the canonical split/stall/heal timeline;
* ``flood-recovery`` — attackers flooding junk and undecidable spam.

The quick class keeps one seed per family in tier-1; the full 20-seed
sweep (seeds shared with the chaos sweep, families round-robin) runs
with ``pytest -m slow``.
"""

from __future__ import annotations

import pytest

from repro.chaos.runner import run_scenario
from repro.chaos.scenario import (
    ScenarioScript,
    flood_recovery_scenario,
    partition_heal_scenario,
)

from tests.fixtures import assert_chains_byte_identical

#: The deterministic fabric: identical delivery times regardless of how
#: many relays are in flight, so damping cannot shift any arrival.
IDENTITY_FABRIC = {"latency_model": "uniform", "bandwidth_bps": None}


def _clean_scenario(seed: int) -> ScenarioScript:
    return ScenarioScript(name="clean", seed=seed, num_users=12,
                          rounds=2, payments=8)


FAMILIES = (_clean_scenario, partition_heal_scenario,
            flood_recovery_scenario)


def _family(seed: int, index: int) -> ScenarioScript:
    builder = FAMILIES[index % len(FAMILIES)]
    if builder is _clean_scenario:
        return _clean_scenario(seed)
    return builder(seed=seed)


def _assert_equivalent(script: ScenarioScript) -> None:
    verdicts = {}
    for damping in (False, True):
        verdict = run_scenario(script, sim_overrides={
            **IDENTITY_FABRIC, "relay_damping": damping})
        assert verdict.ok, (script.name, damping, verdict.violations)
        assert verdict.conformance is not None
        assert verdict.conformance["ok"], (script.name, damping)
        verdicts[damping] = verdict
    assert_chains_byte_identical(verdicts[False].sim, verdicts[True].sim,
                                 script.rounds)
    # The equivalence must be a statement about damping *doing work*,
    # not about it sitting idle.
    suppressed = sum(node.damper.suppressed
                     for node in verdicts[True].sim.nodes
                     if node.damper is not None)
    assert suppressed > 0, script.name
    assert all(getattr(node, "damper", None) is None
               for node in verdicts[False].sim.nodes)


class TestQuickEquivalence:
    @pytest.mark.parametrize("index", range(len(FAMILIES)),
                             ids=[f.__name__.strip("_")
                                  for f in FAMILIES])
    def test_family_sample(self, chaos_seeds, index):
        _assert_equivalent(_family(chaos_seeds[index], index))


@pytest.mark.slow
class TestFullEquivalenceSweep:
    def test_twenty_seeds_across_families(self, chaos_seeds):
        assert len(chaos_seeds) >= 20
        failures = []
        for index, seed in enumerate(chaos_seeds):
            script = _family(seed, index)
            try:
                _assert_equivalent(script)
            except AssertionError as exc:  # keep sweeping, report all
                failures.append((seed, script.name, str(exc)[:200]))
        assert not failures, failures
