"""Tests for the unified experiment-point API and the sweep engine.

Covers the PR's contract: spec round-trips (pickle + JSON), serial vs.
parallel byte-identical merged output, checkpoint resume skipping
finished points, crash-retry and timeout handling, deprecation shims,
and the typed ``SimulationConfig.validate()`` errors.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import pickle
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.common.errors import (
    BalancesError,
    ConfigError,
    LatencyModelError,
    PopulationError,
    ReproError,
    SpecError,
)
from repro.common.params import TEST_PARAMS
from repro.experiments import sweep as sweep_module
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.latency import LatencyPoint, run_latency_point
from repro.experiments.spec import (
    AdversarialSpec,
    BlockSizeSpec,
    ExperimentSpec,
    LatencySpec,
    SPEC_KINDS,
    WaitingSpec,
    register_runner,
    register_spec,
    run_point,
    spec_from_json,
)
from repro.experiments.sweep import load_checkpoint, run_sweep
from repro.obs.bus import TraceBus

#: A grid tiny enough for the whole file to stay fast but large enough
#: that parallel completion order differs from spec order.
TINY_GRID = [LatencySpec(num_users=n, seed=s, rounds=1, measure_round=1)
             for s in (0, 1) for n in (6, 8)]

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash/timeout tests register spec kinds the child must inherit")


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", [
        LatencySpec(num_users=12, seed=3, payload_bytes=500),
        AdversarialSpec(fraction=0.2, num_users=10, seed=1),
        BlockSizeSpec(block_size=5_000, num_users=8, seed=2),
        WaitingSpec(wait_seconds=0.5, num_users=8, seed=4),
        LatencySpec(num_users=6, params=TEST_PARAMS),
    ])
    def test_pickle_and_json(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert spec_from_json(spec.to_json()) == spec
        # canonical JSON must be stable and strict
        assert (json.loads(spec.canonical_json())
                == json.loads(spec.canonical_json()))

    def test_fingerprint_distinguishes_specs(self):
        a = LatencySpec(num_users=10, seed=0)
        b = LatencySpec(num_users=10, seed=1)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == LatencySpec(num_users=10).fingerprint()

    def test_params_survive_json(self):
        spec = LatencySpec(num_users=6, params=TEST_PARAMS)
        rebuilt = spec_from_json(json.loads(json.dumps(spec.to_json())))
        assert rebuilt.params == TEST_PARAMS

    def test_every_registered_kind_is_a_spec(self):
        for kind, cls in SPEC_KINDS.items():
            assert issubclass(cls, ExperimentSpec)
            assert cls.kind == kind

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SpecError):
            spec_from_json({"num_users": 5})  # no kind
        with pytest.raises(SpecError):
            spec_from_json({"kind": "no-such-kind"})
        with pytest.raises(SpecError):
            spec_from_json({"kind": "latency", "bogus_field": 1})


class TestSpecValidation:
    def test_bad_values_rejected(self):
        for spec in (LatencySpec(num_users=0),
                     LatencySpec(seed=-1),
                     LatencySpec(rounds=2, measure_round=3),
                     AdversarialSpec(fraction=0.5),
                     BlockSizeSpec(block_size=0),
                     WaitingSpec(wait_seconds=0.0)):
            with pytest.raises(SpecError):
                spec.validate()
            # SpecError must stay catchable as the legacy ValueError
            with pytest.raises(ValueError):
                spec.validate()

    def test_run_point_validates_first(self):
        with pytest.raises(SpecError):
            run_point(WaitingSpec(wait_seconds=-1.0))


class TestRunPoint:
    def test_returns_typed_point_and_json(self):
        result = run_point(LatencySpec(num_users=8, seed=1, rounds=1,
                                       measure_round=1))
        assert isinstance(result.point, LatencyPoint)
        assert result.point.summary.count == 8
        data = result.data()
        assert data["num_users"] == 8
        assert data["summary"]["median"] == result.point.summary.median
        # strict JSON: no NaN may leak into the payload
        json.dumps(result.to_json(), allow_nan=False)


class TestDeprecationShims:
    def test_latency_shim_forwards(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_latency_point(8, seed=1, rounds=1,
                                       measure_round=1)
        modern = run_point(LatencySpec(num_users=8, seed=1, rounds=1,
                                       measure_round=1)).point
        assert legacy == modern

    def test_all_shims_warn(self):
        from repro.experiments.adversarial import run_adversarial_point
        from repro.experiments.throughput import run_block_size_point
        from repro.experiments.waiting import run_waiting_point
        with pytest.warns(DeprecationWarning):
            run_adversarial_point(0.0, num_users=6, rounds=1, seed=3)
        with pytest.warns(DeprecationWarning):
            run_block_size_point(2_000, num_users=6, seed=2)
        with pytest.warns(DeprecationWarning):
            run_waiting_point(1.0, num_users=6, rounds=1, seed=1)

    def test_shim_still_raises_value_error(self):
        from repro.experiments.adversarial import run_adversarial_point
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            run_adversarial_point(0.5)


class TestSweepEngine:
    def test_serial_vs_parallel_byte_identical(self):
        serial = run_sweep(TINY_GRID, jobs=1)
        parallel = run_sweep(TINY_GRID, jobs=2)
        assert serial.merged_json() == parallel.merged_json()
        assert [o.index for o in parallel.outcomes] == list(
            range(len(TINY_GRID)))
        assert not serial.failures and not parallel.failures

    def test_merged_excludes_wall_time(self):
        report = run_sweep(TINY_GRID[:1], jobs=1)
        merged = report.merged()
        assert "wall_time" not in json.dumps(merged)
        assert report.outcomes[0].wall_time > 0

    def test_checkpoint_resume_skips_finished_points(self, tmp_path,
                                                     monkeypatch):
        checkpoint = str(tmp_path / "sweep.jsonl")
        first = run_sweep(TINY_GRID[:2], jobs=1, checkpoint=checkpoint)
        assert len(load_checkpoint(checkpoint)) == 2

        computed = []
        real = sweep_module.run_point

        def counting_run_point(spec):
            computed.append(spec)
            return real(spec)

        monkeypatch.setattr(sweep_module, "run_point", counting_run_point)
        second = run_sweep(TINY_GRID, jobs=1, checkpoint=checkpoint)
        # only the two new points ran; the first two came from the file
        assert [s.fingerprint() for s in computed] == [
            s.fingerprint() for s in TINY_GRID[2:]]
        assert second.resumed_points == 2
        assert [o.resumed for o in second.outcomes] == [True, True,
                                                        False, False]
        # and the resumed payloads are exactly the originals
        assert second.results()[:2] == first.results()

    def test_resumed_sweep_is_byte_identical(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        run_sweep(TINY_GRID[:3], jobs=2, checkpoint=checkpoint)
        resumed = run_sweep(TINY_GRID, jobs=2, checkpoint=checkpoint)
        fresh = run_sweep(TINY_GRID, jobs=1)
        assert resumed.merged_json() == fresh.merged_json()

    def test_corrupt_checkpoint_lines_skipped(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        checkpoint.write_text('{"truncated": \n')
        assert load_checkpoint(str(checkpoint)) == {}

    def test_bad_engine_arguments(self):
        with pytest.raises(SpecError):
            run_sweep(TINY_GRID, jobs=0)
        with pytest.raises(SpecError):
            run_sweep(TINY_GRID, timeout=-1.0)
        with pytest.raises(SpecError):
            run_sweep(TINY_GRID, retries=-1)
        with pytest.raises(SpecError):
            run_sweep([object()])

    def test_invalid_spec_fails_before_running_anything(self):
        specs = [LatencySpec(num_users=6, rounds=1, measure_round=1),
                 WaitingSpec(wait_seconds=-1.0)]
        with pytest.raises(SpecError):
            run_sweep(specs, jobs=1)

    def test_obs_counters(self):
        bus = TraceBus()
        run_sweep(TINY_GRID[:2], jobs=1, obs=bus)
        snapshot = bus.snapshot()
        assert snapshot["counters"]["sweep.points_completed"] == 2
        histogram = snapshot["histograms"]["sweep.point_wall_time"]
        assert histogram["count"] == 2
        kinds = [e["kind"] for e in bus.events]
        assert kinds.count("sweep.point_done") == 2

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_sweep(TINY_GRID, jobs=1,
                  progress=lambda outcome, total: seen.append(
                      (outcome.index, total)))
        assert sorted(index for index, _ in seen) == list(
            range(len(TINY_GRID)))
        assert all(total == len(TINY_GRID) for _, total in seen)


# ---------------------------------------------------------------------
# Crash / timeout handling needs spec kinds the forked child inherits.
# ---------------------------------------------------------------------


@register_spec
@dataclass(frozen=True)
class _CrashSpec(ExperimentSpec):
    """Test-only spec: crashes until ``survive_after`` attempts passed."""

    kind: ClassVar[str] = "_test_crash"

    marker_dir: str = ""
    crash_times: int = 1


@register_runner(_CrashSpec.kind)
def _run_crash_spec(spec: _CrashSpec):
    import os
    attempts_file = os.path.join(spec.marker_dir, "attempts")
    attempts = 0
    if os.path.exists(attempts_file):
        with open(attempts_file) as handle:
            attempts = int(handle.read())
    with open(attempts_file, "w") as handle:
        handle.write(str(attempts + 1))
    if attempts < spec.crash_times:
        os._exit(17)  # hard crash: no exception, no worker message
    return {"attempts_needed": attempts + 1}


@register_spec
@dataclass(frozen=True)
class _SleepSpec(ExperimentSpec):
    """Test-only spec: sleeps (wall clock) longer than any timeout."""

    kind: ClassVar[str] = "_test_sleep"

    sleep_seconds: float = 30.0


@register_runner(_SleepSpec.kind)
def _run_sleep_spec(spec: _SleepSpec):
    time.sleep(spec.sleep_seconds)
    return {"slept": spec.sleep_seconds}


@needs_fork
class TestCrashAndTimeout:
    FORK = multiprocessing.get_context("fork")

    def test_retry_once_recovers_from_crash(self, tmp_path):
        spec = _CrashSpec(marker_dir=str(tmp_path), crash_times=1)
        report = run_sweep([spec], jobs=2, retries=1,
                           mp_context=self.FORK)
        outcome = report.outcomes[0]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.result == {"attempts_needed": 2}

    def test_persistent_crash_is_recorded_not_raised(self, tmp_path):
        spec = _CrashSpec(marker_dir=str(tmp_path), crash_times=99)
        good = LatencySpec(num_users=6, seed=0, rounds=1, measure_round=1)
        report = run_sweep([spec, good], jobs=2, retries=1,
                           mp_context=self.FORK)
        crash, latency = report.outcomes
        assert not crash.ok
        assert crash.attempts == 2
        assert "worker" in crash.error or "exit" in crash.error
        assert latency.ok  # one bad point never sinks the sweep

    def test_timeout_kills_and_records(self, tmp_path):
        report = run_sweep([_SleepSpec(sleep_seconds=30.0)], jobs=1,
                           timeout=0.5, retries=0,
                           mp_context=self.FORK)
        outcome = report.outcomes[0]
        assert not outcome.ok
        assert "timeout" in outcome.error
        assert outcome.wall_time < 10.0

    def test_retry_metrics(self, tmp_path):
        bus = TraceBus()
        spec = _CrashSpec(marker_dir=str(tmp_path), crash_times=1)
        run_sweep([spec], jobs=1, retries=1, timeout=60.0, obs=bus,
                  mp_context=self.FORK)
        assert bus.metrics.counter("sweep.retries") == 1


class TestConfigValidation:
    def test_negative_num_malicious(self):
        with pytest.raises(PopulationError):
            SimulationConfig(num_users=8, num_malicious=-1).validate()

    def test_malicious_exceeding_users(self):
        with pytest.raises(PopulationError):
            SimulationConfig(num_users=4, num_malicious=5).validate()

    def test_empty_population(self):
        with pytest.raises(PopulationError):
            SimulationConfig(num_users=0).validate()

    def test_negative_observers(self):
        with pytest.raises(PopulationError):
            SimulationConfig(num_users=4, num_observers=-2).validate()

    def test_balances_length_mismatch(self):
        config = SimulationConfig(num_users=3, balances=[1, 2])
        with pytest.raises(BalancesError):
            config.validate()
        with pytest.raises(BalancesError):
            config.make_balances()

    def test_negative_balances(self):
        with pytest.raises(BalancesError):
            SimulationConfig(num_users=2, balances=[1, -1]).validate()

    def test_unknown_latency_model(self):
        with pytest.raises(LatencyModelError):
            SimulationConfig(num_users=4,
                             latency_model="quantum").validate()

    def test_bad_bandwidth_and_peers(self):
        with pytest.raises(ConfigError):
            SimulationConfig(num_users=4, bandwidth_bps=0.0).validate()
        with pytest.raises(ConfigError):
            SimulationConfig(num_users=4, peers_per_node=0).validate()
        with pytest.raises(ConfigError):
            SimulationConfig(num_users=4,
                             seen_horizon_rounds=0).validate()

    def test_simulation_init_validates(self):
        with pytest.raises(PopulationError):
            Simulation(SimulationConfig(num_users=0))

    def test_typed_errors_are_repro_and_value_errors(self):
        for cls in (ConfigError, PopulationError, BalancesError,
                    LatencyModelError, SpecError):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, ValueError)

    def test_valid_config_passes(self):
        SimulationConfig(num_users=8, num_malicious=2,
                         num_observers=1).validate()


class TestCleanupOfTestKinds:
    def test_registry_cleanup(self):
        """The test-only kinds must not leak into production listings
        used by spec_from_json error messages (sanity check only; the
        registry is process-global by design)."""
        assert "_test_crash" in SPEC_KINDS
        assert "_test_sleep" in SPEC_KINDS
        for kind in ("latency", "adversarial", "block_size", "waiting"):
            assert kind in SPEC_KINDS


class TestSweepDataShapes:
    def test_every_kind_serializes(self):
        # one cheap point per kind, end to end through the engine
        specs = [
            LatencySpec(num_users=6, seed=0, rounds=1, measure_round=1),
            AdversarialSpec(fraction=0.0, num_users=6, rounds=1, seed=3),
            BlockSizeSpec(block_size=2_000, num_users=6, seed=2),
            WaitingSpec(wait_seconds=1.0, num_users=6, rounds=1, seed=1),
        ]
        report = run_sweep(specs, jobs=1)
        assert not report.failures
        for outcome in report.outcomes:
            json.dumps(outcome.result, allow_nan=False)
        merged = report.merged()
        assert [p["spec"]["kind"] for p in merged["points"]] == [
            "latency", "adversarial", "block_size", "waiting"]


@dataclasses.dataclass(frozen=True)
class _NotASpec:
    seed: int = 0


def test_run_sweep_rejects_non_spec_dataclass():
    with pytest.raises(SpecError):
        run_sweep([_NotASpec()])
