"""Property tests: the reference machine accepts exactly the legal language.

A generator builds syntactically legal single-node traces straight from
the transition tables (rounds of round_start -> proposal ->
reduction/binary steps -> optional final -> commit, with Algorithm-8
steering votes that never enter their steps). Hypothesis then checks,
at >= 200 examples per property, that

* every generated legal trace is accepted;
* duplicating any single event is rejected (the language has no
  stutters);
* dropping any *required* event is rejected (votes and proposals are
  legally optional and excluded);
* pulling a later round's start inside an unfinished round is rejected;
* interleaving two nodes' legal traces arbitrarily is accepted (the
  machine is strictly per-node).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import ConformanceMonitor, NodeMachine

EXAMPLES = 200


def _steps_for(k: int) -> list[str]:
    return ["reduction_one", "reduction_two"] + [str(i) for i in
                                                 range(1, k + 1)]


@st.composite
def legal_round(draw, node: int, round_number: int) -> list[dict]:
    """One legal round of events for ``node`` (commit included)."""
    events: list[dict] = []

    def emit(kind: str, **fields) -> None:
        events.append({"kind": kind, "t": float(len(events)),
                       "node": node, "round": round_number, **fields})

    emit("round_start")
    if draw(st.booleans()):
        emit("block_proposed", j=1, weight=1)
    emit("proposal_resolved", empty=False, waited_s=1.0)

    binary_steps = draw(st.integers(min_value=1, max_value=4))
    want_final = draw(st.booleans())
    for step in _steps_for(binary_steps):
        emit("step_enter", step=step, deadline_s=3.0)
        if draw(st.booleans()):
            emit("vote_cast", step=step, j=1, weight=1)
        # The deciding (last) step must have reached a quorum; earlier
        # steps may legally time out.
        timed_out = (step != str(binary_steps)
                     and draw(st.booleans()))
        emit("step_exit", step=step, seconds=1.0, timed_out=timed_out)
    # Algorithm 8 steering: votes for steps never entered are legal.
    for ahead in range(draw(st.integers(min_value=0, max_value=3))):
        emit("vote_cast", step=str(binary_steps + 1 + ahead),
             j=1, weight=1)
    if want_final:
        emit("step_enter", step="final", deadline_s=3.0)
        emit("step_exit", step="final", seconds=1.0, timed_out=False)
    emit("round_commit",
         consensus="final" if want_final else "tentative",
         empty=False, block_hash="00", payload_bytes=0,
         binary_steps=binary_steps, proposal_s=1.0, ba_s=1.0,
         final_s=1.0, total_s=3.0)
    return events


@st.composite
def legal_trace(draw, node: int = 0, max_rounds: int = 3) -> list[dict]:
    rounds = draw(st.integers(min_value=1, max_value=max_rounds))
    events: list[dict] = []
    for round_number in range(1, rounds + 1):
        events.extend(draw(legal_round(node, round_number)))
    return events


def _violations(events: list[dict], node: int = 0) -> list:
    machine = NodeMachine(node)
    found = []
    for event in events:
        found.extend(machine.feed(event))
    return found


#: Kinds whose *presence* the machine requires somewhere downstream;
#: dropping any one instance must break the trace. (vote_cast and
#: block_proposed are legally optional, final step_exit only matters
#: for final consensus — excluded.)
_REQUIRED_KINDS = ("round_start", "proposal_resolved", "round_commit",
                   "step_enter", "step_exit")


def _droppable(events: list[dict]) -> list[int]:
    out = []
    last_commit_at = max(i for i, e in enumerate(events)
                         if e["kind"] == "round_commit")
    for i, event in enumerate(events):
        if event["kind"] not in _REQUIRED_KINDS:
            continue
        if event.get("step") == "final":
            continue  # tentative rounds may leave final intervals open
        if event["kind"] == "round_commit" and i == last_commit_at:
            continue  # a truncated trace is legal (prefix closure)
        out.append(i)
    return out


class TestLegalLanguage:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(legal_trace())
    def test_legal_traces_are_accepted(self, events):
        assert _violations(events) == []

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(st.data(), legal_trace())
    def test_duplicated_events_are_rejected(self, data, events):
        at = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
        mutated = events[:at + 1] + [dict(events[at])] + events[at + 1:]
        assert _violations(mutated), (
            f"duplicating event {events[at]} went unnoticed")

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(st.data(), legal_trace())
    def test_dropped_events_are_rejected(self, data, events):
        candidates = _droppable(events)
        at = data.draw(st.sampled_from(candidates))
        mutated = events[:at] + events[at + 1:]
        assert _violations(mutated), (
            f"dropping event {events[at]} went unnoticed")

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(st.data(), legal_trace(max_rounds=2))
    def test_cross_round_interleave_is_rejected(self, data, events):
        starts = [i for i, e in enumerate(events)
                  if e["kind"] == "round_start" and e["round"] >= 2]
        if not starts:
            events = events + data.draw(legal_round(0, 2))
            starts = [i for i, e in enumerate(events)
                      if e["kind"] == "round_start" and e["round"] == 2]
        # Pull a later round's start to before the prior commit: the
        # rounds now interleave, which the machine must reject.
        at = starts[0]
        prior_commit = max(i for i in range(at)
                           if events[i]["kind"] == "round_commit")
        target = data.draw(st.integers(min_value=1,
                                       max_value=prior_commit))
        moved = events[at]
        mutated = (events[:target] + [moved] + events[target:at]
                   + events[at + 1:])
        assert _violations(mutated)

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(st.data(), legal_trace(node=0), legal_trace(node=1))
    def test_interleaved_nodes_are_accepted(self, data, left, right):
        # Any shuffle-merge preserving per-node order must be accepted:
        # conformance is strictly per-node.
        merged: list[dict] = []
        i = j = 0
        while i < len(left) or j < len(right):
            take_left = i < len(left) and (j >= len(right)
                                           or data.draw(st.booleans()))
            if take_left:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        monitor = ConformanceMonitor()
        monitor.feed(merged)
        assert monitor.ok, [v.to_dict() for v in monitor.violations]
        assert len(monitor.machines) == 2
