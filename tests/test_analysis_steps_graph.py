"""Tests for the step-count analysis (§7) and gossip-graph claims (§8.4)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.graph import (
    analyze_topology,
    build_gossip_graph,
    diameter_scaling,
    expected_dissemination_hops,
)
from repro.analysis.steps import (
    COMMON_CASE_STEPS,
    expected_binary_steps_worst_case,
    expected_total_steps_worst_case,
    loop_success_probability,
    max_steps_for_failure_probability,
    probability_exceeds_max_steps,
)

import numpy as np


class TestStepAnalysis:
    def test_common_case_is_four_steps(self):
        """'BA* ... terminates precisely in 4 interactive steps'."""
        assert COMMON_CASE_STEPS == 4

    def test_worst_case_matches_paper_eleven_and_thirteen(self):
        """'expected 11 steps' (BinaryBA*) and 'expected 13 steps'
        (total) at the paper's worst-case h -> 2/3."""
        assert expected_binary_steps_worst_case() == pytest.approx(
            11.0, abs=0.01)
        assert expected_total_steps_worst_case() == pytest.approx(
            13.0, abs=0.01)

    def test_deployed_h_is_cheaper(self):
        assert (expected_total_steps_worst_case(0.80)
                < expected_total_steps_worst_case())

    def test_loop_probability(self):
        """'consensus with probability 1/2 * h > 1/3 at each loop'."""
        assert loop_success_probability(0.80) == 0.40
        assert loop_success_probability(2 / 3 + 1e-9) > 1 / 3

    def test_max_steps_150_bounds_the_attack(self):
        """MaxSteps = 150 (Figure 4) makes attack survival negligible —
        and is exactly what a 1e-11 target derives."""
        assert probability_exceeds_max_steps(150, 0.80) < 1e-11
        assert max_steps_for_failure_probability(1e-11, 0.80) == 150

    def test_tail_monotone_in_max_steps(self):
        values = [probability_exceeds_max_steps(m, 0.8)
                  for m in (30, 60, 120, 150)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            loop_success_probability(0.0)
        with pytest.raises(ValueError):
            probability_exceeds_max_steps(2)
        with pytest.raises(ValueError):
            max_steps_for_failure_probability(1.0)


class TestGossipGraph:
    def test_giant_component_contains_almost_everyone(self):
        """§8.4: 'almost all users will be part of one connected
        component'."""
        for seed in range(5):
            report = analyze_topology(300, peers_per_node=4, seed=seed)
            assert report.giant_component_fraction > 0.99
            assert report.isolated_nodes == 0

    def test_average_degree_is_twice_peer_count(self):
        """'each user connects to 4 random peers ... 8 peers on
        average' (section 9)."""
        report = analyze_topology(400, peers_per_node=4, seed=1)
        assert 7.0 < report.average_degree < 8.5

    def test_diameter_grows_logarithmically(self):
        """§8.4: dissemination grows with the diameter, 'logarithmic in
        the number of users' [45]: a 64x size increase adds only a few
        hops."""
        reports = diameter_scaling([50, 400, 3200], seed=3)
        diameters = [report.diameter for report in reports]
        assert diameters == sorted(diameters)
        assert diameters[-1] <= diameters[0] + 4
        assert diameters[-1] <= 2 * math.log(3200, 8) + 4

    def test_dissemination_hops_small(self):
        hops = expected_dissemination_hops(500, seed=4)
        assert 1.5 < hops < 5.0

    def test_graph_matches_simulator_topology_rule(self):
        """The analysis graph and the live GossipNetwork use the same
        construction, so their degree distributions agree."""
        from repro.network.gossip import GossipNetwork
        from repro.network.latency import UniformLatencyModel
        from repro.sim.loop import Environment

        rng = np.random.default_rng(9)
        graph = build_gossip_graph(60, 4, rng)
        net = GossipNetwork(Environment(), 60,
                            np.random.default_rng(9),
                            UniformLatencyModel(0.01), peers_per_node=4)
        graph_degrees = sorted(d for _, d in graph.degree())
        net_degrees = sorted(len(iface.neighbors)
                             for iface in net.interfaces)
        assert graph_degrees == net_degrees

    def test_too_small_graph_rejected(self):
        with pytest.raises(ValueError):
            build_gossip_graph(1, 4, np.random.default_rng(0))
