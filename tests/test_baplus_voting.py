"""Tests for BA* voting primitives: votes, counting, the common coin."""

from __future__ import annotations

import pytest

from repro.baplus.buffer import VoteBuffer
from repro.baplus.context import BAContext
from repro.baplus.messages import VoteMessage, make_vote
from repro.baplus.voting import (
    BAParticipant,
    TIMEOUT,
    committee_vote,
    common_coin,
    count_votes,
    process_msg,
)
from repro.common.params import TEST_PARAMS
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.sim.loop import Environment


class Cluster:
    """N participants with instant, direct vote delivery (no gossip)."""

    def __init__(self, n=20, weight=10, params=TEST_PARAMS):
        self.env = Environment()
        self.backend = FastBackend()
        self.params = params
        self.keypairs = [self.backend.keypair(H(b"clu", bytes([i])))
                         for i in range(n)]
        weights = {kp.public: weight for kp in self.keypairs}
        self.ctx = BAContext.from_weights(H(b"seed"), weights, H(b"tip"))
        self.participants = []
        for kp in self.keypairs:
            buffer = VoteBuffer(self.env)
            participant = BAParticipant(
                env=self.env, params=params, backend=self.backend,
                buffer=buffer, keypair=kp,
                gossip_vote=self._make_gossip(),
            )
            self.participants.append(participant)
        for participant in self.participants:
            participant.gossip_vote = self._broadcast

    def _make_gossip(self):
        return lambda vote: None  # replaced after construction

    def _broadcast(self, vote: VoteMessage) -> None:
        for participant in self.participants:
            participant.buffer.add(vote)


@pytest.fixture
def cluster():
    return Cluster()


class TestCommitteeVote:
    def test_only_selected_members_send(self, cluster):
        sent = []
        cluster.participants[0].gossip_vote = sent.append
        sum_j = 0
        for participant in cluster.participants:
            participant.gossip_vote = sent.append
            proof = committee_vote(participant, cluster.ctx, 1, "1",
                                   cluster.params.tau_step, H(b"val"))
            sum_j += proof.j
        senders = {v.voter for v in sent}
        assert len(senders) == sum(
            1 for p in cluster.participants
            if committee_vote(p, cluster.ctx, 1, "1",
                              cluster.params.tau_step, H(b"val")).j > 0)
        assert sum_j > 0

    def test_vote_carries_chain_binding(self, cluster):
        sent = []
        for participant in cluster.participants:
            participant.gossip_vote = sent.append
            committee_vote(participant, cluster.ctx, 1, "1",
                           cluster.params.tau_step, H(b"val"))
        assert sent  # tau_step = 80 over 20 users: someone is selected
        assert all(v.prev_hash == H(b"tip") for v in sent)


class TestProcessMsg:
    def _one_vote(self, cluster):
        votes = []
        for participant in cluster.participants:
            participant.gossip_vote = votes.append
            committee_vote(participant, cluster.ctx, 1, "1",
                           cluster.params.tau_step, H(b"val"))
            if votes:
                return votes[0]
        pytest.fail("no committee member selected")

    def test_valid_vote_counts(self, cluster):
        vote = self._one_vote(cluster)
        votes, value, sorthash = process_msg(
            cluster.backend, cluster.ctx, cluster.params.tau_step, vote)
        assert votes > 0
        assert value == H(b"val")
        assert sorthash == vote.sorthash

    def test_bad_signature_rejected(self, cluster):
        vote = self._one_vote(cluster)
        forged = VoteMessage(
            voter=vote.voter, round_number=vote.round_number,
            step=vote.step, sorthash=vote.sorthash,
            sortproof=vote.sortproof, prev_hash=vote.prev_hash,
            value=H(b"other"), signature=vote.signature)
        assert process_msg(cluster.backend, cluster.ctx,
                           cluster.params.tau_step, forged)[0] == 0

    def test_wrong_chain_rejected(self, cluster):
        vote = self._one_vote(cluster)
        other_ctx = BAContext.from_weights(
            cluster.ctx.seed, dict(cluster.ctx.weights), H(b"other-tip"))
        assert process_msg(cluster.backend, other_ctx,
                           cluster.params.tau_step, vote)[0] == 0

    def test_non_member_rejected(self, cluster):
        """A vote whose sortition proof fails (zero weight) is worthless."""
        vote = self._one_vote(cluster)
        outsider_weights = dict(cluster.ctx.weights)
        outsider_weights[vote.voter] = 0
        ctx = BAContext(seed=cluster.ctx.seed, weights=outsider_weights,
                        total_weight=cluster.ctx.total_weight,
                        last_block_hash=cluster.ctx.last_block_hash)
        assert process_msg(cluster.backend, ctx,
                           cluster.params.tau_step, vote)[0] == 0


class TestCountVotes:
    def _run(self, cluster, generator):
        holder = {}

        def wrapper():
            holder["result"] = yield from generator
        cluster.env.process(wrapper())
        cluster.env.run()
        return holder["result"]

    def test_unanimous_vote_crosses_threshold(self, cluster):
        for participant in cluster.participants:
            committee_vote(participant, cluster.ctx, 1, "1",
                           cluster.params.tau_step, H(b"val"))
        result = self._run(cluster, count_votes(
            cluster.participants[0], cluster.ctx, 1, "1",
            cluster.params.t_step, cluster.params.tau_step, 5.0))
        assert result == H(b"val")

    def test_no_votes_times_out(self, cluster):
        result = self._run(cluster, count_votes(
            cluster.participants[0], cluster.ctx, 1, "1",
            cluster.params.t_step, cluster.params.tau_step, 2.0))
        assert result is TIMEOUT
        assert cluster.env.now == pytest.approx(2.0)

    def test_split_vote_times_out(self, cluster):
        for i, participant in enumerate(cluster.participants):
            value = H(b"a") if i % 2 == 0 else H(b"b")
            committee_vote(participant, cluster.ctx, 1, "1",
                           cluster.params.tau_step, value)
        result = self._run(cluster, count_votes(
            cluster.participants[0], cluster.ctx, 1, "1",
            cluster.params.t_step, cluster.params.tau_step, 2.0))
        assert result is TIMEOUT

    def test_duplicate_voter_counted_once(self, cluster):
        """An equivocating committee member cannot double its weight:
        only its first message per step is counted."""
        target = cluster.participants[0]
        sender = None
        for participant in cluster.participants[1:]:
            sent = []
            participant.gossip_vote = sent.append
            proof = committee_vote(participant, cluster.ctx, 1, "1",
                                   cluster.params.tau_step, H(b"a"))
            if proof.j > 0:
                sender = participant
                first = sent[0]
                break
        assert sender is not None
        # Deliver the same voter twice with different values.
        second = make_vote(cluster.backend, sender.keypair.secret,
                           sender.keypair.public, 1, "1", first.sorthash,
                           first.sortproof, cluster.ctx.last_block_hash,
                           H(b"b"))
        target.buffer.add(first)
        target.buffer.add(second)
        # Count with an absurdly low threshold measured against the first
        # voter's weight alone: value 'b' must never be returned.
        result = self._run(cluster, count_votes(
            target, cluster.ctx, 1, "1", 0.0001, cluster.params.tau_step,
            1.0))
        assert result == H(b"a")

    def test_late_votes_picked_up_while_waiting(self, cluster):
        target = cluster.participants[0]

        def vote_later():
            yield cluster.env.timeout(1.0)
            for participant in cluster.participants:
                committee_vote(participant, cluster.ctx, 1, "1",
                               cluster.params.tau_step, H(b"late"))

        cluster.env.process(vote_later())
        result = self._run(cluster, count_votes(
            target, cluster.ctx, 1, "1", cluster.params.t_step,
            cluster.params.tau_step, 5.0))
        assert result == H(b"late")
        assert 1.0 <= cluster.env.now < 1.5


class TestCommonCoin:
    def test_coin_is_common_across_observers(self, cluster):
        for participant in cluster.participants:
            committee_vote(participant, cluster.ctx, 1, "9",
                           cluster.params.tau_step, H(b"x"))
        coins = {
            common_coin(participant, cluster.ctx, 1, "9",
                        cluster.params.tau_step)
            for participant in cluster.participants
        }
        assert len(coins) == 1
        assert coins.pop() in (0, 1)

    def test_coin_varies_across_steps(self, cluster):
        values = []
        for step in range(3, 30, 3):
            for participant in cluster.participants:
                committee_vote(participant, cluster.ctx, 1, str(step),
                               cluster.params.tau_step, H(b"x"))
            values.append(common_coin(cluster.participants[0], cluster.ctx,
                                      1, str(step),
                                      cluster.params.tau_step))
        assert set(values) == {0, 1}

    def test_no_votes_gives_deterministic_coin(self, cluster):
        # With no messages the coin defaults to (2^hashlen) mod 2 == 0.
        assert common_coin(cluster.participants[0], cluster.ctx, 1, "99",
                           cluster.params.tau_step) == 0
