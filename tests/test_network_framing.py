"""Stream framing tests: frames, envelopes, real sockets, chunk fuzzing.

The live substrate moves :mod:`repro.network.wire` messages over stream
sockets, which give back bytes in arbitrary chunks — a frame may arrive
split across many reads or coalesced with its neighbours. These tests
pin the two guarantees the transport relies on:

* ``FrameDecoder`` recovers exactly the encoded frame sequence under
  any byte chunking (Hypothesis drives the chunk boundaries), and
* every wire message kind survives a real socketpair round trip through
  ``encode_envelope``/``decode_envelope`` inside frames.
"""

from __future__ import annotations

import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baplus.certificate import Certificate
from repro.baplus.messages import make_vote
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.block import empty_block
from repro.ledger.transaction import make_transaction
from repro.network.message import (
    PRIORITY_MESSAGE_BYTES,
    VOTE_MESSAGE_BYTES,
    Envelope,
)
from repro.network.wire import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameSizeError,
    WireError,
    decode_envelope,
    encode_envelope,
    encode_frame,
)
from repro.node.proposal import PriorityMessage


@pytest.fixture
def backend():
    return FastBackend()


def _sample_envelopes(backend) -> list[Envelope]:
    """One envelope of every wire kind (tx, vote, priority, block, cert)."""
    alice = backend.keypair(H(b"f-alice"))
    bob = backend.keypair(H(b"f-bob"))
    tx = make_transaction(backend, alice.secret, alice.public,
                          bob.public, 5, 0, note=b"framed")
    vote = make_vote(backend, alice.secret, alice.public, 3, "1",
                     H(b"sort"), b"proof" * 10, H(b"prev"), H(b"value"))
    priority = PriorityMessage(
        proposer=alice.public, round_number=3, vrf_hash=H(b"vrf"),
        vrf_proof=b"proof" * 10, sub_users=2, priority=H(b"prio"))
    block = empty_block(4, H(b"prev"))
    cert = Certificate(round_number=3, step="1", value=H(b"value"),
                       votes=(vote,))
    return [
        Envelope(origin=alice.public, kind="tx", payload=tx, size=250,
                 msg_id=(7 << 40) | 1),
        Envelope(origin=alice.public, kind="vote", payload=vote,
                 size=VOTE_MESSAGE_BYTES, msg_id=(7 << 40) | 2),
        Envelope(origin=alice.public, kind="priority", payload=priority,
                 size=PRIORITY_MESSAGE_BYTES, msg_id=(7 << 40) | 3),
        Envelope(origin=alice.public, kind="block", payload=block,
                 size=1000, msg_id=(7 << 40) | 4),
        Envelope(origin=alice.public, kind="cert", payload=cert,
                 size=cert.size, msg_id=(7 << 40) | 5),
    ]


class TestFrameCodec:
    def test_round_trip(self):
        frame = encode_frame(b"hello")
        decoder = FrameDecoder()
        assert decoder.feed(frame) == [b"hello"]

    def test_header_is_big_endian_length(self):
        frame = encode_frame(b"abc")
        assert FRAME_HEADER.unpack_from(frame)[0] == 3
        assert frame[FRAME_HEADER.size:] == b"abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(WireError):
            encode_frame(b"")

    def test_oversized_payload_rejected(self):
        with pytest.raises(WireError):
            encode_frame(b"x" * 10, max_bytes=9)

    def test_decoder_rejects_oversized_header(self):
        decoder = FrameDecoder(max_bytes=16)
        with pytest.raises(WireError):
            decoder.feed(FRAME_HEADER.pack(17) + b"x" * 17)

    def test_decoder_rejects_zero_length_frame(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(FRAME_HEADER.pack(0))

    def test_default_cap_sized_for_full_blocks(self):
        assert MAX_FRAME_BYTES >= 1_000_000

    def test_partial_then_rest(self):
        frame = encode_frame(b"split-me")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []
        assert decoder.buffered == 3
        assert decoder.feed(frame[3:]) == [b"split-me"]
        assert decoder.buffered == 0

    def test_coalesced_frames(self):
        blob = encode_frame(b"one") + encode_frame(b"two") \
            + encode_frame(b"three")
        decoder = FrameDecoder()
        assert decoder.feed(blob) == [b"one", b"two", b"three"]
        assert decoder.frames_decoded == 3

    @settings(max_examples=200, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=300),
                             min_size=1, max_size=10),
           chunk_seed=st.integers(min_value=1, max_value=2**30))
    def test_any_chunking_is_identity(self, payloads, chunk_seed):
        """decode(chunks(encode(frames))) == frames for any chunking."""
        blob = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        position, state = 0, chunk_seed
        while position < len(blob):
            # Cheap deterministic LCG: chunk sizes 1..7 drawn from the
            # Hypothesis-chosen seed, so shrinking stays meaningful.
            state = (state * 1103515245 + 12345) % (2**31)
            step = 1 + state % 7
            out.extend(decoder.feed(blob[position:position + step]))
            position += step
        assert out == payloads
        assert decoder.buffered == 0
        assert decoder.bytes_fed == len(blob)


class TestFrameRobustnessFuzz:
    """Adversarial streams: truncated, oversized, and byte-flipped.

    The live transport drops a connection on :class:`FrameSizeError`;
    these properties pin that a hostile or corrupted stream either
    produces that loud typed error or degrades to frames whose byte
    accounting still adds up — never a silent desync or an unbounded
    buffer.
    """

    @settings(max_examples=100, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=64),
                             min_size=1, max_size=5),
           cut=st.integers(min_value=0, max_value=2**30))
    def test_truncation_yields_only_complete_frames(self, payloads, cut):
        """A stream cut anywhere yields a prefix; the rest completes it."""
        stream = b"".join(encode_frame(p) for p in payloads)
        cut = cut % len(stream)
        decoder = FrameDecoder()
        head = decoder.feed(stream[:cut])
        assert head == payloads[:len(head)]
        assert decoder.buffered <= FRAME_HEADER.size + 64
        assert head + decoder.feed(stream[cut:]) == payloads
        assert decoder.buffered == 0

    @settings(max_examples=100, deadline=None)
    @given(length=st.integers(min_value=MAX_FRAME_BYTES + 1,
                              max_value=2**32 - 1))
    def test_oversized_prefix_raises_typed_error(self, length):
        """Any over-cap length prefix fails fast with FrameSizeError."""
        decoder = FrameDecoder()
        with pytest.raises(FrameSizeError):
            decoder.feed(FRAME_HEADER.pack(length))
        assert decoder.frames_decoded == 0

    @settings(max_examples=200, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=64),
                             min_size=1, max_size=4),
           flip=st.integers(min_value=0, max_value=2**30),
           bit=st.integers(min_value=0, max_value=7))
    def test_byte_flip_is_loud_or_conservative(self, payloads, flip, bit):
        """One flipped bit anywhere: loud typed error, or sound framing.

        Flipping a length-prefix bit may forge a zero/huge length
        (FrameSizeError) or silently re-carve the stream into different
        frames; in the silent case every returned frame must still have
        been cut whole from the stream and the residue bounded by one
        incomplete frame.
        """
        stream = bytearray(b"".join(encode_frame(p) for p in payloads))
        stream[flip % len(stream)] ^= 1 << bit
        decoder = FrameDecoder(max_bytes=4096)
        try:
            frames = decoder.feed(bytes(stream))
        except FrameSizeError:
            return
        consumed = sum(FRAME_HEADER.size + len(f) for f in frames)
        assert consumed + decoder.buffered == len(stream)
        assert decoder.buffered <= FRAME_HEADER.size + decoder.max_bytes


class TestEnvelopeCodec:
    def test_every_kind_round_trips(self, backend):
        for envelope in _sample_envelopes(backend):
            decoded = decode_envelope(encode_envelope(envelope))
            assert decoded.kind == envelope.kind
            assert decoded.origin == envelope.origin
            assert decoded.size == envelope.size
            assert decoded.msg_id == envelope.msg_id
            # Payload identity via the canonical re-encode.
            assert encode_envelope(decoded) == encode_envelope(envelope)

    def test_unknown_kind_rejected(self, backend):
        envelope = _sample_envelopes(backend)[0]
        import dataclasses
        with pytest.raises(WireError):
            encode_envelope(dataclasses.replace(envelope, kind="gossip?"))

    def test_garbage_rejected(self):
        with pytest.raises(WireError):
            decode_envelope(b"not an envelope")


class TestSocketRoundTrip:
    def test_every_kind_through_a_real_socket(self, backend):
        """All five kinds over one socketpair, read in tiny chunks."""
        envelopes = _sample_envelopes(backend)
        left, right = socket.socketpair()
        try:
            for envelope in envelopes:
                left.sendall(encode_frame(encode_envelope(envelope)))
            left.shutdown(socket.SHUT_WR)
            decoder = FrameDecoder()
            received = []
            while True:
                data = right.recv(13)  # deliberately tiny, odd reads
                if not data:
                    break
                received.extend(decode_envelope(payload)
                                for payload in decoder.feed(data))
        finally:
            left.close()
            right.close()
        assert [e.kind for e in received] == [e.kind for e in envelopes]
        assert [e.msg_id for e in received] == [e.msg_id for e in envelopes]
        assert [encode_envelope(e) for e in received] \
            == [encode_envelope(e) for e in envelopes]
