"""Array-backed ledger state vs. the dict-backed reference.

``ArrayState`` must be observationally identical to ``AccountState``
for every caller — same accept/reject decisions, same balances, same
``weights()`` mapping contents — while adding the pool-facing array
view and shared immutable snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baplus.context import BAContext
from repro.common.encoding import encode
from repro.common.errors import LedgerError
from repro.crypto.hashing import H
from repro.ledger.account import AccountState
from repro.ledger.arraystate import AccountIndex, ArrayState, ArrayWeights
from repro.ledger.blockchain import Blockchain
from repro.ledger.transaction import make_transaction


@pytest.fixture
def users(fast_backend):
    keypairs = [fast_backend.keypair(H(b"arr-key", encode(i)))
                for i in range(6)]
    balances = {kp.public: 10 for kp in keypairs}
    return keypairs, balances


def make_tx(backend, sender, recipient, amount, nonce):
    return make_transaction(backend, sender.secret, sender.public,
                            recipient.public, amount, nonce)


class TestAccountIndex:
    def test_slots_are_stable_and_append_only(self):
        index = AccountIndex([b"a", b"b"])
        assert index.slot_of(b"a") == 0
        assert index.slot_of(b"c") == 2
        assert index.slot_of(b"a") == 0  # unchanged by later growth
        assert index.get(b"missing") is None
        assert len(index) == 3
        assert index.key_of(1) == b"b"


class TestEquivalence:
    def test_random_transaction_streams(self, fast_backend, users):
        keypairs, balances = users
        rng = np.random.default_rng(0)
        reference = AccountState(balances)
        array = ArrayState(balances)
        nonces = {kp.public: 0 for kp in keypairs}
        for _ in range(60):
            s, r = rng.choice(len(keypairs), size=2, replace=False)
            sender, recipient = keypairs[s], keypairs[r]
            amount = int(rng.integers(1, 7))
            tx = make_tx(fast_backend, sender, recipient, amount,
                         nonces[sender.public])
            ref_err = arr_err = None
            try:
                reference.apply(tx)
            except LedgerError as exc:
                ref_err = str(exc)
            try:
                array.apply(tx)
            except LedgerError as exc:
                arr_err = str(exc)
            assert (ref_err is None) == (arr_err is None)
            if ref_err is None:
                nonces[sender.public] += 1
        assert dict(array.weights()) == dict(reference.weights())
        # Iteration *content* is the contract, not order: after an
        # account drains and refills, the dict view re-inserts it at
        # the end while the array view keeps its stable slot. No
        # weights consumer iterates order-sensitively (lookups and
        # sums only), so the views are free to differ here.
        assert (sorted(array.weights())
                == sorted(reference.weights()))
        assert array.total_weight == reference.total_weight
        for kp in keypairs:
            assert array.balance(kp.public) == reference.balance(kp.public)
            assert (array.next_nonce(kp.public)
                    == reference.next_nonce(kp.public))

    def test_drained_accounts_leave_the_mapping(self, fast_backend, users):
        keypairs, _ = users
        a, b = keypairs[0], keypairs[1]
        balances = {a.public: 3, b.public: 10}
        reference = AccountState(balances)
        array = ArrayState(balances)
        tx = make_tx(fast_backend, a, b, 3, 0)
        reference.apply(tx)
        array.apply(tx)
        assert a.public not in array.weights()
        assert dict(array.weights()) == dict(reference.weights())
        assert len(array.weights()) == len(reference.weights()) == 1

    def test_copies_are_independent(self, fast_backend, users):
        keypairs, balances = users
        array = ArrayState(balances)
        clone = array.copy()
        tx = make_tx(fast_backend, keypairs[0], keypairs[1], 4, 0)
        clone.apply(tx)
        assert array.balance(keypairs[0].public) == 10
        assert clone.balance(keypairs[0].public) == 6
        # both resolve through the same shared index
        assert clone.weights().index is array.weights().index


class TestSnapshots:
    def test_weights_cached_until_mutation(self, fast_backend, users):
        keypairs, balances = users
        for state in (AccountState(balances), ArrayState(balances)):
            first = state.weights()
            assert state.weights() is first  # shared, not rebuilt
            tx = make_tx(fast_backend, keypairs[0], keypairs[1], 1, 0)
            state.apply(tx)
            second = state.weights()
            assert second is not first
            assert first[keypairs[0].public] == 10  # old snapshot intact
            assert second[keypairs[0].public] == 9

    def test_snapshots_are_immutable(self, users):
        _, balances = users
        for state in (AccountState(balances), ArrayState(balances)):
            snapshot = state.weights()
            with pytest.raises((TypeError, KeyError)):
                snapshot[b"nope"] = 1  # type: ignore[index]
        frozen = ArrayState(balances).weights().array
        with pytest.raises(ValueError):
            frozen[0] = 99

    def test_chain_weight_history_shares_snapshots(self, users):
        _, balances = users
        chain = Blockchain(balances, H(b"genesis"), 1000)
        assert chain.weights_at(0) is chain.weights_at(0)
        assert dict(chain.weights_at(0)) == balances

    def test_bacontext_adopts_frozen_mappings_without_copy(self, users):
        _, balances = users
        for state in (AccountState(balances), ArrayState(balances)):
            weights = state.weights()
            ctx = BAContext.from_weights(H(b"seed"), weights, b"prev")
            assert ctx.weights is weights
            assert ctx.total_weight == sum(balances.values())


class TestArrayWeights:
    def test_mapping_protocol(self):
        index = AccountIndex([b"a", b"b", b"c"])
        weights = ArrayWeights(index,
                               np.array([5, 0, 7], dtype=np.int64))
        assert weights[b"a"] == 5
        assert weights.get(b"b") == 0 and b"b" not in weights
        assert weights.get(b"zzz", -1) == -1
        with pytest.raises(KeyError):
            weights[b"b"]
        assert list(weights) == [b"a", b"c"]
        assert len(weights) == 2
        assert weights.total == 12
        assert weights.frozen


class TestReplica:
    def test_replica_is_cheap_and_independent(self, users):
        _, balances = users
        chain = Blockchain(balances, H(b"genesis"), 1000,
                           state_factory=ArrayState)
        replica = chain.replica()
        assert replica.height == chain.height
        assert replica.tip_hash == chain.tip_hash
        assert replica.selection_seed(1) == chain.selection_seed(1)
        # same shared immutable history, separate mutable state
        assert replica.weights_at(0) is chain.weights_at(0)
        assert replica.state is not chain.state
        assert (replica.state.weights().index
                is chain.state.weights().index)
