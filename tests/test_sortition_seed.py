"""Tests for the seed schedule (sections 5.2 and 5.3) and roles."""

from __future__ import annotations

import pytest

from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.sortition.roles import (
    committee_role,
    fork_proposer_role,
    proposer_role,
)
from repro.sortition.seed import (
    SeedChain,
    fallback_seed,
    propose_seed,
    selection_round,
    verify_seed,
)


class TestRoles:
    def test_roles_distinct(self):
        roles = {
            proposer_role(1),
            proposer_role(2),
            committee_role(1, 1),
            committee_role(1, 2),
            committee_role(2, 1),
            committee_role(1, "final"),
            fork_proposer_role(1, 0),
            fork_proposer_role(1, 1),
        }
        assert len(roles) == 8

    def test_committee_role_step_types(self):
        # int and str step spellings of the same step must coincide,
        # because BinaryBA* steps are stringified step numbers.
        assert committee_role(3, 7) == committee_role(3, "7")

    def test_roles_deterministic(self):
        assert proposer_role(5) == proposer_role(5)


class TestSeedProposal:
    def setup_method(self):
        self.backend = FastBackend()
        self.kp = self.backend.keypair(H(b"proposer"))

    def test_propose_verify_roundtrip(self):
        seed, proof = propose_seed(self.backend, self.kp.secret,
                                   b"prev-seed", 7)
        assert verify_seed(self.backend, self.kp.public, seed, proof,
                           b"prev-seed", 7)

    def test_verify_rejects_wrong_round(self):
        seed, proof = propose_seed(self.backend, self.kp.secret,
                                   b"prev-seed", 7)
        assert not verify_seed(self.backend, self.kp.public, seed, proof,
                               b"prev-seed", 8)

    def test_verify_rejects_wrong_prev_seed(self):
        seed, proof = propose_seed(self.backend, self.kp.secret,
                                   b"prev-seed", 7)
        assert not verify_seed(self.backend, self.kp.public, seed, proof,
                               b"other-seed", 7)

    def test_verify_rejects_substituted_seed(self):
        _, proof = propose_seed(self.backend, self.kp.secret,
                                b"prev-seed", 7)
        assert not verify_seed(self.backend, self.kp.public,
                               H(b"attacker-seed"), proof, b"prev-seed", 7)

    def test_seed_not_proposer_controllable(self):
        """The proposer cannot pick the seed: it is a VRF output fixed by
        (sk, prev seed, round)."""
        seed1, _ = propose_seed(self.backend, self.kp.secret, b"prev", 7)
        seed2, _ = propose_seed(self.backend, self.kp.secret, b"prev", 7)
        assert seed1 == seed2

    def test_fallback_seed_deterministic(self):
        assert fallback_seed(b"prev", 7) == fallback_seed(b"prev", 7)
        assert fallback_seed(b"prev", 7) != fallback_seed(b"prev", 8)


class TestSelectionRound:
    def test_paper_rule(self):
        # r - 1 - (r mod R)
        assert selection_round(10, 1000) == 0  # clamped
        assert selection_round(1500, 1000) == 999
        assert selection_round(2500, 1000) == 1999

    def test_refresh_interval_one(self):
        # R = 1: always the previous round's seed.
        assert selection_round(5, 1) == 4

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            selection_round(5, 0)


class TestSeedChain:
    def test_genesis(self):
        chain = SeedChain(b"genesis", 10)
        assert chain.seed_of_round(0) == b"genesis"
        assert len(chain) == 1

    def test_append_and_select(self):
        chain = SeedChain(b"genesis", 1)
        for r in range(1, 6):
            chain.append(H(b"seed", bytes([r])))
        # R=1: selection seed for round r is seed of round r-1.
        assert chain.selection_seed(3) == chain.seed_of_round(2)

    def test_selection_uses_refresh_interval(self):
        chain = SeedChain(b"genesis", 4)
        for r in range(1, 12):
            chain.append(H(bytes([r])))
        # round 10: 10 - 1 - (10 % 4) = 7
        assert chain.selection_seed(10) == chain.seed_of_round(7)

    def test_truncate_for_fork_switch(self):
        chain = SeedChain(b"genesis", 1)
        for r in range(1, 6):
            chain.append(H(bytes([r])))
        chain.truncate(3)
        assert len(chain) == 3
        with pytest.raises(ValueError):
            chain.truncate(0)

    def test_empty_genesis_rejected(self):
        with pytest.raises(ValueError):
            SeedChain(b"", 10)
