"""The section 7.4 weak-synchrony scenario, reproduced step by step.

The paper's safety argument allows an adversary with full network
control to drive *different honest users to different tentative values*
— what it must never allow is two conflicting FINAL designations. This
test constructs exactly the paper's example:

* all step-1 votes are delivered to user 0 only — user 0 crosses the
  quorum and returns consensus on ``block_hash`` (voting ``final``);
* everyone else times out and keeps going with throttled deliveries
  (votes from a 3-user subset only — never a quorum), so their
  deterministic timeout votes and periodic common coins eventually land
  them on ``empty_hash``;
* the two groups have formally diverged — but the ``final`` committee
  never reaches a quorum, so neither value can be certified final, and
  the divergence is recoverable (section 8.2).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baplus.certificate import build_certificate
from repro.baplus.context import BAContext
from repro.baplus.protocol import binary_ba_star
from repro.baplus.voting import BAParticipant
from repro.baplus.buffer import VoteBuffer
from repro.common.errors import ConsensusHalted
from repro.common.params import TEST_PARAMS
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.block import empty_block_hash
from repro.sim.loop import Environment
from repro.sortition.roles import FINAL_STEP

NUM_USERS = 20
PARAMS = dataclasses.replace(TEST_PARAMS, lambda_step=1.0, max_steps=40)


class AdversarialCluster:
    """Broadcast medium fully scheduled by the adversary."""

    def __init__(self, seed: bytes):
        self.env = Environment()
        self.backend = FastBackend()
        self.keypairs = [self.backend.keypair(H(b"ws", bytes([i])))
                         for i in range(NUM_USERS)]
        weights = {kp.public: 10 for kp in self.keypairs}
        self.ctx = BAContext.from_weights(H(seed), weights, H(b"tip"))
        self.participants = []
        for kp in self.keypairs:
            participant = BAParticipant(
                env=self.env, params=PARAMS, backend=self.backend,
                buffer=VoteBuffer(self.env), keypair=kp,
                gossip_vote=None)  # patched below
            self.participants.append(participant)
        self.index_of = {p.keypair.public: i
                         for i, p in enumerate(self.participants)}
        for participant in self.participants:
            participant.gossip_vote = self._adversarial_delivery

    def _adversarial_delivery(self, vote):
        sender = self.index_of[vote.voter]
        step = vote.step
        if step == "1":
            # Step 1: the full quorum is shown to user 0 alone.
            self.participants[0].buffer.add(vote)
            return
        if step == FINAL_STEP:
            # Final votes delivered to everyone (there will be too few).
            for participant in self.participants:
                participant.buffer.add(vote)
            return
        # All later steps: only a 3-user subset's votes circulate —
        # enough to seed the common coin, never enough for a quorum.
        if sender < 3:
            for participant in self.participants:
                participant.buffer.add(vote)


@pytest.fixture(scope="module")
def diverged():
    cluster = AdversarialCluster(seed=b"weak-sync-3")
    block_hash = H(b"the-block")
    results = {}

    def runner(index, participant):
        try:
            result = yield from binary_ba_star(participant, cluster.ctx,
                                               1, block_hash)
            results[index] = result
        except ConsensusHalted:
            results[index] = None

    for index, participant in enumerate(cluster.participants):
        cluster.env.process(runner(index, participant))
    cluster.env.run()
    return cluster, block_hash, results


class TestWeakSynchronyDivergence:
    def test_user_zero_decides_block_in_step_one(self, diverged):
        _, block_hash, results = diverged
        assert results[0] is not None
        assert results[0].value == block_hash
        assert results[0].deciding_step == 1
        assert results[0].voted_final

    def test_other_users_land_elsewhere(self, diverged):
        """The adversary successfully splits tentative outcomes: some
        user reaches a different value than user 0 (or halts)."""
        cluster, block_hash, results = diverged
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)
        other_outcomes = {
            (result.value if result is not None else None)
            for index, result in results.items() if index != 0
        }
        assert other_outcomes - {block_hash}, (
            "adversary failed to split the cluster at this seed")
        assert other_outcomes <= {block_hash, empty, None}

    def test_no_final_certificate_for_either_value(self, diverged):
        """The safety theorem's operative clause: despite divergence, no
        value can gather a final-step quorum, so no conflicting FINAL
        designations exist."""
        cluster, block_hash, results = diverged
        empty = empty_block_hash(1, cluster.ctx.last_block_hash)
        for value in (block_hash, empty):
            for participant in cluster.participants[:3]:
                certificate = build_certificate(
                    participant.buffer, cluster.ctx, cluster.backend,
                    PARAMS, 1, FINAL_STEP, value)
                assert certificate is None

    def test_only_step_one_quorum_was_at_user_zero(self, diverged):
        """Cross-check the construction: only user 0 ever saw the full
        step-1 vote set."""
        cluster, _, _ = diverged
        step1_counts = [len(p.buffer.messages(1, "1"))
                        for p in cluster.participants]
        assert step1_counts[0] > 0
        assert all(count == 0 for count in step1_counts[1:])
