"""Ingress robustness under live Byzantine attack (seeded, deterministic).

A 20%-Byzantine deployment — flooders, undecidable-message spammers, or
the paper's section 10.4 equivocate-and-double-vote adversary — must not
stop the honest majority: blocks keep committing, every honest buffer
stays inside its budget, and the admission layer's quarantine machinery
identifies exactly the attackers, never an honest peer.
"""

from __future__ import annotations

from repro.adversary import FloodingNode, MaliciousNode, SpamVoteNode
from repro.experiments.harness import Simulation, SimulationConfig
from repro.runtime.admission import AdmissionConfig

ROUNDS = 2


def _run_attack(malicious_class, *, num_users=10, num_malicious=2, seed=61,
                admission=None):
    """Run a Byzantine sim until every honest node commits ROUNDS."""
    sim = Simulation(
        SimulationConfig(num_users=num_users, seed=seed,
                         num_malicious=num_malicious, admission=admission),
        malicious_class=malicious_class)
    processes = [node.start(ROUNDS) for node in sim.nodes]
    honest = processes[:num_users - num_malicious]
    sim.env.run(until=900.0, stop_when=lambda: all(p.done for p in honest))
    assert all(p.done for p in honest), "honest nodes failed to commit"
    return sim


def _assert_honest_progress(sim):
    honest = sim.nodes[:sim.config.num_users - sim.config.num_malicious]
    for node in honest:
        assert node.chain.height >= ROUNDS
    for round_number in range(1, ROUNDS + 1):
        assert len(sim.agreed_hashes(round_number)) == 1
    budget = sim.nodes[0].buffer.budget_messages
    for node in honest:
        assert node.buffer.high_water <= budget
    for node in honest:
        lane_budget = sim.network.interfaces[node.index].lane_budget
        assert (sim.network.interfaces[node.index].egress_high_water
                <= lane_budget)


def _assert_only_attackers_blamed(sim):
    num_honest = sim.config.num_users - sim.config.num_malicious
    attackers = set(range(num_honest, sim.config.num_users))
    served = set(sim.quarantine_directory._served)
    assert served, "no attacker was ever network-quarantined"
    assert served <= attackers, f"honest nodes quarantined: {served}"
    for node in sim.nodes[:num_honest]:
        locally_blocked = set(node.admission.health.quarantined_until)
        assert locally_blocked <= attackers, (
            f"node {node.index} blocked honest peers: "
            f"{locally_blocked - attackers}")


class TestFloodingQuarantine:
    def test_flooders_quarantined_network_commits(self):
        """Invalid-signature flooders (20% of peers) are cut off and the
        honest majority keeps committing."""
        sim = _run_attack(FloodingNode)
        _assert_honest_progress(sim)
        _assert_only_attackers_blamed(sim)
        # Both flooders were caught, not just one.
        assert set(sim.quarantine_directory._served) == {8, 9}
        # Their junk was rejected pre-relay: honest nodes never forwarded
        # a single invalid-signature vote.
        total_rejections = sum(
            node.admission.rejected.get("invalid_signature", 0)
            for node in sim.nodes[:8])
        assert total_rejections > 0

    def test_flood_run_is_deterministic(self):
        def fingerprint():
            sim = _run_attack(FloodingNode)
            return ([node.chain.tip_hash for node in sim.nodes[:8]],
                    sorted(sim.quarantine_directory._served.items()))

        assert fingerprint() == fingerprint()


class TestSpamQuarantine:
    def test_spammers_exceed_flood_budget_and_are_cut(self):
        """Validly signed far-future votes pass every signature check;
        the per-origin flood budget is what catches the sender."""
        sim = _run_attack(
            SpamVoteNode,
            admission=AdmissionConfig(flood_budget_per_round=32))
        _assert_honest_progress(sim)
        _assert_only_attackers_blamed(sim)
        assert sim.quarantine_directory.quarantines >= 1
        flood_rejections = sum(
            node.admission.rejected.get("flood", 0)
            for node in sim.nodes[:8])
        assert flood_rejections > 0


class TestMaliciousQuarantine:
    def test_double_voters_quarantined_by_evidence(self):
        """The section 10.4 adversary's conflicting votes are
        self-certifying evidence: the origin is scored, quarantined, and
        the chain never forks."""
        sim = _run_attack(MaliciousNode, num_users=15, num_malicious=3,
                          seed=67)
        honest = sim.nodes[:12]
        for node in honest:
            assert node.chain.height >= ROUNDS
        for round_number in range(1, ROUNDS + 1):
            assert len(sim.agreed_hashes(round_number)) == 1
        attackers = {12, 13, 14}
        attacker_keys = {sim.keypairs[index].public for index in attackers}
        evidence = [item
                    for node in honest
                    for item in node.admission.evidence]
        assert evidence, "no double-vote evidence was recorded"
        # Every receipt is self-certifying and names an actual attacker.
        assert {item.offender for item in evidence} <= attacker_keys
        # Local blocks (if any) must only ever name the attackers.
        for node in honest:
            assert set(node.admission.health.quarantined_until) <= attackers
