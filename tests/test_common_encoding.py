"""Tests for the canonical encoding codec."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.encoding import decode, encode


class TestEncodeBasics:
    def test_none(self):
        assert decode(encode(None)) is None

    def test_booleans(self):
        assert decode(encode(True)) is True
        assert decode(encode(False)) is False

    def test_bool_is_not_int_encoding(self):
        # bool is a subclass of int; the codec must not conflate them.
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_small_ints(self):
        for value in (0, 1, -1, 127, 128, -128, -129, 255, 256):
            assert decode(encode(value)) == value

    def test_big_ints(self):
        value = 2**300 - 17
        assert decode(encode(value)) == value
        assert decode(encode(-value)) == -value

    def test_floats(self):
        for value in (0.0, -0.0, 1.5, -2.25, 1e300, 5.0):
            assert decode(encode(value)) == value

    def test_bytes_and_str(self):
        assert decode(encode(b"\x00\xff")) == b"\x00\xff"
        assert decode(encode("héllo")) == "héllo"

    def test_nested_list(self):
        value = [1, [b"x", "y"], None, [True, [2]]]
        assert decode(encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert encode((1, 2)) == encode([1, 2])

    def test_dict_sorted_keys(self):
        assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})
        assert decode(encode({"a": 1})) == {"a": 1}

    def test_dict_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            encode({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode(object())


class TestDecodeErrors:
    def test_truncated(self):
        data = encode([1, 2, 3])
        with pytest.raises(ValueError):
            decode(data[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(ValueError):
            decode(encode(1) + b"x")

    def test_unknown_tag(self):
        with pytest.raises(ValueError):
            decode(b"Z")

    def test_empty(self):
        with pytest.raises(ValueError):
            decode(b"")


class TestInjectivity:
    """Distinct values must never share an encoding (consensus depends
    on it: nodes sign and hash these bytes)."""

    def test_int_vs_str(self):
        assert encode(1) != encode("1")

    def test_bytes_vs_str(self):
        assert encode(b"a") != encode("a")

    def test_list_nesting(self):
        assert encode([[1], 2]) != encode([1, [2]])
        assert encode([b"ab"]) != encode([b"a", b"b"])

    def test_concatenation_ambiguity(self):
        # [x, y] as a list differs from separate encodings concatenated.
        assert encode([1, 2]) != encode(1) + encode(2)


_values = st.recursive(
    st.none() | st.booleans() | st.integers()
    | st.floats(allow_nan=False) | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=16,
)


@given(_values)
def test_roundtrip_property(value):
    decoded = decode(encode(value))
    _assert_equivalent(decoded, value)


@given(_values, _values)
def test_injective_property(a, b):
    if encode(a) == encode(b):
        _assert_equivalent(a, b)


def _assert_equivalent(a, b):
    """Equality modulo tuple/list and int/float identity subtleties."""
    if isinstance(a, list) and isinstance(b, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_equivalent(x, y)
    elif isinstance(a, float) and isinstance(b, float):
        assert math.copysign(1, a) == math.copysign(1, b) and a == b
    else:
        assert type(a) is type(b)
        assert a == b
