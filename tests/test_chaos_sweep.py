"""Seeded chaos sweeps: many generated scenarios, all green, reproducible.

The quick tests keep tier-1 fast (a 3-seed sample plus the determinism
check); the full 20-seed sweep is marked ``slow`` and runs with
``pytest -m slow`` (the CI chaos job runs a 5-seed slice through the
CLI instead).
"""

from __future__ import annotations

import pytest

from repro.chaos import generate_scenario, run_scenario


def _verdict(seed: int):
    return run_scenario(generate_scenario(seed))


class TestQuickSweep:
    def test_sample_of_generated_scenarios_green(self, chaos_seeds):
        for seed in chaos_seeds[:3]:
            verdict = _verdict(seed)
            assert verdict.ok, (seed, verdict.violations)
            assert verdict.converged

    def test_same_seed_reproduces_byte_identical_verdict(self, chaos_seeds):
        seed = chaos_seeds[0]
        first = _verdict(seed).to_json()
        second = _verdict(seed).to_json()
        assert first == second

    def test_distinct_seeds_draw_distinct_scenarios(self, chaos_seeds):
        scripts = {generate_scenario(seed).to_json()
                   for seed in chaos_seeds}
        assert len(scripts) == len(chaos_seeds)


@pytest.mark.slow
class TestFullSweep:
    def test_twenty_seeded_scenarios_green(self, chaos_seeds):
        assert len(chaos_seeds) >= 20
        failures = []
        for seed in chaos_seeds:
            verdict = _verdict(seed)
            if not verdict.ok:
                failures.append((seed, verdict.violations))
        assert not failures, failures
