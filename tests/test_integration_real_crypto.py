"""End-to-end round on the *real* crypto backend.

Everything else in the suite runs the fast simulation backend; this test
runs a complete round — sortition, VRF seed proposal, signed votes,
certificate construction — over the pure-Python Ed25519 + ECVRF
implementation (the paper's actual cryptography), proving the two
backends are drop-in interchangeable behind one interface.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baplus.certificate import verify_certificate
from repro.baplus.context import BAContext
from repro.common.params import TEST_PARAMS
from repro.crypto.backend import Ed25519Backend
from repro.experiments.harness import Simulation, SimulationConfig

# Committees sized for 8 users x 10 units (W = 80): expected 30 votes vs
# a ~21-vote quorum.
REAL_PARAMS = dataclasses.replace(TEST_PARAMS, tau_step=30, tau_final=40,
                                  tau_proposer=4)


@pytest.fixture(scope="module")
def real_sim():
    sim = Simulation(
        SimulationConfig(num_users=8, seed=2, params=REAL_PARAMS),
        backend=Ed25519Backend())
    sim.submit_payments(8, note_bytes=8)
    sim.run_rounds(1)
    return sim


class TestRealCryptoRound:
    def test_agreement(self, real_sim):
        assert real_sim.all_chains_equal()
        assert len(real_sim.agreed_hashes(1)) == 1

    def test_final_consensus(self, real_sim):
        assert real_sim.nodes[0].metrics.round_record(1).kind == "final"

    def test_certificate_verifies_under_real_crypto(self, real_sim):
        node = real_sim.nodes[0]
        certificate = node.chain.certificate_at(1)
        assert certificate is not None
        ctx = BAContext.from_weights(
            real_sim.genesis_seed,
            {kp.public: 10 for kp in real_sim.keypairs},
            node.chain.block_at(0).block_hash)
        verify_certificate(certificate, ctx, real_sim.backend, REAL_PARAMS)

    def test_real_block_carries_real_seed_proof(self, real_sim):
        from repro.sortition.seed import verify_seed
        block = real_sim.nodes[0].chain.block_at(1)
        if block.is_empty:
            pytest.skip("round landed on the empty block")
        assert verify_seed(
            real_sim.backend, block.proposer, block.seed,
            block.seed_proof, real_sim.genesis_seed, 1)
