"""Tests for the Nakamoto (Bitcoin) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.nakamoto import (
    NakamotoConfig,
    NakamotoSimulator,
    expected_confirmation_latency,
    fork_probability,
    paper_comparison,
    throughput_bytes_per_hour,
)


class TestAnalytics:
    def test_bitcoin_confirmation_is_an_hour(self):
        latency = expected_confirmation_latency(NakamotoConfig())
        assert latency == pytest.approx(3600.0)

    def test_bitcoin_throughput_about_6mb_per_hour(self):
        """Section 10.2: 'Bitcoin commits a 1 MByte block every 10
        minutes ... 6 MBytes of transactions per hour'."""
        throughput = throughput_bytes_per_hour(NakamotoConfig())
        assert 5.5e6 < throughput <= 6.0e6

    def test_fork_probability_small_but_positive(self):
        p = fork_probability(NakamotoConfig())
        assert 0.01 < p < 0.05  # ~2% with 12.6s propagation [18]

    def test_faster_blocks_raise_fork_rate(self):
        slow = fork_probability(NakamotoConfig())
        fast = fork_probability(NakamotoConfig(block_interval=60.0))
        assert fast > slow * 5

    def test_paper_comparison_125x(self):
        """Algorand at 750 MB/hour (10 MB blocks) vs Bitcoin: ~125x."""
        ratio = paper_comparison(750e6)
        assert 115 <= ratio <= 135

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NakamotoConfig(block_interval=0)
        with pytest.raises(ValueError):
            NakamotoConfig(confirmations=0)
        with pytest.raises(ValueError):
            NakamotoConfig(propagation_delay=-1)


class TestSimulator:
    def test_simulated_latency_matches_analytic(self):
        simulator = NakamotoSimulator()
        result = simulator.run(2000, np.random.default_rng(0))
        expected = expected_confirmation_latency(simulator.config)
        assert abs(result.mean_confirmation_latency - expected) < 0.15 * expected

    def test_simulated_throughput_matches_analytic(self):
        simulator = NakamotoSimulator()
        result = simulator.run(3000, np.random.default_rng(1))
        expected = throughput_bytes_per_hour(simulator.config)
        assert abs(result.throughput_bytes_per_hour - expected) < 0.1 * expected

    def test_fork_rate_matches_probability(self):
        simulator = NakamotoSimulator()
        result = simulator.run(5000, np.random.default_rng(2))
        expected = fork_probability(simulator.config)
        assert abs(result.fork_rate - expected) < 0.01

    def test_zero_delay_means_no_forks(self):
        simulator = NakamotoSimulator(NakamotoConfig(propagation_delay=0.0))
        result = simulator.run(1000, np.random.default_rng(3))
        assert result.blocks_stale == 0

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ValueError):
            NakamotoSimulator().run(3, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        a = NakamotoSimulator().run(500, np.random.default_rng(9))
        b = NakamotoSimulator().run(500, np.random.default_rng(9))
        assert a == b
