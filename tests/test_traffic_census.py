"""The traffic census: analytic model, stake shapes, golden artifact.

Three layers, cheapest first:

* pure math — the stake distributions are exact and deterministic, and
  the analytical ``minimal`` column lands in the 75–117 messages/round
  band for every shape (the census was tuned so the three shapes are
  comparable on one axis);
* the committed ``BENCH_traffic.json`` — its analytic columns must
  match a fresh closed-form recomputation, its damped vote relays must
  undercut the undamped ones for every shape, and the 200-user scale
  point must record the >= 30% relay reduction the damper claims;
* golden regeneration (``slow``) — rebuilding the census grid from
  scratch reproduces the committed census and params sections byte for
  byte (simulations included, not just the math).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.traffic import (
    CENSUS_PARAMS,
    CENSUS_USERS,
    STAKE_SHAPES,
    STAKE_UNIT,
    analytical_census,
    build_report,
    expected_distinct_voters,
    stake_distribution,
)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_traffic.json"

#: The census band: tuned so every stake shape's analytical minimal
#: column is mutually comparable (see the module docstring).
BAND = (75.0, 117.0)


@pytest.fixture(scope="module")
def artifact() -> dict:
    return json.loads(ARTIFACT.read_text())


class TestStakeDistributions:
    @pytest.mark.parametrize("shape", STAKE_SHAPES)
    @pytest.mark.parametrize("n", [10, 40, 200])
    def test_exact_total_and_deterministic(self, shape, n):
        balances = stake_distribution(shape, n)
        assert sum(balances) == STAKE_UNIT * n
        assert all(b >= 0 for b in balances)
        assert balances == stake_distribution(shape, n)

    def test_whale_concentration(self):
        balances = stake_distribution("whale", 40)
        whales = 40 // 10
        assert sum(balances[:whales]) == (STAKE_UNIT * 40) // 3

    def test_midtier_concentration(self):
        balances = stake_distribution("midtier", 40)
        mid = (40 * 2) // 5
        low = (40 - mid) // 2
        assert sum(balances[low:low + mid]) == (STAKE_UNIT * 40 * 3) // 5

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown stake shape"):
            stake_distribution("pareto", 40)


class TestAnalyticModel:
    def test_concentration_lowers_distinct_voters(self):
        # A whale's sub-users collapse into one message, so E_d under
        # concentrated stake is below the uniform value.
        uniform = stake_distribution("uniform", CENSUS_USERS)
        for shape in ("whale", "midtier"):
            concentrated = stake_distribution(shape, CENSUS_USERS)
            assert (expected_distinct_voters(concentrated, 24)
                    < expected_distinct_voters(uniform, 24))

    def test_expected_voters_bounded(self):
        balances = stake_distribution("uniform", CENSUS_USERS)
        for tau in (5, 24, 36):
            expected = expected_distinct_voters(balances, tau)
            assert 0 < expected < min(CENSUS_USERS, tau + 1)

    @pytest.mark.parametrize("shape", STAKE_SHAPES)
    def test_minimal_column_in_band(self, shape):
        balances = stake_distribution(shape, CENSUS_USERS)
        census = analytical_census(balances, CENSUS_PARAMS)
        assert BAND[0] <= census["minimal"] <= BAND[1], (shape, census)
        assert census["minimal"] < census["full"]


class TestCommittedArtifact:
    def test_census_covers_every_shape(self, artifact):
        assert set(artifact["census"]) == set(STAKE_SHAPES)

    @pytest.mark.parametrize("shape", STAKE_SHAPES)
    def test_analytic_columns_match_recomputation(self, artifact, shape):
        entry = artifact["census"][shape]
        balances = stake_distribution(shape, entry["num_users"])
        assert entry["analytic"] == analytical_census(balances,
                                                      CENSUS_PARAMS)

    @pytest.mark.parametrize("shape", STAKE_SHAPES)
    def test_damping_reduced_vote_relays(self, artifact, shape):
        entry = artifact["census"][shape]
        assert (entry["damped"]["vote"]["relayed"]
                < entry["undamped"]["vote"]["relayed"])
        assert entry["damped_votes_per_round"] > 0
        assert entry["vote_relay_reduction_pct"] > 0

    def test_scale_point_records_headline_reduction(self, artifact):
        scale = artifact["scale"]
        assert scale["num_users"] >= 200
        assert scale["pipeline_final_step"] is True
        assert scale["vote_relay_reduction_pct"] >= 30.0
        assert (scale["damped"]["vote"]["relayed"]
                < scale["undamped"]["vote"]["relayed"])

    def test_params_pinned(self, artifact):
        assert artifact["params"] == {
            "tau_proposer": CENSUS_PARAMS.tau_proposer,
            "tau_step": CENSUS_PARAMS.tau_step,
            "tau_final": CENSUS_PARAMS.tau_final,
            "t_step": CENSUS_PARAMS.t_step,
            "t_final": CENSUS_PARAMS.t_final,
        }


@pytest.mark.slow
class TestGoldenRegeneration:
    def test_census_is_byte_reproducible(self, artifact):
        regenerated = build_report(include_scale=False)
        for section in ("census", "params"):
            assert (json.dumps(regenerated[section], sort_keys=True)
                    == json.dumps(artifact[section], sort_keys=True)), (
                f"{section} section drifted from BENCH_traffic.json — "
                f"regenerate with python -m repro.experiments traffic")
