"""Unit tests for the quorum-trimmed relay (repro.runtime.damping).

Covers the pure :class:`DampingTally` semantics (count_votes mirroring,
threshold crossing, the Algorithm 9 coin exemption, round hygiene), the
:class:`RelayDamper` wiring inside a running simulation, and the peer
quarantine regression the damper work surfaced: severing a peer
mid-round must also purge traffic already queued for it, or the
quarantined node keeps receiving stale egress through a link that no
longer exists.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.hashing import H
from repro.network.gossip import GossipNetwork
from repro.network.latency import UniformLatencyModel
from repro.network.message import Envelope
from repro.runtime.damping import (
    COIN_HASH_CEILING,
    RECOVERY_ROUND_BASE,
    DampingTally,
    coin_min_hash,
)
from repro.sim.loop import Environment

from tests.fixtures import run_sim, run_traced

V1 = H(b"value-one")
V2 = H(b"value-two")


def _tally(step_threshold=10.0, final_threshold=20.0) -> DampingTally:
    return DampingTally(step_threshold, final_threshold)


def _voter(i: int) -> bytes:
    return H(b"voter", bytes([i]))


class TestCoinMinHash:
    def test_weight_zero_contributes_ceiling(self):
        assert coin_min_hash(H(b"s"), 0) == COIN_HASH_CEILING

    def test_matches_manual_minimum(self):
        sorthash = H(b"sorthash")
        manual = min(int.from_bytes(H(sorthash, j.to_bytes(8, "big")),
                                    "big")
                     for j in range(1, 5))
        assert coin_min_hash(sorthash, 4) == manual

    def test_monotone_in_weight(self):
        sorthash = H(b"mono")
        previous = COIN_HASH_CEILING
        for weight in range(1, 8):
            current = coin_min_hash(sorthash, weight)
            assert current <= previous
            previous = current


class TestDampingTally:
    def test_crossing_vote_itself_relays(self):
        tally = _tally()
        # 6 + 5 = 11 > 10: the second vote crosses and still relays.
        assert not tally.observe(1, "1", V1, _voter(0), 6)
        assert not tally.observe(1, "1", V1, _voter(1), 5)
        assert tally.crossed(1, "1", V1)
        # The first vote *after* the crossing is suppressed.
        assert tally.observe(1, "1", V1, _voter(2), 3)

    def test_exact_threshold_does_not_cross(self):
        tally = _tally()
        assert not tally.observe(1, "1", V1, _voter(0), 10)
        assert not tally.crossed(1, "1", V1)
        assert not tally.observe(1, "1", V1, _voter(1), 1)
        assert tally.crossed(1, "1", V1)

    def test_voter_counted_once_per_step(self):
        tally = _tally()
        assert not tally.observe(1, "1", V1, _voter(0), 8)
        # The same voter again adds nothing — count_votes semantics.
        assert not tally.observe(1, "1", V1, _voter(0), 8)
        assert not tally.crossed(1, "1", V1)
        # Not even under a different value in the same (round, step).
        assert not tally.observe(1, "1", V2, _voter(0), 8)
        assert not tally.observe(1, "1", V2, _voter(1), 11)
        assert tally.crossed(1, "1", V2)

    def test_values_accumulate_independently(self):
        tally = _tally()
        tally.observe(1, "1", V1, _voter(0), 6)
        tally.observe(1, "1", V2, _voter(1), 6)
        assert not tally.crossed(1, "1", V1)
        assert not tally.crossed(1, "1", V2)
        tally.observe(1, "1", V1, _voter(2), 6)
        assert tally.crossed(1, "1", V1)
        assert not tally.crossed(1, "1", V2)

    def test_final_step_uses_final_threshold(self):
        from repro.sortition.roles import FINAL_STEP
        tally = _tally(step_threshold=10.0, final_threshold=20.0)
        tally.observe(1, FINAL_STEP, V1, _voter(0), 15)
        assert not tally.crossed(1, FINAL_STEP, V1)
        tally.observe(1, FINAL_STEP, V1, _voter(1), 6)
        assert tally.crossed(1, FINAL_STEP, V1)

    def test_steps_and_rounds_are_independent_keys(self):
        tally = _tally()
        tally.observe(1, "1", V1, _voter(0), 11)
        assert tally.crossed(1, "1", V1)
        assert not tally.crossed(1, "2", V1)
        assert not tally.crossed(2, "1", V1)
        # A crossed key in round 1 does not suppress round 2 votes.
        assert not tally.observe(2, "1", V1, _voter(1), 1)

    def test_weight_zero_never_counted_never_suppressed(self):
        tally = _tally()
        assert not tally.observe(1, "1", V1, _voter(0), 0)
        assert not tally.crossed(1, "1", V1)
        tally.observe(1, "1", V1, _voter(1), 11)
        assert tally.crossed(1, "1", V1)
        # Undecidable votes relay even for a crossed key: at another
        # node they may carry weight this node cannot see.
        assert not tally.observe(1, "1", V1, _voter(2), 0)
        # A weight-0 voter is not marked as counted either: the same
        # voter later weighed properly still contributes.
        tally2 = _tally()
        tally2.observe(1, "1", V1, _voter(0), 0)
        tally2.observe(1, "1", V1, _voter(0), 11)
        assert tally2.crossed(1, "1", V1)

    def test_coin_minimum_exemption(self):
        tally = _tally()
        tally.observe(1, "1", V1, _voter(0), 11, coin_hash=500)
        assert tally.crossed(1, "1", V1)
        # Higher coin hash after crossing: redundant, suppressed.
        assert tally.observe(1, "1", V1, _voter(1), 1, coin_hash=900)
        # A fresh minimum must keep propagating (Algorithm 9).
        assert not tally.observe(1, "1", V1, _voter(2), 1, coin_hash=100)
        # ... and only a *strictly* lower hash is exempt.
        assert tally.observe(1, "1", V1, _voter(3), 1, coin_hash=100)
        assert not tally.observe(1, "1", V1, _voter(4), 1, coin_hash=99)

    def test_coin_minimum_is_per_step(self):
        tally = _tally()
        tally.observe(1, "1", V1, _voter(0), 11, coin_hash=10)
        tally.observe(1, "2", V1, _voter(1), 11, coin_hash=500)
        # 400 is above step "1"'s minimum but below step "2"'s: only
        # step "2" treats it as coin-relevant.
        assert tally.observe(1, "1", V1, _voter(2), 1, coin_hash=400)
        assert not tally.observe(1, "2", V1, _voter(3), 1, coin_hash=400)

    def test_prune_drops_old_rounds_and_recovery_keys(self):
        tally = _tally()
        tally.observe(1, "1", V1, _voter(0), 11)
        tally.observe(3, "1", V1, _voter(1), 11)
        tally.observe(RECOVERY_ROUND_BASE + 1, "1", V1, _voter(2), 11)
        tally.prune_before(3)
        assert not tally.crossed(1, "1", V1)
        assert tally.crossed(3, "1", V1)
        assert not tally.crossed(RECOVERY_ROUND_BASE + 1, "1", V1)
        assert all(k[0] == 3 for k in tally._counts)
        assert all(k[0] == 3 for k in tally._voters)
        assert all(k[0] == 3 for k in tally._coin_min)

    def test_clear_resets_everything(self):
        tally = _tally()
        tally.observe(1, "1", V1, _voter(0), 11, coin_hash=5)
        tally.clear()
        assert not tally.crossed(1, "1", V1)
        assert not tally._counts and not tally._voters
        assert not tally._coin_min
        # After clear the same coin hash is "fresh" again.
        tally.observe(1, "1", V1, _voter(1), 11, coin_hash=5)
        assert tally.crossed(1, "1", V1)


class TestRelayDamperWiring:
    def test_damper_attached_and_active_by_default(self):
        sim, bus = run_traced(2, num_users=14, seed=5,
                              latency_model="uniform", bandwidth_bps=None)
        assert all(node.damper is not None for node in sim.nodes)
        suppressed = sum(node.damper.suppressed for node in sim.nodes)
        observed = sum(node.damper.observed for node in sim.nodes)
        assert suppressed > 0
        assert observed > 0
        # The census counter matches the per-node receipts exactly.
        assert bus.metrics.counter("gossip.damped.vote") == suppressed

    def test_damping_off_leaves_nodes_bare(self):
        sim = run_sim(1, num_users=8, seed=3, relay_damping=False)
        assert all(getattr(node, "damper", None) is None
                   for node in sim.nodes)

    def test_crash_resets_tally_but_keeps_receipts(self):
        sim = run_sim(1, num_users=10, seed=5,
                      latency_model="uniform", bandwidth_bps=None)
        node = sim.nodes[0]
        before = node.damper.suppressed
        node.damper.tally.observe(99, "1", V1, _voter(0), 10**9)
        node.crash()
        assert node.damper.suppressed == before
        assert not node.damper.tally._crossed
        assert not node.damper._ctx_cache

    def test_summary_reports_damping(self):
        sim = run_sim(1, num_users=10, seed=5,
                      latency_model="uniform", bandwidth_bps=None)
        damping = sim.summary()["damping"]
        assert damping["suppressed"] == sum(
            node.damper.suppressed for node in sim.nodes)
        assert damping["observed"] > 0


def _network(num_nodes=20, seed=0, bandwidth=None, latency=0.01, peers=4):
    env = Environment()
    rng = np.random.default_rng(seed)
    net = GossipNetwork(env, num_nodes, rng, UniformLatencyModel(latency),
                        peers_per_node=peers, bandwidth_bps=bandwidth)
    return env, net


class TestQuarantineEgressPurge:
    """Severing a peer must purge traffic already queued for it."""

    def test_discard_egress_filters_both_lanes_preserving_order(self):
        _, net = _network(10)
        iface = net.interfaces[0]
        small = [Envelope(origin=b"o", kind="vote", payload=None, size=100)
                 for _ in range(3)]
        big = Envelope(origin=b"o", kind="block", payload=None,
                       size=100_000)
        iface._egress_urgent.extend([(small[0], 7), (small[1], 8),
                                     (small[2], 7)])
        iface._egress_bulk.append((big, 7))
        dropped = iface.discard_egress_to(7)
        assert dropped == 3
        assert list(iface._egress_urgent) == [(small[1], 8)]
        assert not iface._egress_bulk
        # No items for an absent target: a no-op that reports zero.
        assert iface.discard_egress_to(5) == 0

    def test_quarantined_mid_round_peer_receives_no_stale_egress(self):
        # The regression: broadcast queues items onto neighbors' egress
        # lanes; quarantining the victim *before* the loop drains them
        # must drop those queued items, not deliver them over a link
        # that no longer exists (`_deliver` only checks the receiver's
        # own state, and quarantined != disconnected).
        env, net = _network(12, bandwidth=1e6)
        victim = net.interfaces[0].neighbors[0]
        envelope = Envelope(origin=b"o", kind="vote", payload=None,
                            size=100)
        net.interfaces[0].broadcast(envelope)
        assert any(target == victim
                   for _, target in net.interfaces[0]._egress_urgent)
        net.set_quarantined({victim})
        env.run()
        assert not net.interfaces[victim].inbox
        assert envelope.msg_id not in net.interfaces[victim]._seen
        # Everyone still connected got it exactly once.
        for iface in net.interfaces[1:]:
            if iface.index != victim:
                assert len(iface.inbox) == 1

    def test_release_after_purge_rejoins_cleanly(self):
        env, net = _network(12, bandwidth=1e6)
        victim = net.interfaces[0].neighbors[0]
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="vote", payload=None, size=100))
        net.set_quarantined({victim})
        env.run()
        net.set_quarantined(frozenset())
        assert net.interfaces[victim].neighbors
        fresh = Envelope(origin=b"o", kind="vote", payload=None, size=100)
        net.interfaces[0].broadcast(fresh)
        env.run()
        assert fresh.msg_id in net.interfaces[victim]._seen
