"""Property tests: damping never suppresses a vote a quorum needs.

The damper's safety claim is local and order-sensitive — "by the time I
suppress a vote for a key, the votes I *did* relay already carry a
quorum for it" — so Hypothesis drives :class:`DampingTally` through
arbitrary committees and arbitrary arrival orders and checks the claim
as stated:

* **Quorum preservation** — replaying only the relayed votes through a
  fresh ``count_votes``-style tally crosses every threshold the full
  vote set crosses. A peer fed the damped stream reaches every quorum
  the undamped stream reaches.
* **Coin preservation** — per ``(round, step)``, the minimum Algorithm 9
  coin hash over the relayed votes equals the minimum over *all* votes:
  the exemption forwards every new running minimum, so a peer computing
  the common coin from the damped stream flips the same bit.
* **Counted implies relayed** — the damper never counts weight it did
  not forward (the FIFO argument's load-bearing step).

Votes model honest committees: per ``(round, step)`` each voter votes at
most once, with an objective sortition weight; sorthashes are drawn
bytes so coin hashes exercise the real :func:`coin_min_hash`.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import H
from repro.runtime.damping import (
    COIN_HASH_CEILING,
    DampingTally,
    coin_min_hash,
)
from repro.sortition.roles import FINAL_STEP

EXAMPLES = 200

STEPS = ("reduction_one", "1", "2", FINAL_STEP)
VALUES = tuple(H(b"block", bytes([i])) for i in range(3))

STEP_THRESHOLD = 12.0
FINAL_THRESHOLD = 18.0


@st.composite
def vote_stream(draw) -> list[tuple]:
    """Arbitrary-order honest votes: (round, step, value, voter, weight,
    coin_hash) with one vote per voter per (round, step)."""
    votes = []
    for round_number in range(1, draw(st.integers(1, 2)) + 1):
        for step in STEPS[:draw(st.integers(1, len(STEPS)))]:
            voters = draw(st.integers(0, 12))
            for voter_index in range(voters):
                voter = H(b"voter", bytes([voter_index]))
                value = draw(st.sampled_from(VALUES))
                weight = draw(st.integers(0, 6))
                sorthash = draw(st.binary(min_size=4, max_size=8))
                votes.append((round_number, step, value, voter, weight,
                              coin_min_hash(sorthash, weight)))
    return draw(st.permutations(votes))


def _thresh(step: str) -> float:
    return FINAL_THRESHOLD if step == FINAL_STEP else STEP_THRESHOLD


def _count_votes(votes: list[tuple]) -> set[tuple]:
    """Reference ``count_votes`` semantics: keys crossing threshold.

    One count per voter per (round, step), first arrival wins; weight-0
    votes are not committee votes and count nothing.
    """
    counted: dict[tuple, set[bytes]] = {}
    totals: dict[tuple, float] = {}
    crossed = set()
    for round_number, step, value, voter, weight, _ in votes:
        if weight <= 0:
            continue
        step_key = (round_number, step)
        voters = counted.setdefault(step_key, set())
        if voter in voters:
            continue
        voters.add(voter)
        key = (round_number, step, value)
        totals[key] = totals.get(key, 0.0) + weight
        if totals[key] > _thresh(step):
            crossed.add(key)
    return crossed


def _run_damper(votes: list[tuple]) -> tuple[list[tuple], list[tuple]]:
    """Feed the tally; split the stream into (relayed, suppressed)."""
    tally = DampingTally(STEP_THRESHOLD, FINAL_THRESHOLD)
    relayed, suppressed = [], []
    for vote in votes:
        round_number, step, value, voter, weight, coin_hash = vote
        if tally.observe(round_number, step, value, voter, weight,
                         coin_hash):
            suppressed.append(vote)
        else:
            relayed.append(vote)
    return relayed, suppressed


class TestQuorumPreservation:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(vote_stream())
    def test_relayed_substream_crosses_every_quorum(self, votes):
        relayed, suppressed = _run_damper(votes)
        full = _count_votes(votes)
        damped = _count_votes(relayed)
        missing = full - damped
        assert not missing, (
            f"damping lost quorums {missing}; suppressed={suppressed}")

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(vote_stream())
    def test_suppression_only_after_forwarded_quorum(self, votes):
        # Stronger, prefix-wise: at the moment any vote is suppressed,
        # the already-relayed votes alone carry a quorum for its key.
        tally = DampingTally(STEP_THRESHOLD, FINAL_THRESHOLD)
        relayed_prefix: list[tuple] = []
        for vote in votes:
            round_number, step, value, voter, weight, coin_hash = vote
            if tally.observe(round_number, step, value, voter, weight,
                             coin_hash):
                key = (round_number, step, value)
                assert key in _count_votes(relayed_prefix), (
                    f"suppressed {vote} before relaying a quorum "
                    f"for {key}")
            else:
                relayed_prefix.append(vote)

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(vote_stream())
    def test_undecidable_votes_always_relay(self, votes):
        _, suppressed = _run_damper(votes)
        assert all(weight > 0
                   for _, _, _, _, weight, _ in suppressed)


class TestCoinPreservation:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(vote_stream())
    def test_relayed_substream_preserves_coin_minimum(self, votes):
        relayed, _ = _run_damper(votes)

        def step_minimums(stream):
            mins: dict[tuple, int] = {}
            for round_number, step, _, _, _, coin_hash in stream:
                step_key = (round_number, step)
                mins[step_key] = min(
                    mins.get(step_key, COIN_HASH_CEILING), coin_hash)
            return mins

        full = step_minimums(votes)
        damped = step_minimums(relayed)
        for step_key, minimum in full.items():
            if minimum == COIN_HASH_CEILING:
                continue  # only weight-0 votes: no coin contribution
            assert damped.get(step_key) == minimum, (
                f"coin minimum for {step_key} lost by damping")

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(vote_stream())
    def test_new_running_minimum_is_never_suppressed(self, votes):
        _, suppressed = _run_damper(votes)
        seen: dict[tuple, int] = {}
        for vote in votes:
            round_number, step, _, _, _, coin_hash = vote
            step_key = (round_number, step)
            if coin_hash < seen.get(step_key, COIN_HASH_CEILING):
                seen[step_key] = coin_hash
                assert vote not in suppressed
