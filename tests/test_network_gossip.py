"""Tests for the gossip network and latency models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.network.gossip import GossipNetwork
from repro.network.latency import (
    CITIES,
    LatencyModel,
    UniformLatencyModel,
    base_latency_matrix,
    great_circle_km,
)
from repro.network.message import Envelope
from repro.sim.loop import Environment


def _network(num_nodes=20, seed=0, bandwidth=None, latency=0.01,
             peers=4):
    env = Environment()
    rng = np.random.default_rng(seed)
    net = GossipNetwork(env, num_nodes, rng, UniformLatencyModel(latency),
                        peers_per_node=peers, bandwidth_bps=bandwidth)
    return env, net


class TestLatencyModel:
    def test_matrix_shape_and_symmetry(self):
        matrix = base_latency_matrix()
        n = len(CITIES)
        assert matrix.shape == (n, n)
        assert np.allclose(matrix, matrix.T)

    def test_same_city_is_fast(self):
        matrix = base_latency_matrix()
        assert all(matrix[i, i] < 0.005 for i in range(len(CITIES)))

    def test_intercontinental_is_slow(self):
        # London (5) to Sydney (16): one-way should exceed 80 ms.
        matrix = base_latency_matrix()
        assert matrix[5, 16] > 0.08
        # and below half a second.
        assert matrix.max() < 0.5

    def test_great_circle_known_distance(self):
        # New York to London ~5570 km.
        km = great_circle_km(40.71, -74.01, 51.51, -0.13)
        assert 5300 < km < 5800

    def test_user_latency_positive_with_jitter(self):
        model = LatencyModel(50, np.random.default_rng(0))
        for _ in range(20):
            assert model.latency(3, 17) > 0

    def test_uniform_model(self):
        model = UniformLatencyModel(0.05)
        assert model.latency(0, 1) == 0.05
        with pytest.raises(ValueError):
            UniformLatencyModel(-1)


class TestTopology:
    def test_every_node_has_neighbors(self):
        _, net = _network(30)
        for iface in net.interfaces:
            assert len(iface.neighbors) >= net.peers_per_node
            assert iface.index not in iface.neighbors

    def test_links_are_bidirectional(self):
        _, net = _network(30)
        for iface in net.interfaces:
            for neighbor in iface.neighbors:
                assert iface.index in net.interfaces[neighbor].neighbors

    def test_reshuffle_changes_graph(self):
        _, net = _network(30)
        before = [tuple(i.neighbors) for i in net.interfaces]
        net.reshuffle_peers()
        after = [tuple(i.neighbors) for i in net.interfaces]
        assert before != after

    def test_too_few_nodes_rejected(self):
        env = Environment()
        with pytest.raises(NetworkError):
            GossipNetwork(env, 1, np.random.default_rng(0),
                          UniformLatencyModel(0.01))


class TestFlooding:
    def test_broadcast_reaches_everyone(self):
        env, net = _network(40)
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100))
        env.run()
        reached = sum(1 for i in net.interfaces[1:] if i.inbox)
        assert reached == 39

    def test_duplicates_suppressed(self):
        env, net = _network(20)
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=100)
        net.interfaces[0].broadcast(envelope)
        env.run()
        # Each node sees the message exactly once despite flooding.
        for iface in net.interfaces[1:]:
            assert len(iface.inbox) == 1

    def test_relay_policy_false_stops_forwarding(self):
        env, net = _network(30)
        for iface in net.interfaces:
            iface.relay_policy = lambda e: False
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100))
        env.run()
        # Only direct neighbors receive it.
        reached = {i.index for i in net.interfaces if i.inbox}
        assert reached == set(net.interfaces[0].neighbors)

    def test_latency_bounds_propagation_time(self):
        env, net = _network(40, latency=0.05, bandwidth=None)
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100))
        env.run()
        # Diameter of a 40-node random graph with ~8 neighbors is <= 4.
        assert env.now <= 0.05 * 6

    def test_bandwidth_slows_large_messages(self):
        env_small, net_small = _network(20, bandwidth=1e6)
        net_small.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100))
        env_small.run()
        t_small = env_small.now

        env_big, net_big = _network(20, bandwidth=1e6)
        net_big.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100_000))
        env_big.run()
        assert env_big.now > t_small * 5

    def test_disconnected_node_neither_sends_nor_receives(self):
        env, net = _network(20)
        net.interfaces[5].disconnected = True
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100))
        env.run()
        assert not net.interfaces[5].inbox

    def test_drop_filter_partitions_network(self):
        env, net = _network(30)
        left = set(range(15))

        def drop(src, dst, envelope):
            return (src in left) != (dst in left)

        net.drop_filter = drop
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=100))
        env.run()
        reached = {i.index for i in net.interfaces if i.inbox}
        assert reached <= left

    def test_bytes_accounting(self):
        env, net = _network(10)
        net.interfaces[0].broadcast(
            Envelope(origin=b"o", kind="t", payload=None, size=500))
        env.run()
        assert net.total_bytes_sent % 500 == 0
        assert net.total_bytes_sent >= 500 * len(
            net.interfaces[0].neighbors)


class TestEnvelope:
    def test_unique_ids(self):
        a = Envelope(origin=b"o", kind="t", payload=None, size=1)
        b = Envelope(origin=b"o", kind="t", payload=None, size=1)
        assert a.msg_id != b.msg_id

    def test_size_validated(self):
        with pytest.raises(ValueError):
            Envelope(origin=b"o", kind="t", payload=None, size=0)


class TestSeenPruning:
    def test_seen_bounded_by_horizon(self):
        env, net = _network(10)
        for _ in range(4):
            for k in range(3):
                net.interfaces[0].broadcast(
                    Envelope(origin=b"o", kind="t", payload=None, size=50))
            env.run()
            net.end_round()
        # With a 2-round horizon only the last two rounds' ids survive.
        for iface in net.interfaces:
            assert len(iface._seen) <= 2 * 3

    def test_disabled_horizon_keeps_everything(self):
        env = Environment()
        rng = np.random.default_rng(0)
        net = GossipNetwork(env, 10, rng, UniformLatencyModel(0.01),
                            seen_horizon_rounds=None)
        total = 0
        for _ in range(4):
            net.interfaces[0].broadcast(
                Envelope(origin=b"o", kind="t", payload=None, size=50))
            total += 1
            env.run()
            net.end_round()
        assert len(net.interfaces[0]._seen) == total

    def test_invalid_horizon_rejected(self):
        env = Environment()
        rng = np.random.default_rng(0)
        with pytest.raises(NetworkError):
            GossipNetwork(env, 4, rng, UniformLatencyModel(0.01),
                          seen_horizon_rounds=0)

    def test_prune_keeps_recent_ids(self):
        env, net = _network(10)
        envelope = Envelope(origin=b"o", kind="t", payload=None, size=50)
        net.interfaces[0].broadcast(envelope)
        env.run()
        net.end_round()
        net.end_round()  # envelope now beyond the 2-round horizon
        net.end_round()
        for iface in net.interfaces:
            assert envelope.msg_id not in iface._seen
        # A pruned duplicate is re-accepted once instead of crashing.
        net.interfaces[0].broadcast(envelope)
        env.run()
        assert envelope.msg_id in net.interfaces[1]._seen
