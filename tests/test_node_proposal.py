"""Tests for block proposal: priorities, announcements, the tracker."""

from __future__ import annotations

import pytest

from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.ledger.block import Block
from repro.node.proposal import (
    PriorityMessage,
    ProposalTracker,
    block_priority,
    make_priority_message,
    priority_of_subuser,
)
from repro.sim.loop import Environment
from repro.sortition.roles import proposer_role
from repro.sortition.selection import sortition


@pytest.fixture
def backend():
    return FastBackend()


def _select_proposer(backend, tau=50, total=100):
    """Find a keypair that sortition selects as proposer for round 1."""
    for i in range(64):
        kp = backend.keypair(H(b"prop", bytes([i])))
        proof = sortition(backend, kp.secret, b"seed", tau,
                          proposer_role(1), total, total)
        if proof.j > 0:
            return kp, proof
    pytest.fail("no proposer selected in 64 tries")


def _block(proposer_pk, round_number=1, tag=b"x"):
    return Block(round_number=round_number, prev_hash=H(b"prev"),
                 timestamp=1.0, seed=H(b"s"), seed_proof=b"p",
                 proposer=proposer_pk, proposer_vrf_hash=H(tag),
                 proposer_vrf_proof=b"pf", proposer_priority=H(tag),
                 transactions=())


class TestPriorities:
    def test_subuser_priorities_distinct(self):
        priorities = {priority_of_subuser(H(b"vrf"), j) for j in range(1, 9)}
        assert len(priorities) == 8

    def test_block_priority_is_max(self):
        vrf_hash = H(b"vrf")
        assert block_priority(vrf_hash, 5) == max(
            priority_of_subuser(vrf_hash, j) for j in range(1, 6))

    def test_block_priority_needs_selection(self):
        with pytest.raises(ValueError):
            block_priority(H(b"vrf"), 0)

    def test_more_subusers_never_lowers_priority(self):
        vrf_hash = H(b"vrf")
        assert block_priority(vrf_hash, 10) >= block_priority(vrf_hash, 2)


class TestPriorityMessage:
    def test_verify_roundtrip(self, backend):
        kp, proof = _select_proposer(backend)
        message = make_priority_message(kp.public, 1, proof)
        assert message.verify(backend, b"seed", 50, 100, 100)

    def test_verify_rejects_inflated_subusers(self, backend):
        kp, proof = _select_proposer(backend)
        message = make_priority_message(kp.public, 1, proof)
        inflated = PriorityMessage(
            proposer=message.proposer, round_number=1,
            vrf_hash=message.vrf_hash, vrf_proof=message.vrf_proof,
            sub_users=message.sub_users + 1, priority=message.priority)
        assert not inflated.verify(backend, b"seed", 50, 100, 100)

    def test_verify_rejects_forged_priority(self, backend):
        kp, proof = _select_proposer(backend)
        message = make_priority_message(kp.public, 1, proof)
        forged = PriorityMessage(
            proposer=message.proposer, round_number=1,
            vrf_hash=message.vrf_hash, vrf_proof=message.vrf_proof,
            sub_users=message.sub_users, priority=b"\xff" * 32)
        assert not forged.verify(backend, b"seed", 50, 100, 100)

    def test_verify_rejects_wrong_round(self, backend):
        kp, proof = _select_proposer(backend)
        message = make_priority_message(kp.public, 1, proof)
        relabeled = PriorityMessage(
            proposer=message.proposer, round_number=2,
            vrf_hash=message.vrf_hash, vrf_proof=message.vrf_proof,
            sub_users=message.sub_users, priority=message.priority)
        assert not relabeled.verify(backend, b"seed", 50, 100, 100)


class TestProposalTracker:
    def _message(self, proposer, priority):
        return PriorityMessage(proposer=proposer, round_number=1,
                               vrf_hash=H(b"v"), vrf_proof=b"p",
                               sub_users=1, priority=priority)

    def test_best_priority_tracking(self):
        env = Environment()
        tracker = ProposalTracker(1)
        low = self._message(b"low", b"\x01" * 32)
        high = self._message(b"high", b"\xfe" * 32)
        assert tracker.observe_priority(low, env)
        assert tracker.observe_priority(high, env)
        assert not tracker.observe_priority(low, env)
        assert tracker.best_priority is high

    def test_best_block_matches_best_priority(self):
        env = Environment()
        tracker = ProposalTracker(1)
        tracker.observe_priority(self._message(b"A", b"\x02" * 32), env)
        tracker.observe_priority(self._message(b"B", b"\xfd" * 32), env)
        block_a = _block(b"A", tag=b"a")
        block_b = _block(b"B", tag=b"b")
        tracker.observe_block(block_a, env)
        tracker.observe_block(block_b, env)
        assert tracker.best_block() is block_b

    def test_relay_only_best_proposer_blocks(self):
        env = Environment()
        tracker = ProposalTracker(1)
        tracker.observe_priority(self._message(b"B", b"\xfd" * 32), env)
        assert not tracker.observe_block(_block(b"A", tag=b"a"), env)
        assert tracker.observe_block(_block(b"B", tag=b"b"), env)

    def test_equivocating_proposer_discarded(self):
        """Two different blocks from one proposer: discard both and
        everything later from that proposer (section 10.4)."""
        env = Environment()
        tracker = ProposalTracker(1)
        tracker.observe_priority(self._message(b"E", b"\xfe" * 32), env)
        first = _block(b"E", tag=b"v1")
        second = _block(b"E", tag=b"v2")
        assert tracker.observe_block(first, env)
        assert not tracker.observe_block(second, env)
        assert b"E" in tracker.equivocators
        assert tracker.best_block() is None
        # Re-sending the first version does not rehabilitate them.
        assert not tracker.observe_block(first, env)

    def test_same_block_twice_is_not_equivocation(self):
        env = Environment()
        tracker = ProposalTracker(1)
        tracker.observe_priority(self._message(b"A", b"\xfe" * 32), env)
        block = _block(b"A")
        tracker.observe_block(block, env)
        tracker.observe_block(block, env)
        assert b"A" not in tracker.equivocators

    def test_signals_pulse_on_new_information(self):
        env = Environment()
        tracker = ProposalTracker(1)
        priority_signal, block_signal = tracker.signals(env)
        got = []

        def wait_priority():
            yield priority_signal.next_event()
            got.append("priority")

        def wait_block():
            yield block_signal.next_event()
            got.append("block")

        env.process(wait_priority())
        env.process(wait_block())
        env.schedule(1, lambda: tracker.observe_priority(
            self._message(b"A", b"\x80" * 32), env))
        env.schedule(2, lambda: tracker.observe_block(_block(b"A"), env))
        env.run()
        assert got == ["priority", "block"]
