"""Tests for the op-counting backend wrapper."""

from __future__ import annotations

import pytest

from repro.common.errors import SignatureError
from repro.crypto.backend import FastBackend
from repro.crypto.counting import CountingBackend, CryptoOpCounts
from repro.crypto.hashing import H


@pytest.fixture
def counting():
    return CountingBackend(FastBackend())


class TestCounting:
    def test_all_operations_counted(self, counting):
        kp = counting.keypair(H(b"c-user"))
        signature = counting.sign(kp.secret, b"m")
        counting.verify(kp.public, b"m", signature)
        vrf_hash, proof = counting.vrf_prove(kp.secret, b"a")
        counting.vrf_verify(kp.public, proof, b"a")
        counts = counting.counts
        assert counts.keypairs == 1
        assert counts.signs == 1
        assert counts.verifies == 1
        assert counts.vrf_proves == 1
        assert counts.vrf_verifies == 1
        assert counts.total_verifications == 2

    def test_failed_verify_still_counted(self, counting):
        kp = counting.keypair(H(b"c-user"))
        with pytest.raises(SignatureError):
            counting.verify(kp.public, b"m", b"\x00" * 32)
        assert counting.counts.verifies == 1

    def test_results_delegate_to_inner(self, counting):
        inner = counting.inner
        kp = counting.keypair(H(b"c-user"))
        assert counting.sign(kp.secret, b"m") == inner.sign(kp.secret, b"m")
        assert counting.vrf_prove(kp.secret, b"x") == inner.vrf_prove(
            kp.secret, b"x")

    def test_cpu_estimate_scales_with_ops(self):
        few = CryptoOpCounts(verifies=10)
        many = CryptoOpCounts(verifies=1000)
        assert many.cpu_seconds() == pytest.approx(100 * few.cpu_seconds())

    def test_name_reflects_inner(self, counting):
        assert "fast" in counting.name
