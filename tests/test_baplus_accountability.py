"""Tests for misbehavior detection ('detect and punish', section 2)."""

from __future__ import annotations

import pytest

from repro.adversary import MaliciousNode
from repro.baplus.accountability import (
    DoubleVoteEvidence,
    find_double_votes,
    find_equivocations,
    scan_buffer,
)
from repro.baplus.messages import make_vote
from repro.crypto.backend import FastBackend
from repro.crypto.hashing import H
from repro.experiments.harness import Simulation, SimulationConfig
from repro.ledger.block import Block


@pytest.fixture
def backend():
    return FastBackend()


def _vote(backend, kp, value, round_number=1, step="1"):
    return make_vote(backend, kp.secret, kp.public, round_number, step,
                     H(b"sort"), b"proof", H(b"prev"), value)


class TestDoubleVoteDetection:
    def test_conflicting_pair_detected(self, backend):
        kp = backend.keypair(H(b"offender"))
        votes = [_vote(backend, kp, H(b"a")), _vote(backend, kp, H(b"b"))]
        evidence = find_double_votes(votes, backend)
        assert len(evidence) == 1
        assert evidence[0].offender == kp.public
        assert evidence[0].verify(backend)

    def test_consistent_voter_clean(self, backend):
        kp = backend.keypair(H(b"honest"))
        votes = [_vote(backend, kp, H(b"a")), _vote(backend, kp, H(b"a"))]
        assert find_double_votes(votes, backend) == []

    def test_different_steps_not_conflicting(self, backend):
        kp = backend.keypair(H(b"honest"))
        votes = [_vote(backend, kp, H(b"a"), step="1"),
                 _vote(backend, kp, H(b"b"), step="2")]
        assert find_double_votes(votes, backend) == []

    def test_forged_votes_prove_nothing(self, backend):
        """Unsigned claims must never implicate anyone."""
        kp = backend.keypair(H(b"victim"))
        genuine = _vote(backend, kp, H(b"a"))
        forged = make_vote(backend, backend.keypair(H(b"attacker")).secret,
                           kp.public, 1, "1", H(b"sort"), b"proof",
                           H(b"prev"), H(b"b"))
        assert find_double_votes([genuine, forged], backend) == []

    def test_one_report_per_offender_slot(self, backend):
        kp = backend.keypair(H(b"offender"))
        votes = [_vote(backend, kp, H(bytes([i]))) for i in range(4)]
        assert len(find_double_votes(votes, backend)) == 1

    def test_evidence_verify_rejects_mismatch(self, backend):
        kp1 = backend.keypair(H(b"o1"))
        kp2 = backend.keypair(H(b"o2"))
        bogus = DoubleVoteEvidence(
            offender=kp1.public, round_number=1, step="1",
            first=_vote(backend, kp1, H(b"a")),
            second=_vote(backend, kp2, H(b"b")))
        assert not bogus.verify(backend)


class TestEquivocationDetection:
    def _block(self, proposer, tag):
        return Block(round_number=1, prev_hash=H(b"p"), timestamp=1.0,
                     seed=H(b"s"), seed_proof=b"sp", proposer=proposer,
                     proposer_vrf_hash=H(tag), proposer_vrf_proof=b"v",
                     proposer_priority=H(tag), transactions=())

    def test_two_versions_detected(self):
        blocks = [self._block(b"P", b"v1"), self._block(b"P", b"v2")]
        evidence = find_equivocations(blocks)
        assert len(evidence) == 1
        assert evidence[0].conflicting

    def test_same_block_twice_clean(self):
        block = self._block(b"P", b"v1")
        assert find_equivocations([block, block]) == []

    def test_empty_blocks_ignored(self):
        from repro.ledger.block import empty_block
        assert find_equivocations([empty_block(1, H(b"p"))] * 2) == []


class TestLiveAttackForensics:
    def test_figure8_attack_leaves_evidence(self):
        """Running the Figure 8 adversary, pooling a few honest nodes'
        vote buffers yields verifiable double-vote evidence against
        (only) the malicious keys.

        A *single* node cannot see the conflict — the section 8.4 relay
        rule keeps only the first vote per key per step — but different
        nodes keep different halves of the equivocation, so any two
        honest users comparing notes can convict the offenders. This is
        exactly why the paper calls detect-and-punish a straightforward
        extension.
        """
        sim = Simulation(
            SimulationConfig(num_users=16, seed=97, num_malicious=3),
            malicious_class=MaliciousNode)
        processes = [node.start(1) for node in sim.nodes]
        # Stop before the round completes so buffers are unpruned.
        sim.env.run(until=300.0,
                    stop_when=lambda: all(p.done for p in processes))

        malicious_keys = {node.keypair.public for node in sim.nodes[13:]}
        steps = ["reduction_one", "reduction_two"] + [
            str(s) for s in range(1, 6)] + ["final"]

        # Single node: the relay dedup hides the conflict.
        single = scan_buffer(sim.nodes[0].buffer, 1, steps, sim.backend)
        assert single == []

        # Pooled honest views: the conflict is exposed and verifiable.
        pooled = [
            vote
            for node in sim.nodes[:13]
            for step in steps
            for vote in node.buffer.messages(1, step)
        ]
        evidence = find_double_votes(pooled, sim.backend)
        offenders = {e.offender for e in evidence}
        assert offenders  # the attack actually left traces
        assert offenders <= malicious_keys
        for item in evidence:
            assert item.verify(sim.backend)
