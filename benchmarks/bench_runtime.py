"""E13 — message-path runtime microbenchmark.

Unlike E1–E12 this does not reproduce a paper figure: it measures the
*simulator itself* — wall-clock and events/sec for a 200-user × 5-round
deployment — and records the result in ``BENCH_runtime.json`` at the
repo root. The committed baseline is the same run measured before the
message-path runtime landed (routed dispatch, shared verification
cache, immediate queue, batched arrivals); the acceptance bar for that
refactor was a ≥2x wall-clock speedup.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_table

from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.metrics import format_table

#: Pre-refactor wall-clock of this exact workload (200 users, 5 rounds,
#: seed 1, 200 payments), measured on the reference container at commit
#: e611324 before the runtime refactor.
BASELINE_WALL_SECONDS = 450.9

NUM_USERS = 200
ROUNDS = 5
SEED = 1
PAYMENTS = 200

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _workload() -> tuple[Simulation, float]:
    start = time.perf_counter()
    sim = Simulation(SimulationConfig(num_users=NUM_USERS, seed=SEED))
    sim.submit_payments(PAYMENTS)
    sim.run_rounds(ROUNDS)
    return sim, time.perf_counter() - start


def test_runtime_throughput(benchmark):
    sim, wall = benchmark.pedantic(_workload, rounds=1, iterations=1)

    assert sim.all_chains_equal()
    events = sim.env.events_processed
    cache = sim.verification_cache.stats()
    speedup = BASELINE_WALL_SECONDS / wall
    result = {
        "workload": {
            "num_users": NUM_USERS,
            "rounds": ROUNDS,
            "seed": SEED,
            "payments": PAYMENTS,
        },
        "wall_seconds": round(wall, 2),
        "events_processed": events,
        "events_per_second": round(events / wall),
        "messages_delivered": sim.network.messages_delivered,
        "simulated_seconds": round(sim.env.now, 3),
        "verification_cache": cache,
        "baseline_wall_seconds": BASELINE_WALL_SECONDS,
        "speedup_vs_baseline": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    rows = [
        ["wall clock", f"{wall:.1f} s",
         f"baseline {BASELINE_WALL_SECONDS:.1f} s"],
        ["speedup", f"{speedup:.2f}x", "bar: >= 2x"],
        ["events/sec", f"{events / wall:,.0f}", f"{events:,} events"],
        ["messages delivered", f"{sim.network.messages_delivered:,}", ""],
        ["cache hit rate", f"{cache['hit_rate']:.3f}",
         f"{cache['hits']:,} hits / {cache['misses']:,} misses"],
    ]
    print_table("Runtime: 200 users x 5 rounds",
                format_table(["metric", "value", "note"], rows))

    assert speedup >= 2.0, (
        f"runtime refactor regressed: {wall:.1f}s vs "
        f"{BASELINE_WALL_SECONDS:.1f}s baseline ({speedup:.2f}x)"
    )
