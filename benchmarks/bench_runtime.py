"""E13 — message-path runtime microbenchmark.

Unlike E1–E12 this does not reproduce a paper figure: it measures the
*simulator itself* — wall-clock and events/sec for a 200-user × 5-round
deployment — and records the result in ``BENCH_runtime.json`` at the
repo root. The committed baseline is the same run measured before the
message-path runtime landed (routed dispatch, shared verification
cache, immediate queue, batched arrivals); the acceptance bar for that
refactor was a ≥2x wall-clock speedup.

A second benchmark measures the observability layer on a scaled-down
workload, recorded as ``obs_overhead``:

* **guard cost** (the "<3% when disabled" budget): the run with the
  dormant ``obs is not None`` guards present vs. surgically stripped
  (reference copies of the two hottest guarded methods monkeypatched
  in).
* **tracing cost**: the same run with a live ``TraceBus`` vs. without;
* **conformance cost** (the "<10% over tracing" budget): tracing plus
  the online :class:`repro.conformance.ConformanceMonitor` vs. tracing
  alone — plus a check that all four variants commit byte-identical
  chains.

Methodology: each variant runs in a *fresh subprocess* and reports
process CPU time, min of 2. Wall clock on a shared machine swings >15%
between identical back-to-back runs, and sequential runs in one process
contaminate each other through heap growth and GC — both effects dwarf
the few-percent deltas measured here.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import print_table

from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.metrics import format_table

#: Pre-refactor wall-clock of this exact workload (200 users, 5 rounds,
#: seed 1, 200 payments), measured on the reference container at commit
#: e611324 before the runtime refactor.
BASELINE_WALL_SECONDS = 450.9


NUM_USERS = 200
ROUNDS = 5
SEED = 1
PAYMENTS = 200

#: Scaled-down workload for the paired tracing-off/on comparison.
OBS_USERS = 60
OBS_ROUNDS = 3
OBS_SEED = 11
OBS_PAYMENTS = 60

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
SRC_PATH = Path(__file__).resolve().parent.parent / "src"


def _warmup() -> None:
    """Touch every hot code path once before timing anything.

    The first simulation in a process pays import, bytecode-cache, and
    allocator warmup that can swamp a few-percent effect; both timed
    workloads below run after this.
    """
    sim = Simulation(SimulationConfig(num_users=20, seed=2))
    sim.submit_payments(10)
    sim.run_rounds(1)


def _workload() -> tuple[Simulation, float]:
    start = time.perf_counter()
    sim = Simulation(SimulationConfig(num_users=NUM_USERS, seed=SEED))
    sim.submit_payments(PAYMENTS)
    sim.run_rounds(ROUNDS)
    return sim, time.perf_counter() - start


#: Runs one variant of the obs workload in a fresh interpreter and
#: prints a JSON result line. Isolation matters: sequential simulations
#: in one process contaminate each other (heap growth, GC, allocator
#: state) by far more than the few-percent effects measured here.
#: ``stripped`` swaps in pre-instrumentation copies of the two hottest
#: guarded methods (gossip delivery, router dispatch) so the cost of
#: the dormant guards themselves is the only difference vs ``disabled``.
_VARIANT_SCRIPT = """\
import gc, json, sys, time

mode = sys.argv[1]
users, rounds, seed, payments = (int(x) for x in sys.argv[2:6])

from repro.experiments.harness import Simulation, SimulationConfig

if mode == "stripped":
    from repro.network.gossip import NetworkInterface
    from repro.runtime.router import MessageRouter

    def deliver_plain(self, envelope, from_index):
        if self.disconnected or envelope.msg_id in self._seen:
            return
        self._seen.add(envelope.msg_id)
        self.inbox.append(envelope)
        self.receive_signal.pulse()
        if self.relay_policy(envelope):
            self._send_to_neighbors(envelope, exclude=from_index)

    def dispatch_plain(self, envelope):
        handler = self._handlers.get(envelope.kind)
        if handler is None:
            self.unknown_kinds += 1
            return False
        return handler(envelope.payload)

    NetworkInterface._deliver = deliver_plain
    MessageRouter.dispatch = dispatch_plain

bus = None
if mode in ("enabled", "monitored"):
    from repro.obs import TraceBus
    bus = TraceBus()
# "enabled" measures tracing alone; "monitored" additionally leaves the
# auto-attached conformance monitor on (the default whenever a bus is
# supplied), so monitored-vs-enabled is the reference machine's cost.
conformance = "auto" if mode == "monitored" else False

warm = Simulation(SimulationConfig(num_users=20, seed=2))
warm.submit_payments(10)
warm.run_rounds(1)
del warm
gc.collect()

start = time.process_time()
sim = Simulation(SimulationConfig(num_users=users, seed=seed,
                                  conformance=conformance), obs=bus)
sim.submit_payments(payments)
sim.run_rounds(rounds)
cpu = time.process_time() - start

out = {
    "cpu": cpu,
    "chains_equal": sim.all_chains_equal(),
    "chains": [sim.nodes[0].chain.block_at(r).block_hash.hex()
               for r in range(1, rounds + 1)],
}
if bus is not None:
    out["trace_events"] = len(bus.events)
    out["metric_counters"] = len(bus.snapshot()["counters"])
if sim.conformance is not None:
    verdict = sim.conformance.verdict()
    out["conformance_ok"] = verdict.ok
    out["conformance_events"] = verdict.events_checked
print(json.dumps(out))
"""


def _run_variant(mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_PATH)
    proc = subprocess.run(
        [sys.executable, "-c", _VARIANT_SCRIPT, mode,
         str(OBS_USERS), str(OBS_ROUNDS), str(OBS_SEED),
         str(OBS_PAYMENTS)],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise AssertionError(
            f"{mode} variant subprocess failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def test_runtime_throughput(benchmark):
    _warmup()
    # Min of two runs: single measurements of this workload swing by
    # more than the effects tracked here on a shared machine.
    runs = benchmark.pedantic(lambda: [_workload(), _workload()],
                              rounds=1, iterations=1)
    sim, wall = min(runs, key=lambda run: run[1])

    assert sim.all_chains_equal()
    events = sim.env.events_processed
    cache = sim.verification_cache.stats()
    speedup = BASELINE_WALL_SECONDS / wall
    result = {
        "workload": {
            "num_users": NUM_USERS,
            "rounds": ROUNDS,
            "seed": SEED,
            "payments": PAYMENTS,
        },
        "wall_seconds": round(wall, 2),
        "events_processed": events,
        "events_per_second": round(events / wall),
        "messages_delivered": sim.network.messages_delivered,
        "simulated_seconds": round(sim.env.now, 3),
        "verification_cache": cache,
        "baseline_wall_seconds": BASELINE_WALL_SECONDS,
        "speedup_vs_baseline": round(speedup, 2),
    }
    _merge_result(result)

    rows = [
        ["wall clock", f"{wall:.1f} s",
         f"baseline {BASELINE_WALL_SECONDS:.1f} s"],
        ["speedup", f"{speedup:.2f}x", "bar: >= 2x"],
        ["events/sec", f"{events / wall:,.0f}", f"{events:,} events"],
        ["messages delivered", f"{sim.network.messages_delivered:,}", ""],
        ["cache hit rate", f"{cache['hit_rate']:.3f}",
         f"{cache['hits']:,} hits / {cache['misses']:,} misses"],
    ]
    print_table("Runtime: 200 users x 5 rounds",
                format_table(["metric", "value", "note"], rows))

    assert speedup >= 2.0, (
        f"runtime refactor regressed: {wall:.1f}s vs "
        f"{BASELINE_WALL_SECONDS:.1f}s baseline ({speedup:.2f}x)"
    )


def _merge_result(update: dict) -> None:
    """Fold a test's results into BENCH_runtime.json, keeping the keys
    that other tests in this file own."""
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    existing.update(update)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_obs_overhead(benchmark):
    modes = ("stripped", "disabled", "enabled", "monitored")

    def _measure():
        runs = {mode: [] for mode in modes}
        for _ in range(2):
            for mode in modes:
                runs[mode].append(_run_variant(mode))
        return runs

    runs = benchmark.pedantic(_measure, rounds=1, iterations=1)
    best = {mode: min(results, key=lambda r: r["cpu"])
            for mode, results in runs.items()}

    # guards and tracing must both be pure observers: every run of
    # every variant commits the exact same chain
    reference = best["disabled"]["chains"]
    for mode in modes:
        for run in runs[mode]:
            assert run["chains_equal"], f"{mode}: nodes diverged"
            assert run["chains"] == reference, f"{mode}: chain changed"

    cpu_stripped = best["stripped"]["cpu"]
    cpu_off = best["disabled"]["cpu"]
    cpu_on = best["enabled"]["cpu"]
    cpu_monitored = best["monitored"]["cpu"]
    guard_cost = cpu_off / cpu_stripped - 1
    tracing_cost = cpu_on / cpu_off - 1
    monitor_cost = cpu_monitored / cpu_on - 1
    trace_events = best["enabled"]["trace_events"]
    metric_counters = best["enabled"]["metric_counters"]
    assert best["monitored"]["conformance_ok"], (
        "benchmark run violated the reference machine")
    _merge_result({
        "obs_overhead": {
            "workload": {
                "num_users": OBS_USERS,
                "rounds": OBS_ROUNDS,
                "seed": OBS_SEED,
                "payments": OBS_PAYMENTS,
            },
            "method": "process CPU time, fresh subprocess per run, "
                      "min of 2",
            "stripped_cpu_seconds": round(cpu_stripped, 2),
            "disabled_cpu_seconds": round(cpu_off, 2),
            "enabled_cpu_seconds": round(cpu_on, 2),
            "monitored_cpu_seconds": round(cpu_monitored, 2),
            "guard_overhead_disabled": round(guard_cost, 4),
            "tracing_overhead_enabled": round(tracing_cost, 4),
            "monitor_overhead_vs_tracing": round(monitor_cost, 4),
            "conformance_events_checked":
                best["monitored"]["conformance_events"],
            "trace_events": trace_events,
            "metric_counters": metric_counters,
            "chains_identical": True,
        },
    })

    rows = [
        ["guards stripped", f"{cpu_stripped:.2f} cpu-s",
         "pre-obs reference methods"],
        ["tracing off", f"{cpu_off:.2f} cpu-s",
         f"dormant guards: {guard_cost:+.1%} (budget <3%)"],
        ["tracing on", f"{cpu_on:.2f} cpu-s",
         f"{tracing_cost:+.1%}; {trace_events} events, "
         f"{metric_counters} counters"],
        ["conformance on", f"{cpu_monitored:.2f} cpu-s",
         f"{monitor_cost:+.1%} vs tracing (budget <10%); "
         f"{best['monitored']['conformance_events']} events checked"],
        ["chains identical", "yes", "instrumentation is a pure observer"],
    ]
    print_table("Observability overhead: 60 users x 3 rounds",
                format_table(["metric", "value", "note"], rows))

    assert monitor_cost < 0.10, (
        f"conformance monitor overhead {monitor_cost:+.1%} exceeds the "
        f"10% budget over tracing-only")
