"""E7 — Figure 8: latency under actively malicious users.

Paper: the highest-priority proposer equivocates and malicious committee
members double-vote; malicious stake sweeps 0-20%. Result: latency is
"not significantly affected" and safety holds throughout.
"""

from __future__ import annotations

from conftest import print_table

from repro.experiments.adversarial import figure8
from repro.experiments.metrics import format_table

FRACTIONS = [0.0, 0.10, 0.20]


def _run():
    return figure8(FRACTIONS, num_users=20, seed=700)


def test_figure8_malicious_users(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[f"{p.malicious_fraction:.0%}", p.num_malicious]
            + list(p.summary.row().values()) + [p.empty_rounds]
            for p in points]
    print_table(
        "Figure 8: honest round latency vs malicious stake",
        format_table(["malicious", "#bad", "min", "p25", "median",
                      "p75", "max", "empty rounds"], rows))

    # Safety at every fraction: honest nodes never commit two different
    # blocks for the same round.
    for point in points:
        assert point.agreed

    # The paper's liveness observation: latency under attack stays within
    # a small multiple of the honest baseline (no blow-up to timeout
    # cascades).
    baseline = points[0].summary.median
    for point in points[1:]:
        assert point.summary.median < 25 * baseline
        assert point.summary.maximum < 120.0
