"""E9 — Figure 4: the implementation parameter table, cross-checked.

Not a measurement but a reproduction artifact: the canonical parameter
set, with each analytically-derived entry re-derived by our analysis
package (committee sizes from Appendix B, thresholds, certificate
forgery margins from section 8.3).
"""

from __future__ import annotations

import math

from conftest import print_table

from repro.analysis.committee import (
    certificate_forgery_log2,
    check_paper_step_parameters,
    committee_size_for,
    final_step_safety,
)
from repro.common.params import PAPER_PARAMS
from repro.experiments.metrics import format_table


def _cross_check():
    return {
        "step_violation": check_paper_step_parameters(),
        "final_violation": final_step_safety(),
        "solver_tau": committee_size_for(0.80)[0],
        "forgery_log2": certificate_forgery_log2(tau=1000,
                                                 threshold=0.685),
    }


def test_figure4_parameter_table(benchmark):
    derived = benchmark.pedantic(_cross_check, rounds=1, iterations=1)

    p = PAPER_PARAMS
    rows = [
        ["h", f"{p.honest_fraction:.0%}", "assumption"],
        ["R", p.seed_refresh_interval, "section 5.2"],
        ["tau_proposer", p.tau_proposer, "appendix B.1"],
        ["tau_step", p.tau_step,
         f"solver: {derived['solver_tau']} (appendix B.2)"],
        ["T_step", p.t_step,
         f"violation {derived['step_violation']:.1e} ~ 5e-9"],
        ["tau_final", p.tau_final, "appendix C.1"],
        ["T_final", p.t_final,
         f"violation {derived['final_violation']:.1e}"],
        ["MaxSteps", p.max_steps, "appendix C.1"],
        ["lambda_priority", f"{p.lambda_priority:.0f} s", "section 10.5"],
        ["lambda_block", f"{p.lambda_block:.0f} s", "section 10.5"],
        ["lambda_step", f"{p.lambda_step:.0f} s", "section 10.5"],
        ["lambda_stepvar", f"{p.lambda_stepvar:.0f} s", "section 10.5"],
    ]
    print_table("Figure 4: implementation parameters (with re-derivations)",
                format_table(["parameter", "value", "source/check"], rows))

    # Appendix B re-derivation must agree with Figure 4's tau_step.
    assert abs(derived["solver_tau"] - p.tau_step) / p.tau_step < 0.1
    # The chosen (tau, T) achieves the advertised 5e-9 regime.
    assert derived["step_violation"] < 1e-8
    # Final step is strictly safer than ordinary steps.
    assert derived["final_violation"] < derived["step_violation"]
    # Certificate forgery beyond the paper's 2^-166 bound.
    assert derived["forgery_log2"] < -166
    assert math.isfinite(derived["forgery_log2"])
