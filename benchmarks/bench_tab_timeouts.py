"""E8 — Section 10.5: validating the timeout parameters.

Paper: BA* steps complete well under lambda_step (20 s); the 25th-75th
percentile spread of BA* completion is under lambda_stepvar (5 s); blocks
gossip within lambda_block (1 min); priority messages propagate in ~1 s,
well under lambda_priority (5 s).
"""

from __future__ import annotations

from conftest import print_table

from repro.experiments.metrics import format_table
from repro.experiments.timeouts import measure_priority_gossip, measure_timeouts


def _run():
    return measure_timeouts(40, rounds=3, seed=800)


def test_timeout_parameters(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        ["BA* step p99", f"{report.step_p99:.2f} s",
         f"lambda_step = {report.lambda_step:.0f} s",
         "OK" if report.steps_within_budget else "VIOLATED"],
        ["BA* completion IQR", f"{report.ba_iqr:.2f} s",
         f"lambda_stepvar = {report.lambda_stepvar:.0f} s",
         "OK" if report.variance_within_budget else "VIOLATED"],
        ["block obtained p99", f"{report.proposal_p99:.2f} s",
         f"budget = {report.lambda_block_budget:.0f} s",
         "OK" if report.proposals_within_budget else "VIOLATED"],
    ]
    print_table("Section 10.5: measured timings vs configured budgets",
                format_table(["quantity", "measured", "budget", "verdict"],
                             rows))

    assert report.steps_within_budget
    assert report.variance_within_budget
    assert report.proposals_within_budget


def test_priority_gossip_time(benchmark):
    """Priority/proof messages (200 B) flood the network in ~1 s."""
    seconds = benchmark.pedantic(
        lambda: measure_priority_gossip(60, seed=801),
        rounds=1, iterations=1)
    print_table("Section 10.5: priority message propagation",
                f"200 B to all of 60 users: {seconds:.2f} s "
                f"(lambda_priority budget: 5 s)")
    assert seconds < 5.0
