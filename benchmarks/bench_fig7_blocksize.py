"""E4 — Figure 7: latency breakdown as a function of block size.

Paper: rounds split into block proposal / BA* without the final step /
the final step. BA* time is independent of block size (~12 s at full
scale); block-proposal time is flat for small blocks (dominated by the
lambda_priority + lambda_stepvar wait) and grows linearly once gossiping
the block dominates. We sweep a scaled size range and assert both
regimes.
"""

from __future__ import annotations

from conftest import print_table

from repro.experiments.metrics import format_table
from repro.experiments.throughput import figure7

BLOCK_SIZES = [1_000, 20_000, 80_000, 200_000]


def _run():
    return figure7(BLOCK_SIZES, seed=300, num_users=30)


def test_figure7_latency_vs_block_size(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[p.block_size, p.payload_committed,
             f"{p.proposal_time:.2f}", f"{p.ba_time:.2f}",
             f"{p.final_step_time:.2f}", f"{p.total:.2f}"]
            for p in points]
    print_table(
        "Figure 7: round segments (simulated s) vs block size",
        format_table(["block B", "payload B", "proposal", "BA*",
                      "final", "total"], rows))

    by_size = {p.block_size: p for p in points}

    # Blocks actually carry the configured payload (the sweep is real).
    for point in points[1:]:
        assert point.payload_committed > 0.5 * point.block_size

    # BA* agreement time is (nearly) independent of block size while the
    # proposal segment absorbs the growth — the paper's Figure 7 claim.
    # Concretely: across the sweep, the BA* segment moves by less than
    # the proposal segment does.
    ba_times = [p.ba_time for p in points]
    proposal_times = [p.proposal_time for p in points]
    ba_spread = max(ba_times) - min(ba_times)
    proposal_spread = max(proposal_times) - min(proposal_times)
    assert by_size[200_000].proposal_time > by_size[1_000].proposal_time
    assert ba_spread < max(proposal_spread, 0.5)

    # Total latency grows sub-linearly in block size: the fixed agreement
    # cost is amortized (the throughput argument of section 10.2).
    ratio = by_size[200_000].total / by_size[1_000].total
    assert ratio < 200_000 / 1_000
