"""E3 — Figure 6: scaling further under shared-host bandwidth contention.

Paper: 50,000-500,000 users by packing 500 user processes per VM. The
per-user bandwidth collapses (shared NIC) and lambda_step is raised; the
observed latency is ~4x Figure 5's, but the curve stays flat all the way
to 500,000 users. We reproduce the packing as a bandwidth divisor.
"""

from __future__ import annotations

from conftest import print_table

from repro.experiments.latency import figure5, figure6, flatness
from repro.experiments.metrics import format_table

USERS = [60, 120, 240]


def _run():
    return figure6(USERS, seed=200, packing=10)


def test_figure6_contended_scaling(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[p.num_users] + list(p.summary.row().values()) for p in points]
    print_table(
        "Figure 6: round latency under 10x bandwidth contention",
        format_table(["users", "min", "p25", "median", "p75", "max"],
                     rows))

    # Flat scaling persists under contention.
    assert flatness(points) < 2.0
    for point in points:
        assert point.summary.maximum < 120.0

    # Contention costs latency relative to the Figure 5 configuration at
    # the same population (the paper reports ~4x; we assert 'strictly
    # slower', since our packing factor is milder).
    baseline = figure5([120], seed=100, payload_bytes=40_000)[0]
    contended = next(p for p in points if p.num_users == 120)
    assert contended.summary.median > baseline.summary.median
