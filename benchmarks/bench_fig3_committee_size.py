"""E1 — Figure 3: committee size sufficient for 5e-9 safety, vs h.

Paper: the curve falls steeply from h=76% toward h=90%; at h=80% the
implementation picks tau_step = 2000 with T_step = 0.685 (the starred
point). Our solver recomputes the curve from the Poisson tail bounds.
"""

from __future__ import annotations

from conftest import print_table

from repro.analysis.committee import committee_size_for, figure3_curve
from repro.experiments.metrics import format_table

HONEST_FRACTIONS = [0.78, 0.80, 0.84, 0.88]


def _compute_curve():
    return figure3_curve(HONEST_FRACTIONS)


def test_figure3_committee_size(benchmark):
    points = benchmark.pedantic(_compute_curve, rounds=1, iterations=1)

    rows = [[f"{p.honest_fraction:.0%}", p.committee_size,
             f"{p.threshold:.3f}"] for p in points]
    print_table("Figure 3: committee size vs honest fraction (eps=5e-9)",
                format_table(["h", "tau", "T"], rows))

    # Shape: monotone decreasing, steep near 2/3 (the h=78% committee is
    # several times the h=88% one).
    sizes = [p.committee_size for p in points]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] > 3.0 * sizes[-1]
    assert sizes[0] > 1.3 * sizes[1]

    # The paper's starred point: tau ~ 2000 at h = 80%.
    at_80 = dict(zip(HONEST_FRACTIONS, points))[0.80]
    assert 1800 <= at_80.committee_size <= 2200
    assert abs(at_80.threshold - 0.685) < 0.03


def test_figure3_solver_single_point(benchmark):
    """Wall-clock cost of solving one curve point (the inner loop)."""
    tau, threshold = benchmark(committee_size_for, 0.85)
    assert 800 <= tau <= 1400
    assert 2 / 3 < threshold < 0.85
