"""E10 — Sections 1-2: the motivating comparisons.

Two tables the paper builds its case on:

* the **double-spend premise** — PoW needs ~6 blocks (~an hour) for
  merchant-grade confidence, reproduced from the exact Nakamoto/Rosenfeld
  race analysis;
* the **related-systems positioning** (section 2) — Bitcoin, Honey
  Badger, ByzCoin, Algorand across latency, throughput, decentralization,
  forks, and adaptive-adversary tolerance.
"""

from __future__ import annotations

from conftest import print_table

from repro.baselines.doublespend import (
    confirmations_needed,
    double_spend_probability,
    speedup_table,
)
from repro.baselines.related import algorand_profile, comparison_rows
from repro.experiments.metrics import format_table


def test_double_spend_premise(benchmark):
    rows = benchmark.pedantic(speedup_table, rounds=1, iterations=1)

    table = [[f"{row['q']:.0%}", row["z"],
              f"{row['bitcoin_wait_s'] / 60:.0f} min",
              f"{row['algorand_wait_s']:.0f} s",
              f"{row['speedup']:.0f}x"] for row in rows]
    print_table(
        "Sections 1-2: confirmation wait, Bitcoin vs Algorand (risk 0.1%)",
        format_table(["attacker q", "blocks", "bitcoin", "algorand",
                      "speedup"], table))

    # The paper's premise: ~6 blocks / ~an hour at the folklore q=10%.
    assert confirmations_needed(0.10, 1e-3) == 6
    # Exact race probability at the 6-block rule.
    assert 1e-4 < double_spend_probability(6, 0.10) < 1e-3
    # Algorand's one-round final consensus is >100x faster.
    assert all(row["speedup"] > 100 for row in rows)


def test_related_systems_positioning(benchmark):
    rows = benchmark.pedantic(comparison_rows, rounds=1, iterations=1)

    table = [[p.name, f"{p.latency_seconds:.0f} s",
              f"{p.throughput_bytes_per_sec / 1e3:.0f} KB/s",
              p.participants, p.decentralized, not p.forks_possible,
              p.adaptive_adversary] for p in rows]
    print_table(
        "Section 2: related systems (reported numbers)",
        format_table(["system", "latency", "throughput", "participants",
                      "open", "fork-free", "adaptive-adv"], table))

    algorand = algorand_profile()
    # The positioning claim: Algorand alone offers all three security
    # properties, at latency within the same order as the fastest
    # committee system and throughput within the same order as the best.
    assert algorand.latency_seconds <= 35.0
    others = [p for p in rows if p.name != "Algorand"]
    assert all(
        not (p.decentralized and not p.forks_possible
             and p.adaptive_adversary)
        for p in others)
    best_throughput = max(p.throughput_bytes_per_sec for p in others)
    assert algorand.throughput_bytes_per_sec > 0.5 * best_throughput
