"""Benchmark-suite configuration.

Every benchmark reproduces one table or figure from the paper's
evaluation (section 10) or analysis (Figure 3). The simulations are
discrete-event runs, so the *benchmark timing* is the wall-clock cost of
reproducing the experiment; the *reproduced numbers* (simulated seconds,
bytes, ratios) are printed to stdout — run with ``-s`` to see the tables
— and asserted against the paper's qualitative shape.
"""

from __future__ import annotations


def print_table(title: str, text: str) -> None:
    print(f"\n=== {title} ===")
    print(text)
