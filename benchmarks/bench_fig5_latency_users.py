"""E2 — Figure 5: round latency with a growing user population.

Paper: 5,000-50,000 users, 1 MB blocks; latency stays well under a
minute and is near-constant in the number of users (committee costs
depend on tau, not N). We sweep a ~100x-scaled population with the
committee parameters held fixed and assert the same flatness.
"""

from __future__ import annotations

from conftest import print_table

from repro.experiments.latency import figure5, flatness
from repro.experiments.metrics import format_table

USERS = [30, 60, 120, 240]


def _run():
    return figure5(USERS, seed=100, payload_bytes=40_000)


def test_figure5_latency_vs_users(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[p.num_users] + list(p.summary.row().values())
            + [p.final_rounds, p.empty_rounds] for p in points]
    print_table(
        "Figure 5: round latency (simulated seconds) vs #users",
        format_table(["users", "min", "p25", "median", "p75", "max",
                      "final", "empty"], rows))

    # Liveness: every population agrees on a real (non-empty) block and
    # completes in simulated seconds well under the paper's minute.
    for point in points:
        assert point.summary.maximum < 60.0
        assert point.empty_rounds == 0
        assert point.final_rounds == point.num_users

    # The headline claim: near-constant latency as users grow (the paper's
    # curve moves by well under 2x over a 10x population range).
    assert flatness(points) < 2.0
