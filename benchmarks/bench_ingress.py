"""E14 — ingress admission benchmark.

Like E13 (``bench_runtime.py``) this measures the substrate, not a paper
figure: the cost and the payoff of the ``repro.runtime.admission``
ingress layer, recorded in ``BENCH_ingress.json`` at the repo root.

Two claims are checked:

* **Clean overhead** — on an honest workload, admission control is a
  pure gate: the committed chains are byte-identical with the layer on
  and off, and the extra CPU cost (per-vote dedup bookkeeping plus the
  memoized sortition check) stays within a 5% budget. Methodology as in
  E13: each variant in a fresh subprocess reporting process CPU time,
  min of 2 (sequential in-process runs contaminate each other through
  heap/GC state by more than the effect size).
* **Flooded containment** — under a 20%-Byzantine undecidable-message
  spam attack (``SpamVoteNode``: validly signed far-future votes, the
  hardest traffic to refuse), the bounded buffers keep every honest
  vote-buffer high-water mark inside its budget and the per-origin
  flood budget gets the spammers network-quarantined, while the same
  attack with admission off grows honest buffers well past that budget.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import print_table

from repro.adversary import SpamVoteNode
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.metrics import format_table
from repro.runtime.admission import AdmissionConfig

#: Clean-overhead workload (the E13 obs-overhead workload, for direct
#: comparability of the CPU numbers).
NUM_USERS = 60
ROUNDS = 3
SEED = 11
PAYMENTS = 60

#: Flooded workload: 20% spammers, small budgets so both the eviction
#: and the flood-quarantine paths engage within two rounds.
FLOOD_USERS = 10
FLOOD_MALICIOUS = 2
FLOOD_SEED = 61
FLOOD_ROUNDS = 2
FLOOD_BUFFER_BUDGET = 128
FLOOD_BUDGET_PER_ROUND = 32

#: Acceptance bar: admission on a clean workload costs at most this.
CLEAN_OVERHEAD_BUDGET = 0.05

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingress.json"
SRC_PATH = Path(__file__).resolve().parent.parent / "src"

_VARIANT_SCRIPT = """\
import gc, json, sys, time

mode = sys.argv[1]
users, rounds, seed, payments = (int(x) for x in sys.argv[2:6])

from repro.experiments.harness import Simulation, SimulationConfig

warm = Simulation(SimulationConfig(num_users=20, seed=2))
warm.submit_payments(10)
warm.run_rounds(1)
del warm
gc.collect()

start = time.process_time()
sim = Simulation(SimulationConfig(num_users=users, seed=seed,
                                  use_admission=(mode == "on")))
sim.submit_payments(payments)
sim.run_rounds(rounds)
cpu = time.process_time() - start

out = {
    "cpu": cpu,
    "chains_equal": sim.all_chains_equal(),
    "chains": [sim.nodes[0].chain.block_at(r).block_hash.hex()
               for r in range(1, rounds + 1)],
    "simulated_seconds": round(sim.env.now, 6),
}
if mode == "on":
    out["admitted"] = sum(n.admission.admitted for n in sim.nodes)
    out["rejected"] = sum(sum(n.admission.rejected.values())
                          for n in sim.nodes)
    out["quarantines"] = sim.quarantine_directory.quarantines
print(json.dumps(out))
"""


def _run_variant(mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_PATH)
    proc = subprocess.run(
        [sys.executable, "-c", _VARIANT_SCRIPT, mode,
         str(NUM_USERS), str(ROUNDS), str(SEED), str(PAYMENTS)],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise AssertionError(
            f"{mode} variant subprocess failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def _merge_result(update: dict) -> None:
    """Fold a test's results into BENCH_ingress.json, keeping the keys
    that other tests in this file own."""
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    existing.update(update)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_ingress_clean_overhead(benchmark):
    modes = ("off", "on")

    def _measure():
        runs = {mode: [] for mode in modes}
        for _ in range(2):
            for mode in modes:
                runs[mode].append(_run_variant(mode))
        return runs

    runs = benchmark.pedantic(_measure, rounds=1, iterations=1)
    best = {mode: min(results, key=lambda r: r["cpu"])
            for mode, results in runs.items()}

    # Admission must be a pure gate for honest traffic: every run of
    # both variants commits the exact same chain.
    reference = best["off"]["chains"]
    for mode in modes:
        for run in runs[mode]:
            assert run["chains_equal"], f"{mode}: nodes diverged"
            assert run["chains"] == reference, f"{mode}: chain changed"

    cpu_off = best["off"]["cpu"]
    cpu_on = best["on"]["cpu"]
    overhead = cpu_on / cpu_off - 1
    _merge_result({
        "clean_overhead": {
            "workload": {
                "num_users": NUM_USERS,
                "rounds": ROUNDS,
                "seed": SEED,
                "payments": PAYMENTS,
            },
            "method": "process CPU time, fresh subprocess per run, "
                      "min of 2",
            "admission_off_cpu_seconds": round(cpu_off, 2),
            "admission_on_cpu_seconds": round(cpu_on, 2),
            "overhead": round(overhead, 4),
            "overhead_budget": CLEAN_OVERHEAD_BUDGET,
            "chains_identical": True,
            "simulated_seconds": best["on"]["simulated_seconds"],
            "admitted": best["on"]["admitted"],
            "rejected": best["on"]["rejected"],
            "quarantines": best["on"]["quarantines"],
        },
    })

    rows = [
        ["admission off", f"{cpu_off:.2f} cpu-s", ""],
        ["admission on", f"{cpu_on:.2f} cpu-s",
         f"{overhead:+.1%} (budget <={CLEAN_OVERHEAD_BUDGET:.0%})"],
        ["admitted / rejected",
         f"{best['on']['admitted']:,} / {best['on']['rejected']:,}",
         f"{best['on']['quarantines']} quarantines (must be 0)"],
        ["chains identical", "yes", "admission is a pure gate"],
    ]
    print_table("Ingress admission: clean overhead, 60 users x 3 rounds",
                format_table(["metric", "value", "note"], rows))

    assert best["on"]["quarantines"] == 0, "honest peer quarantined"
    assert overhead <= CLEAN_OVERHEAD_BUDGET, (
        f"admission overhead {overhead:+.1%} exceeds "
        f"{CLEAN_OVERHEAD_BUDGET:.0%} budget")


def _flooded_run(use_admission: bool) -> Simulation:
    admission = (AdmissionConfig(
        vote_buffer_budget=FLOOD_BUFFER_BUDGET,
        flood_budget_per_round=FLOOD_BUDGET_PER_ROUND)
        if use_admission else None)
    sim = Simulation(
        SimulationConfig(num_users=FLOOD_USERS, seed=FLOOD_SEED,
                         num_malicious=FLOOD_MALICIOUS,
                         use_admission=use_admission,
                         admission=admission),
        malicious_class=SpamVoteNode)
    processes = [node.start(FLOOD_ROUNDS) for node in sim.nodes]
    honest = processes[:FLOOD_USERS - FLOOD_MALICIOUS]
    sim.env.run(until=900.0, stop_when=lambda: all(p.done for p in honest))
    assert all(p.done for p in honest), "honest nodes failed to commit"
    return sim


def test_ingress_flood_containment(benchmark):
    with_adm, without = benchmark.pedantic(
        lambda: (_flooded_run(True), _flooded_run(False)),
        rounds=1, iterations=1)

    honest = slice(0, FLOOD_USERS - FLOOD_MALICIOUS)
    high_on = max(n.buffer.high_water for n in with_adm.nodes[honest])
    high_off = max(n.buffer.high_water for n in without.nodes[honest])
    rejected: dict[str, int] = {}
    for node in with_adm.nodes[honest]:
        for reason, count in node.admission.rejected.items():
            rejected[reason] = rejected.get(reason, 0) + count
    quarantines = with_adm.quarantine_directory.quarantines

    _merge_result({
        "flooded": {
            "workload": {
                "num_users": FLOOD_USERS,
                "num_malicious": FLOOD_MALICIOUS,
                "attack": "SpamVoteNode (signed far-future votes)",
                "rounds": FLOOD_ROUNDS,
                "seed": FLOOD_SEED,
                "vote_buffer_budget": FLOOD_BUFFER_BUDGET,
                "flood_budget_per_round": FLOOD_BUDGET_PER_ROUND,
            },
            "honest_buffer_high_water_admission_on": high_on,
            "honest_buffer_high_water_admission_off": high_off,
            "containment_factor": round(high_off / high_on, 2),
            "rejected": dict(sorted(rejected.items())),
            "quarantines": quarantines,
            "messages_delivered_admission_on":
                with_adm.network.messages_delivered,
            "messages_delivered_admission_off":
                without.network.messages_delivered,
        },
    })

    rows = [
        ["buffer high-water (on)", str(high_on),
         f"budget {FLOOD_BUFFER_BUDGET}"],
        ["buffer high-water (off)", str(high_off), "unbounded growth"],
        ["spam rejected", str(rejected.get("flood", 0)),
         f"per-origin budget {FLOOD_BUDGET_PER_ROUND}/round"],
        ["quarantines", str(quarantines), "spammers cut off"],
    ]
    print_table("Ingress admission: flooded containment, 20% spammers",
                format_table(["metric", "value", "note"], rows))

    assert high_on <= FLOOD_BUFFER_BUDGET, "honest buffer over budget"
    assert high_off > FLOOD_BUFFER_BUDGET, (
        "attack too weak to demonstrate containment")
    assert quarantines >= 1, "no spammer was quarantined"
    assert rejected.get("flood", 0) > 0, "flood budget never engaged"
