"""Ablations of the design choices DESIGN.md calls out.

Each ablation removes (or weakens) one mechanism and measures what the
paper says that mechanism buys:

* **priority-based proposal filtering** (section 6) — without discarding
  non-highest-priority blocks, every proposer's block floods the network
  and proposal bandwidth multiplies;
* **committee-size safety margin** (section 7.5 / Figure 3) — an
  undersized committee makes step quorums routinely fail, so rounds burn
  timeout after timeout;
* **seed refresh interval R** (section 5.2) — R controls how often the
  sortition seed moves; R=1 re-keys committees every round;
* **the common coin** (section 7.4) — without it an adversary who knows
  the deterministic timeout votes can keep honest users split forever;
  with it each 3-step loop ends the split with probability >= h/2.
"""

from __future__ import annotations

import dataclasses
import math

from conftest import print_table

from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.metrics import format_table
from repro.node.agent import Node


class PromiscuousNode(Node):
    """Ablation: relays every proposed block (no priority filtering)."""

    def _handle_block(self, block) -> bool:
        if block.round_number < self.chain.next_round:
            return False
        tracker = self._tracker(block.round_number)
        tracker.observe_block(block, self.env)
        return True  # relay unconditionally


def _proposal_bytes(node_class):
    sim = Simulation(SimulationConfig(
        num_users=24, seed=900, bandwidth_bps=None,
        latency_model="uniform", uniform_latency=0.02),
        node_class=node_class)
    sim.submit_payments(48, note_bytes=150)
    sim.run_rounds(1)
    block_bytes = sum(
        iface.bytes_sent for iface in sim.network.interfaces)
    return block_bytes


def test_ablation_priority_filtering(benchmark):
    def run():
        return _proposal_bytes(Node), _proposal_bytes(PromiscuousNode)

    filtered, promiscuous = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: priority-based block filtering",
        format_table(["variant", "total bytes gossiped"],
                     [["filtered (paper)", filtered],
                      ["promiscuous", promiscuous]]))
    assert promiscuous > filtered


def test_ablation_committee_margin(benchmark):
    """tau_step with a ~3.6 sigma quorum margin vs a ~0 sigma one.

    An undersized committee leaves quorum failures common (steps time
    out, rounds slow down, finality is missed); the analytic violation
    probability quantifies it deterministically, and a short simulation
    shows both variants still *agree* — the margin buys liveness, never
    safety.
    """
    from repro.analysis.committee import violation_probability

    small = dataclasses.replace(TEST_PARAMS, tau_step=20, tau_final=30)

    def run():
        measured = {}
        for name, params in (("margined", TEST_PARAMS), ("undersized",
                                                         small)):
            sim = Simulation(SimulationConfig(
                num_users=20, seed=901, params=params))
            sim.run_rounds(4)
            total = sum(max(sim.round_latencies(r)) for r in range(1, 5))
            agreed = all(len(sim.agreed_hashes(r)) == 1
                         for r in range(1, 5))
            measured[name] = (total, agreed)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    p_small = violation_probability(20, TEST_PARAMS.t_step, 1.0)
    p_large = violation_probability(80, TEST_PARAMS.t_step, 1.0)
    rows = [
        ["margined (tau=80)", f"{measured['margined'][0]:.1f} s",
         measured["margined"][1], f"{p_large:.1e}"],
        ["undersized (tau=20)", f"{measured['undersized'][0]:.1f} s",
         measured["undersized"][1], f"{p_small:.1e}"],
    ]
    print_table("Ablation: committee-size quorum margin",
                format_table(["variant", "4-round latency", "agreed",
                              "P[step stalls]"], rows))
    # Safety holds for both; the stall probability differs by orders of
    # magnitude (this is what Figure 3's sizing buys).
    assert measured["margined"][1] and measured["undersized"][1]
    assert p_small > 50 * p_large


def test_ablation_seed_refresh(benchmark):
    """R=1 refreshes the selection seed every round; a large R reuses it."""
    def run():
        seeds = {}
        for refresh in (1, 1000):
            params = dataclasses.replace(TEST_PARAMS,
                                         seed_refresh_interval=refresh)
            sim = Simulation(SimulationConfig(
                num_users=16, seed=902, params=params))
            sim.run_rounds(3)
            chain = sim.nodes[0].chain
            seeds[refresh] = [chain.selection_seed(r) for r in (1, 2, 3)]
        return seeds

    seeds = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[refresh, len(set(values))]
            for refresh, values in seeds.items()]
    print_table("Ablation: seed refresh interval R (distinct selection "
                "seeds over 3 rounds)",
                format_table(["R", "distinct seeds"], rows))
    assert len(set(seeds[1000])) == 1       # seed reused within R window
    assert len(set(seeds[1])) == 3          # fresh committees every round


def test_ablation_common_coin_analytic(benchmark):
    """Expected extra steps with vs without the common coin.

    Without the coin, the section 7.4 split attack succeeds in every
    3-step loop: the adversary always knows the deterministic timeout
    vote and re-splits the honest users — BinaryBA* runs to MaxSteps.
    With the coin, each loop ends the split with probability >= h/2, so
    the chance of surviving all MaxSteps/3 loops is negligible.
    """
    def run():
        from repro.common.params import PAPER_PARAMS
        h = PAPER_PARAMS.honest_fraction
        loops = PAPER_PARAMS.max_steps // 3  # 50 coin flips before halt
        p_survive_with_coin = (1 - h / 2) ** loops
        return loops, p_survive_with_coin

    loops, p_survive = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: common coin (split-attack survival probability)",
        format_table(
            ["variant", f"P[attack survives {loops} loops]"],
            [["with coin", f"{p_survive:.2e}"],
             ["without coin", "1.0 (deterministic re-split)"]]))
    assert p_survive < 1e-9
    assert math.isfinite(p_survive)
