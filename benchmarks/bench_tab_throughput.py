"""E5 — Section 10.2 throughput table: Algorand vs Bitcoin.

Paper numbers: Bitcoin commits ~6 MB/hour (1 MB block / 10 min); Algorand
commits 327 MB/hour at 2 MB blocks and ~750 MB/hour at 10 MB blocks —
125x Bitcoin. Absolute numbers here are scaled (smaller blocks, smaller
network), so the assertions target the *relative* structure: Algorand
beats the Bitcoin baseline by orders of magnitude at equal block sizes,
and the paper's own constants project to ~125x.
"""

from __future__ import annotations

from conftest import print_table

from repro.baselines.nakamoto import (
    NakamotoConfig,
    NakamotoSimulator,
    throughput_bytes_per_hour,
)
from repro.experiments.metrics import format_table
from repro.experiments.throughput import (
    figure7,
    paper_scale_projection,
    throughput_table,
)

import numpy as np


def _run():
    points = figure7([50_000, 200_000], seed=400, num_users=30)
    return throughput_table(points, pipeline_final_step=False)


def test_throughput_vs_bitcoin(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = [[r.system, r.block_size, f"{r.round_time:.1f}",
              f"{r.bytes_per_hour / 1e6:.1f} MB/h",
              f"{r.ratio_vs_bitcoin:.1f}x"] for r in rows]
    print_table("Section 10.2: committed bytes per hour",
                format_table(["system", "block B", "round s",
                              "throughput", "vs bitcoin"], table))

    bitcoin = rows[0]
    algorand = rows[1:]
    # Bitcoin baseline: ~6 MB/hour.
    assert 5.5e6 < bitcoin.bytes_per_hour <= 6.0e6
    # Algorand's round time is seconds, not minutes: even with blocks 5x
    # smaller than Bitcoin's, it sustains a higher committed-byte rate.
    for row in algorand:
        assert row.round_time < 60
        assert row.ratio_vs_bitcoin > 1.0
    # Larger blocks amortize BA*: throughput grows with block size.
    assert algorand[-1].bytes_per_hour > algorand[0].bytes_per_hour

    # Paper-scale projection from the paper's constants lands at ~125x.
    projected = paper_scale_projection()
    assert 100 < projected / throughput_bytes_per_hour(NakamotoConfig()) < 160


def test_bitcoin_baseline_monte_carlo(benchmark):
    """The Nakamoto baseline itself: simulated vs analytic throughput."""
    result = benchmark.pedantic(
        lambda: NakamotoSimulator().run(3000, np.random.default_rng(5)),
        rounds=1, iterations=1)
    analytic = throughput_bytes_per_hour(NakamotoConfig())
    assert abs(result.throughput_bytes_per_hour - analytic) < 0.15 * analytic
    # Confirmation latency ~1 hour — the pain Algorand removes.
    assert 3000 < result.mean_confirmation_latency < 4400
