"""E15 — aggregated-population scale benchmark.

Like E13/E14 this measures the substrate, not a paper figure: what the
aggregated stake pool (``population="aggregated"``) buys, recorded in
``BENCH_scale.json`` at the repo root. Two claims:

* **Speedup** — on a workload both representations can run, the
  aggregated population commits the same protocol outcomes (proposer
  sequence, seed chain, transactions) for a fraction of the CPU.
  Methodology as in E13/E14: each variant in a fresh subprocess
  reporting process CPU time, min of 2.
* **Scale** — the users-vs-latency curve continues past the full
  harness's practical wall (a few hundred users) to 10,000+ users,
  and stays *flat*: committee sizes, not population, drive both the
  simulated round latency and the live-agent count. This is the
  paper's Figure 5 mechanism, now reachable in-process. Simulated
  latency is deterministic in the seed, so each curve point is a
  single run; CPU seconds per point ride along as context.

Committee parameters are ``TEST_PARAMS.scaled(0.25)`` across the whole
curve (both full baseline and aggregated points), so the curve is
internally consistent; the absolute committee sizes are recorded in the
artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import print_table

from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.metrics import format_table

#: Speedup workload: dormancy-heavy (weight-1 users, small committees)
#: so the aggregated population retires most of the population while
#: the full harness still simulates everyone.
SPEED_USERS = 300
SPEED_ROUNDS = 3
SPEED_SEED = 2
SPEED_SCALE = 0.1
SPEED_STEPS_AHEAD = 12

#: Curve: full baseline up to the wall, aggregated beyond it.
CURVE_SCALE = 0.25
CURVE_FULL_USERS = [100, 250]
CURVE_AGG_USERS = [1000, 2500, 5000, 10000]
CURVE_ROUNDS = 2
CURVE_SEED = 20
CURVE_CORE = 16
CURVE_STEPS_AHEAD = 8

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
SRC_PATH = Path(__file__).resolve().parent.parent / "src"

_SPEED_SCRIPT = """\
import gc, json, sys, time

mode = sys.argv[1]
users, rounds, seed = (int(x) for x in sys.argv[2:5])
scale = float(sys.argv[5])
steps_ahead = int(sys.argv[6])

from repro.common.params import TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig

warm = Simulation(SimulationConfig(num_users=20, seed=2))
warm.run_rounds(1)
del warm
gc.collect()

kwargs = dict(num_users=users, seed=seed, initial_balance=1,
              params=TEST_PARAMS.scaled(scale))
if mode == "aggregated":
    kwargs.update(population="aggregated", always_on_core=8,
                  steps_ahead=steps_ahead)

start = time.process_time()
sim = Simulation(SimulationConfig(**kwargs))
sim.run_rounds(rounds)
cpu = time.process_time() - start

chain = sim.nodes[0].chain
out = {
    "cpu": cpu,
    "chains_equal": sim.all_chains_equal(),
    "proposers": [(chain.block_at(r).proposer or b"").hex()
                  for r in range(1, rounds + 1)],
    "seeds": [chain.selection_seed(r).hex() for r in range(1, rounds + 2)],
    "simulated_seconds": round(sim.env.now, 6),
}
if mode == "aggregated":
    out["population"] = sim.population.stats()
print(json.dumps(out))
"""


def _run_speed_variant(mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_PATH)
    proc = subprocess.run(
        [sys.executable, "-c", _SPEED_SCRIPT, mode,
         str(SPEED_USERS), str(SPEED_ROUNDS), str(SPEED_SEED),
         str(SPEED_SCALE), str(SPEED_STEPS_AHEAD)],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise AssertionError(
            f"{mode} variant subprocess failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def _merge_result(update: dict) -> None:
    """Fold a test's results into BENCH_scale.json, keeping the keys
    that other tests in this file own."""
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    existing.update(update)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_scale_speedup(benchmark):
    modes = ("full", "aggregated")

    def _measure():
        runs = {mode: [] for mode in modes}
        for _ in range(2):
            for mode in modes:
                runs[mode].append(_run_speed_variant(mode))
        return runs

    runs = benchmark.pedantic(_measure, rounds=1, iterations=1)
    best = {mode: min(results, key=lambda r: r["cpu"])
            for mode, results in runs.items()}

    # Protocol outcomes must match across representations and runs:
    # proposers and seeds are VRF-determined, dormancy cannot move them.
    reference = best["full"]
    for mode in modes:
        for run in runs[mode]:
            assert run["chains_equal"], f"{mode}: nodes diverged"
            assert run["proposers"] == reference["proposers"]
            assert run["seeds"] == reference["seeds"]

    cpu_full = best["full"]["cpu"]
    cpu_agg = best["aggregated"]["cpu"]
    speedup = cpu_full / cpu_agg
    stats = best["aggregated"]["population"]
    _merge_result({
        "speedup": {
            "workload": {
                "num_users": SPEED_USERS,
                "initial_balance": 1,
                "rounds": SPEED_ROUNDS,
                "seed": SPEED_SEED,
                "params_scale": SPEED_SCALE,
                "steps_ahead": SPEED_STEPS_AHEAD,
            },
            "method": "process CPU time, fresh subprocess per run, "
                      "min of 2",
            "full_cpu_seconds": round(cpu_full, 2),
            "aggregated_cpu_seconds": round(cpu_agg, 2),
            "speedup": round(speedup, 2),
            "protocol_outcomes_identical": True,
            "population": stats,
        },
    })

    rows = [
        ["full harness", f"{cpu_full:.2f} cpu-s",
         f"{SPEED_USERS} live agents"],
        ["aggregated", f"{cpu_agg:.2f} cpu-s",
         f"{stats['live_high_water']} live high-water, "
         f"{stats['retired_total']} retired"],
        ["speedup", f"{speedup:.1f}x",
         "same proposers, seeds, and agreement"],
    ]
    print_table(
        f"Aggregated population: speedup, {SPEED_USERS} users "
        f"x {SPEED_ROUNDS} rounds",
        format_table(["variant", "cpu", "note"], rows))
    assert speedup > 1.5, (
        f"aggregated population should beat full agents on a "
        f"dormancy-heavy workload, got {speedup:.2f}x")


def _curve_point(num_users: int, mode: str) -> dict:
    params = TEST_PARAMS.scaled(CURVE_SCALE)
    kwargs = dict(num_users=num_users, seed=CURVE_SEED, params=params)
    if mode == "aggregated":
        kwargs.update(population="aggregated", always_on_core=CURVE_CORE,
                      steps_ahead=CURVE_STEPS_AHEAD)
    start = time.process_time()
    sim = Simulation(SimulationConfig(**kwargs))
    sim.run_rounds(CURVE_ROUNDS)
    cpu = time.process_time() - start
    latencies = sim.round_latencies(CURVE_ROUNDS)
    point = {
        "num_users": num_users,
        "mode": mode,
        "round_latency_s": round(max(latencies), 3),
        "cpu_seconds": round(cpu, 2),
        "events": sim.env.events_processed,
        "messages": sim.network.messages_delivered,
    }
    if mode == "aggregated":
        stats = sim.population.stats()
        point["live_high_water"] = stats["live_high_water"]
        point["retired_total"] = stats["retired_total"]
        point["votes_batch_primed"] = (
            sim.summary()["batch_verify"]["votes_primed"])
    assert sim.all_chains_equal()
    return point


def test_scale_curve(benchmark):
    def _measure():
        points = [_curve_point(n, "full") for n in CURVE_FULL_USERS]
        points += [_curve_point(n, "aggregated") for n in CURVE_AGG_USERS]
        return points

    points = benchmark.pedantic(_measure, rounds=1, iterations=1)
    params = TEST_PARAMS.scaled(CURVE_SCALE)
    _merge_result({
        "curve": {
            "workload": {
                "rounds": CURVE_ROUNDS,
                "seed": CURVE_SEED,
                "params_scale": CURVE_SCALE,
                "tau_proposer": params.tau_proposer,
                "tau_step": params.tau_step,
                "tau_final": params.tau_final,
                "always_on_core": CURVE_CORE,
                "steps_ahead": CURVE_STEPS_AHEAD,
            },
            "method": "simulated round latency is deterministic in the "
                      "seed (single run per point); cpu_seconds are "
                      "single-run context",
            "points": points,
        },
    })

    rows = [[p["num_users"], p["mode"], f"{p['round_latency_s']:.2f} s",
             f"{p['cpu_seconds']:.1f} cpu-s",
             p.get("live_high_water", p["num_users"])]
            for p in points]
    print_table(
        "Users vs latency: full to the wall, aggregated past it",
        format_table(
            ["users", "mode", "round latency", "cpu", "live agents"],
            rows))

    # The scale bar: 10k+ users committed rounds in-process.
    biggest = max(p["num_users"] for p in points)
    assert biggest >= 10_000
    # The flatness bar: the curve must not grow with population —
    # allow per-round protocol variance (an extra binary step costs a
    # couple of lambda_step) but reject anything resembling linear
    # growth over a 10x population span.
    agg = [p for p in points if p["mode"] == "aggregated"]
    assert (max(p["round_latency_s"] for p in agg)
            <= 3 * min(p["round_latency_s"] for p in agg) + 2.0)
    # Dormancy is real at scale: live agents are a small fraction.
    top = next(p for p in agg if p["num_users"] == biggest)
    assert top["live_high_water"] < biggest // 5
