"""E6 — Section 10.3: CPU, bandwidth, and storage costs.

Paper: ~10 Mbit/s per user during a round (50K users, 1 MB blocks);
bandwidth independent of the number of users; 300 KB certificates (~30%
of a 1 MB block); sharding by 10 cuts per-user storage to ~130 KB per
1 MB block.
"""

from __future__ import annotations

from conftest import print_table

from repro.common.params import PAPER_PARAMS
from repro.experiments.costs import (
    bandwidth_independence,
    expected_certificate_bytes,
    measure_costs,
)
from repro.experiments.metrics import format_table


def _run():
    return measure_costs(40, rounds=3, seed=500, payload_bytes=40_000)


def test_costs_table(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        ["bandwidth / user", f"{report.mean_bandwidth_bits_per_sec / 1e6:.2f} Mbit/s"],
        ["bytes sent / user", f"{report.mean_bytes_sent_per_user / 1e3:.0f} KB"],
        ["certificate size", f"{report.certificate_bytes / 1e3:.1f} KB"
                             f" ({report.certificate_votes:.0f} votes)"],
        ["certificate overhead", f"{report.certificate_overhead:.0%} of block"],
        ["storage / round (unsharded)", f"{report.storage_per_round_unsharded / 1e3:.1f} KB"],
        ["storage / round (10 shards)", f"{report.storage_per_round_sharded_10 / 1e3:.1f} KB"],
        ["crypto verifications / user / round",
         f"{report.verifications_per_user_round:.0f}"],
        ["CPU (projected, C-library op costs)",
         f"{report.cpu_seconds_per_user_round * 1e3:.1f} ms/round"],
    ]
    print_table("Section 10.3: per-user costs", format_table(
        ["metric", "measured"], rows))

    # Bandwidth is capped by the link model and nonzero.
    assert 0 < report.mean_bandwidth_bits_per_sec < 20e6
    # Sharding by 10 reduces storage ~10x.
    reduction = (report.storage_per_round_unsharded
                 / report.storage_per_round_sharded_10)
    assert 7 < reduction < 13

    # At the paper's parameters, the analytic certificate size lands near
    # the reported 300 KB (quorum 1371 votes x ~250 B/vote).
    paper_certificate = expected_certificate_bytes(PAPER_PARAMS)
    assert 250e3 < paper_certificate < 400e3

    # CPU proxy: verification work exists and, at production per-op
    # costs, stays a small fraction of the round duration (the paper:
    # ~6.5% of one core per user).
    assert report.verifications_per_user_round > 50
    assert report.cpu_seconds_per_user_round < 1.0


def test_bandwidth_independent_of_population(benchmark):
    """Per-user bandwidth is committee-sized, not population-sized.

    Caveat reproduced from the paper (Figure 5 discussion): below
    ~tau users, growing the population *increases* the number of distinct
    vote senders (each user holds fewer sub-user selections), so costs
    still creep up until the committee saturates. We therefore assert
    sub-linear growth: a 4x population costs well under 4x bandwidth.
    """
    reports = benchmark.pedantic(
        lambda: bandwidth_independence([40, 80, 160], seed=600),
        rounds=1, iterations=1)

    rows = [[r.num_users,
             f"{r.mean_bandwidth_bits_per_sec / 1e6:.2f} Mbit/s",
             f"{r.mean_bytes_sent_per_user / 1e3:.0f} KB"]
            for r in reports]
    print_table("Section 10.3: per-user bandwidth vs population",
                format_table(["users", "bandwidth", "bytes sent"], rows))

    bytes_sent = [r.mean_bytes_sent_per_user for r in reports]
    # 4x population: per-user traffic grows far slower than linearly.
    assert max(bytes_sent) / min(bytes_sent) < 2.5
