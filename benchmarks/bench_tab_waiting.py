"""E11 — Section 6: the block-proposal waiting trade-off.

Not a numbered figure, but a quantified design discussion in the paper:
wait too little and rounds fall back to the empty block (wasting the
round and burning BinaryBA* steps); wait too long and every round pays
the idle time. The paper resolves it by measuring priority-gossip time
(~1 s) and padding to 5 s; this sweep regenerates the curve that
justifies that choice.
"""

from __future__ import annotations

from conftest import print_table

from repro.experiments.metrics import format_table
from repro.experiments.waiting import waiting_tradeoff

WAITS = [0.02, 0.5, 2.0, 4.0]


def _run():
    return waiting_tradeoff(WAITS, seed=10)


def test_waiting_tradeoff(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[f"{p.wait_seconds:.2f} s", f"{p.empty_fraction:.0%}",
             f"{p.median_latency:.2f} s"] for p in points]
    print_table(
        "Section 6: proposal wait window vs empty rounds and latency",
        format_table(["wait", "empty rounds", "median latency"], rows))

    by_wait = {p.wait_seconds: p for p in points}

    # Below the knee: starving the wait forces empty rounds and, through
    # the extra BinaryBA* steps, *higher* latency than a proper wait.
    assert by_wait[0.02].empty_fraction > 0.3
    assert by_wait[0.02].median_latency > by_wait[2.0].median_latency

    # Above the knee: no empty rounds, and latency grows roughly with
    # the wait itself (the linear cost of over-padding).
    assert by_wait[2.0].empty_fraction == 0.0
    assert by_wait[4.0].empty_fraction == 0.0
    assert by_wait[4.0].median_latency > by_wait[2.0].median_latency
    growth = by_wait[4.0].median_latency - by_wait[2.0].median_latency
    assert 1.0 < growth < 3.0  # ~ the extra 2 s of waiting
