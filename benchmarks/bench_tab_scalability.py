"""E12 — Section 8.4 scalability claims + section 7 step counts.

Two analytic tables the paper's scaling story rests on:

* the gossip graph (4 chosen peers, ~8 neighbors) forms one giant
  connected component whose diameter — and hence dissemination time —
  grows only logarithmically in the number of users;
* BA* needs 4 interactive steps in the common case and an expected 13
  against the worst-case adversary, with MaxSteps = 150 making the
  residual tail negligible.
"""

from __future__ import annotations

from conftest import print_table

from repro.analysis.graph import diameter_scaling, expected_dissemination_hops
from repro.analysis.steps import (
    COMMON_CASE_STEPS,
    expected_total_steps_worst_case,
    max_steps_for_failure_probability,
    probability_exceeds_max_steps,
)
from repro.experiments.metrics import format_table

SIZES = [50, 200, 800, 3200]


def test_gossip_graph_scaling(benchmark):
    reports = benchmark.pedantic(
        lambda: diameter_scaling(SIZES, seed=3), rounds=1, iterations=1)

    rows = [[r.num_nodes, f"{r.giant_component_fraction:.3f}",
             r.diameter, f"{r.average_degree:.1f}"] for r in reports]
    print_table(
        "Section 8.4: gossip topology vs network size",
        format_table(["users", "giant component", "diameter",
                      "avg degree"], rows))

    # One giant component containing (essentially) everyone.
    assert all(r.giant_component_fraction > 0.99 for r in reports)
    # Logarithmic diameter: 64x the users, only a few more hops.
    diameters = [r.diameter for r in reports]
    assert diameters[-1] <= diameters[0] + 4
    # ~8 neighbors from 4 chosen peers (section 9).
    assert all(7.0 < r.average_degree < 8.5 for r in reports)


def test_step_count_analysis(benchmark):
    def run():
        return {
            "common": COMMON_CASE_STEPS,
            "worst": expected_total_steps_worst_case(),
            "tail_150": probability_exceeds_max_steps(150, 0.80),
            "needed": max_steps_for_failure_probability(1e-11, 0.80),
        }

    derived = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["common case (honest proposer)", f"{derived['common']} steps",
         "paper: 'precisely 4 interactive steps'"],
        ["worst case expectation", f"{derived['worst']:.0f} steps",
         "paper: 'expected 13 steps'"],
        ["P[attack outlasts MaxSteps=150]", f"{derived['tail_150']:.1e}",
         "negligible"],
        ["MaxSteps for 1e-11 tail", str(derived["needed"]),
         "Figure 4 picks 150"],
    ]
    print_table("Section 7: BA* interactive step counts",
                format_table(["quantity", "value", "check"], rows))

    assert derived["common"] == 4
    assert abs(derived["worst"] - 13.0) < 0.1
    assert derived["tail_150"] < 1e-11
    assert derived["needed"] == 150


def test_dissemination_hops(benchmark):
    hops = benchmark.pedantic(
        lambda: expected_dissemination_hops(1600, seed=5),
        rounds=1, iterations=1)
    print_table("Section 8.4: mean gossip hops at 1600 users",
                f"{hops:.2f} hops (x per-hop latency = dissemination time)")
    assert hops < 6.0
