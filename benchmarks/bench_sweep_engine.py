"""Sweep-engine benchmark: the parallel grid must pay for itself.

Unlike the figure benches (which reproduce paper numbers), this one
measures the *infrastructure*: a latency grid run serially in-process
versus fanned over worker processes. It asserts the engine's two
contracts — byte-identical merged output regardless of ``jobs``, and
engine overhead small relative to the points themselves. On multi-core
runners the parallel run should also be faster; that is asserted softly
(>= 1.0x at one core, where only overhead separates the two).
"""

from __future__ import annotations

import multiprocessing
import time

from conftest import print_table

from repro.experiments.latency import figure5_specs
from repro.experiments.metrics import format_table
from repro.experiments.sweep import run_sweep

#: 8 points: the Figure 5 axis x two seeds, small enough for CI.
SPECS = (figure5_specs([20, 30, 40, 50], seed=100, payload_bytes=10_000)
         + figure5_specs([20, 30, 40, 50], seed=200,
                         payload_bytes=10_000))


def _run_pair():
    serial_start = time.perf_counter()
    serial = run_sweep(SPECS, jobs=1)
    serial_seconds = time.perf_counter() - serial_start

    jobs = max(2, min(4, multiprocessing.cpu_count()))
    parallel_start = time.perf_counter()
    parallel = run_sweep(SPECS, jobs=jobs)
    parallel_seconds = time.perf_counter() - parallel_start
    return serial, serial_seconds, parallel, parallel_seconds, jobs


def test_sweep_parallel_matches_serial(benchmark):
    (serial, serial_seconds, parallel, parallel_seconds,
     jobs) = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    speedup = serial_seconds / parallel_seconds
    print_table(
        "Sweep engine: 8-point latency grid, serial vs parallel",
        format_table(
            ["mode", "jobs", "wall s", "speedup"],
            [["serial (in-process)", 1, f"{serial_seconds:.2f}", "1.00x"],
             ["parallel", jobs, f"{parallel_seconds:.2f}",
              f"{speedup:.2f}x"]]))

    assert not serial.failures and not parallel.failures
    # Contract 1: merged output is byte-identical for any --jobs.
    assert serial.merged_json() == parallel.merged_json()
    # Contract 2: fan-out never costs more than ~2x serial even on a
    # single-core box (process startup is the only extra work); with
    # >= 2 real cores it should come out ahead.
    assert speedup > 0.5
    if multiprocessing.cpu_count() >= 4:
        assert speedup > 1.5
