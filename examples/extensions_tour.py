#!/usr/bin/env python3
"""A tour of the library features beyond the core protocol.

Four capabilities built on top of the round pipeline:

1. **Passive observers** (§7) — zero-stake nodes that reach every
   agreement decision without ever being eligible to speak;
2. **Persistence** (§8.3) — export the chain with its certificates and
   reload it with full bootstrap revalidation;
3. **Forward-secure ephemeral keys** (§11) — Merkle-committed one-shot
   signing keys that are erased at use;
4. **Accountability** (§2's detect-and-punish) — extracting verifiable
   double-vote evidence from a live Byzantine attack.

Run:  python examples/extensions_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Simulation, SimulationConfig, TEST_PARAMS
from repro.adversary import MaliciousNode
from repro.baplus.accountability import find_double_votes
from repro.crypto.ephemeral import EphemeralKeyChain, verify_ephemeral_key
from repro.crypto.hashing import H
from repro.ledger.persistence import load_chain, save_chain


def observers_demo() -> None:
    print("=" * 60)
    print("1. Passive observers (zero stake, full knowledge)")
    print("=" * 60)
    sim = Simulation(SimulationConfig(num_users=14, seed=101,
                                      num_observers=2))
    sim.submit_payments(20)
    sim.run_rounds(2)
    reference = sim.nodes[0].chain
    for observer in sim.observers:
        same = observer.chain.tip_hash == reference.tip_hash
        print(f"  observer {observer.index}: height "
              f"{observer.chain.height}, tip matches participants: {same}")
    print("  -> BA* keeps no secrets: watching the gossip is enough\n")


def persistence_demo() -> None:
    print("=" * 60)
    print("2. Persistence with bootstrap-grade revalidation")
    print("=" * 60)
    sim = Simulation(SimulationConfig(num_users=12, seed=102))
    sim.submit_payments(15)
    sim.run_rounds(2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chain.bin"
        written = save_chain(sim.nodes[0].chain, path)
        print(f"  wrote {written} bytes (blocks + certificates)")
        restored = load_chain(
            path,
            initial_balances={kp.public: sim.config.initial_balance
                              for kp in sim.keypairs},
            genesis_seed=sim.genesis_seed, params=TEST_PARAMS,
            backend=sim.backend)
        print(f"  reloaded and revalidated {restored.height} rounds; "
              f"tip matches: {restored.tip_hash == sim.nodes[0].chain.tip_hash}\n")


def ephemeral_demo() -> None:
    print("=" * 60)
    print("3. Forward-secure ephemeral keys (§11)")
    print("=" * 60)
    from repro.crypto.backend import FastBackend
    backend = FastBackend()
    chain = EphemeralKeyChain(backend, H(b"master"), first_round=1,
                              num_rounds=2, steps=["1", "2", "final"])
    print(f"  committed to {chain.remaining_slots()} one-shot keys under "
          f"root {chain.root.hex()[:16]}…")
    key = chain.use_key(1, "1")
    signature = backend.sign(key.keypair.secret, b"a committee vote")
    backend.verify(key.keypair.public, b"a committee vote", signature)
    ok = verify_ephemeral_key(chain.root, key.keypair.public, 1, "1",
                              key.proof)
    print(f"  vote signed with slot (1, '1'); commitment check: {ok}")
    try:
        chain.use_key(1, "1")
    except KeyError:
        print("  slot erased after use: compromising the user later "
              "cannot re-sign this step\n")


def accountability_demo() -> None:
    print("=" * 60)
    print("4. Detect-and-punish: forensic evidence from an attack")
    print("=" * 60)
    sim = Simulation(
        SimulationConfig(num_users=16, seed=103, num_malicious=3),
        malicious_class=MaliciousNode)
    processes = [node.start(1) for node in sim.nodes]
    sim.env.run(until=300.0,
                stop_when=lambda: all(p.done for p in processes))
    steps = ["reduction_one", "reduction_two", "1", "2", "3", "final"]
    pooled = [vote
              for node in sim.nodes[:13]
              for step in steps
              for vote in node.buffer.messages(1, step)]
    evidence = find_double_votes(pooled, sim.backend)
    malicious = {node.keypair.public for node in sim.nodes[13:]}
    print(f"  pooled {len(pooled)} votes from 13 honest nodes")
    print(f"  double-vote evidence against {len({e.offender for e in evidence})} "
          f"key(s); all verifiable: "
          f"{all(e.verify(sim.backend) for e in evidence)}")
    print(f"  every offender is a known attacker: "
          f"{ {e.offender for e in evidence} <= malicious }")


def main() -> None:
    observers_demo()
    persistence_demo()
    ephemeral_demo()
    accountability_demo()


if __name__ == "__main__":
    main()
