#!/usr/bin/env python3
"""A running payment network, plus a new user bootstrapping from it.

Scenario (the paper's introduction): merchants need payments confirmed in
about a minute, not an hour. We run a 30-user network for five rounds
under a continuous payment workload, track confirmation latency for a
specific payment, then have a brand-new user join and *verify the whole
history from certificates alone* (section 8.3) — no trust in any peer.

Run:  python examples/payment_network.py
"""

from __future__ import annotations

from repro import Simulation, SimulationConfig, TEST_PARAMS
from repro.ledger.transaction import make_transaction
from repro.node.catchup import catch_up_from

ROUNDS = 5


def main() -> None:
    sim = Simulation(SimulationConfig(num_users=30, seed=11,
                                      initial_balance=50))

    # A specific purchase we will track end-to-end: user 3 pays user 12.
    buyer, merchant = sim.nodes[3], sim.nodes[12]
    payment = make_transaction(
        sim.backend, buyer.keypair.secret, buyer.keypair.public,
        merchant.keypair.public, amount=25,
        nonce=buyer.chain.state.next_nonce(buyer.keypair.public),
        note=b"espresso machine")
    buyer.submit_transaction(payment)

    # Background traffic from everyone else.
    sim.submit_payments(count=90, note_bytes=24)

    sim.run_rounds(ROUNDS)

    # Find the round that committed our payment and when it became final.
    committed_round = None
    for round_number in range(1, ROUNDS + 1):
        block = merchant.chain.block_at(round_number)
        if any(tx.txid == payment.txid for tx in block.transactions):
            committed_round = round_number
            break
    assert committed_round is not None, "payment never committed"
    record = merchant.metrics.round_record(committed_round)
    print(f"payment committed in round {committed_round} "
          f"({record.kind} consensus) after {record.end_time:.1f} "
          f"simulated seconds")
    print(f"merchant balance: "
          f"{merchant.chain.state.balance(merchant.keypair.public)} "
          f"(started with 50)")

    # Throughput over the run.
    committed = sum(block.payload_size
                    for block in merchant.chain.blocks[1:])
    print(f"committed {committed} payload bytes in {sim.env.now:.0f} s "
          f"({committed * 3600 / sim.env.now / 1e6:.2f} MB/hour at this "
          f"toy scale)")

    # --- A new user joins and verifies everything (section 8.3) --------
    initial_balances = {kp.public: 50 for kp in sim.keypairs}
    replica = catch_up_from(
        merchant.chain, params=TEST_PARAMS, backend=sim.backend,
        initial_balances=initial_balances, genesis_seed=sim.genesis_seed)
    print(f"new user replayed {replica.height} rounds from certificates; "
          f"tip matches: {replica.tip_hash == merchant.chain.tip_hash}")
    print(f"new user sees merchant balance "
          f"{replica.state.balance(merchant.keypair.public)}")


if __name__ == "__main__":
    main()
