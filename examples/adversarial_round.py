#!/usr/bin/env python3
"""Running consensus under active attack (sections 8.4 and 10.4).

Two attacks from the paper, against one deployment each:

1. **Equivocation + double voting** (Figure 8's strategy): 20% of the
   stake proposes conflicting blocks and votes for both sides in every
   BA* step. Expected outcome: honest chains never diverge; latency
   barely moves.
2. **Targeted DoS on proposers** (section 8.4): the adversary watches for
   priority announcements and knocks each proposer offline moments after
   it speaks. Expected outcome: rounds keep completing — by the time a
   proposer is identified, its job is done, and every later step uses
   fresh committee members (participant replacement).

Run:  python examples/adversarial_round.py
"""

from __future__ import annotations

from repro import Simulation, SimulationConfig
from repro.adversary import FilterChain, MaliciousNode, TargetedDoS


def equivocation_attack() -> None:
    print("=" * 60)
    print("Attack 1: equivocating proposers + double-voting committee")
    print("=" * 60)
    sim = Simulation(
        SimulationConfig(num_users=20, seed=5, num_malicious=4),
        malicious_class=MaliciousNode)
    sim.submit_payments(40, note_bytes=16)
    sim.run_rounds(3)

    honest = sim.nodes[:16]
    for round_number in range(1, 4):
        hashes = {node.chain.block_at(round_number).block_hash
                  for node in honest}
        record = honest[0].metrics.round_record(round_number)
        block = honest[0].chain.block_at(round_number)
        print(f"  round {round_number}: {len(hashes)} agreed hash(es), "
              f"{record.duration:5.1f}s, {record.kind}, "
              f"{'EMPTY' if block.is_empty else f'{len(block.transactions)} txs'}")
        assert len(hashes) == 1, "fork!"
    print("  -> 20% malicious stake: no forks, bounded slowdown\n")


def targeted_dos_attack() -> None:
    print("=" * 60)
    print("Attack 2: targeted DoS on revealed block proposers")
    print("=" * 60)
    sim = Simulation(SimulationConfig(num_users=20, seed=6))
    controls = FilterChain(sim.network)
    dos = TargetedDoS(controls, sim.env, reaction_time=1.5,
                      restore_after=60.0)
    sim.submit_payments(40, note_bytes=16)
    sim.run_rounds(3, time_limit=900)

    print(f"  proposers knocked offline: {sorted(set(dos.victims))}")
    for round_number in range(1, 4):
        hashes = sim.agreed_hashes(round_number)
        print(f"  round {round_number}: {len(hashes)} agreed hash(es)")
        assert len(hashes) == 1
    print("  -> every attacked proposer had already done its job; "
          "consensus unaffected")


def main() -> None:
    equivocation_attack()
    targeted_dos_attack()


if __name__ == "__main__":
    main()
