#!/usr/bin/env python3
"""Quickstart: run a small Algorand deployment and confirm transactions.

Builds a 20-user network on the simulated WAN, injects payments, runs
three consensus rounds, and prints what every textbook figure of the
system shows: blocks agreed with *no forks*, in seconds, with final
(irreversible) consensus in the common case.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simulation, SimulationConfig


def main() -> None:
    # 20 users, equal stake, deterministic seed. TEST_PARAMS scales the
    # paper's committee sizes down to this population (see Figure 4 and
    # repro/common/params.py).
    sim = Simulation(SimulationConfig(num_users=20, seed=7))

    # Everyone gossips some payments; proposers will pick them up.
    sim.submit_payments(count=60, note_bytes=32)

    # Run three rounds of block proposal + BA*.
    sim.run_rounds(3)

    print(f"simulated time: {sim.env.now:.1f} s")
    print(f"all 20 chains identical: {sim.all_chains_equal()}")
    print()
    node = sim.nodes[0]
    print("round  latency  kind       txs  block hash")
    for round_number in range(1, 4):
        record = node.metrics.round_record(round_number)
        block = node.chain.block_at(round_number)
        print(f"{round_number:>5}  {record.duration:>6.2f}s  "
              f"{record.kind:<9}  {len(block.transactions):>3}  "
              f"{block.block_hash.hex()[:16]}…")
    print()

    # Safety check the paper's way: one agreed hash per round, everywhere.
    for round_number in range(1, 4):
        hashes = sim.agreed_hashes(round_number)
        assert len(hashes) == 1, "fork detected!"
    print("no forks: every round has exactly one agreed block")

    # Money is conserved and identical on every replica.
    totals = {node.chain.state.total_weight for node in sim.nodes}
    print(f"total stake on every replica: {totals}")


if __name__ == "__main__":
    main()
