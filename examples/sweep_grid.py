#!/usr/bin/env python3
"""Sweep a latency grid in parallel and prove it matches the serial run.

Builds a 3 populations x 2 seeds grid of `LatencySpec`s, runs it twice
through `repro.experiments.sweep.run_sweep` — once serially in-process,
once fanned over worker processes — and shows the engine's contract:
the merged artifacts are byte-identical, so `--jobs` is purely a
wall-clock knob. Also demonstrates JSONL checkpointing: a second
parallel run against the same checkpoint resumes every point and
recomputes nothing.

Run:  python examples/sweep_grid.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.experiments import LatencySpec, run_sweep


def build_grid() -> list[LatencySpec]:
    # A spec is the complete reproducibility token for one measured
    # point: population, seed, and protocol knobs. Equal specs always
    # produce byte-identical results, which is what makes parallel and
    # resumed runs safely mergeable.
    return [LatencySpec(num_users=users, seed=seed, rounds=1,
                        measure_round=1)
            for users in (8, 10, 12) for seed in (0, 1)]


def main() -> None:
    specs = build_grid()
    print(f"grid: {len(specs)} points "
          f"({sorted({s.num_users for s in specs})} users x 2 seeds)")

    start = time.perf_counter()
    serial = run_sweep(specs, jobs=1)
    print(f"serial   jobs=1: {time.perf_counter() - start:5.2f} s wall")

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "points.jsonl"

        start = time.perf_counter()
        parallel = run_sweep(specs, jobs=2, checkpoint=checkpoint)
        print(f"parallel jobs=2: {time.perf_counter() - start:5.2f} s wall")

        identical = serial.merged_json() == parallel.merged_json()
        print(f"merged artifacts byte-identical: {identical}")
        assert identical

        lines = checkpoint.read_text().strip().splitlines()
        print(f"checkpoint: {len(lines)} JSONL records")

        # Resume: every fingerprint is already in the checkpoint, so
        # the engine replays results instead of rebuilding simulations.
        start = time.perf_counter()
        resumed = run_sweep(specs, jobs=2, checkpoint=checkpoint)
        print(f"resumed  jobs=2: {time.perf_counter() - start:5.2f} s wall "
              f"({resumed.resumed_points}/{len(specs)} points from "
              f"checkpoint)")
        assert resumed.merged_json() == serial.merged_json()
        assert resumed.resumed_points == len(specs)

    for outcome in serial.outcomes[:3]:
        median = outcome.result["summary"]["median"]
        print(f"  users={outcome.spec.num_users:<3} seed={outcome.spec.seed} "
              f"median latency {median:.2f} s")
    print("sweep contract holds: order-deterministic, restartable, "
          "parallel-safe")


if __name__ == "__main__":
    main()
