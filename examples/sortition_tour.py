#!/usr/bin/env python3
"""A tour of cryptographic sortition with the *real* crypto backend.

Everything here runs on the pure-Python Ed25519 + ECVRF implementation
(RFC 8032 / RFC 9381) — the same constructions the paper's prototype
uses — rather than the fast simulation backend:

1. evaluate a VRF and verify its proof;
2. run sortition (Algorithm 1) for a block-proposer role and verify it
   (Algorithm 2) as any other user would;
3. demonstrate the Sybil-resistance identity: splitting stake across
   pseudonyms does not change expected selection;
4. recompute Figure 3's committee size for the paper's operating point.

Run:  python examples/sortition_tour.py   (~30 s: real curve arithmetic)
"""

from __future__ import annotations

from repro.analysis.committee import (
    check_paper_step_parameters,
    violation_probability,
)
from repro.crypto.backend import Ed25519Backend
from repro.crypto.hashing import H
from repro.sortition import proposer_role, sortition, verify_sort
from repro.sortition.selection import selection_probability


def main() -> None:
    backend = Ed25519Backend()
    alice = backend.keypair(H(b"alice's seed"))

    # 1. The VRF primitive.
    vrf_hash, proof = backend.vrf_prove(alice.secret, b"round-seed|role")
    recomputed = backend.vrf_verify(alice.public, proof, b"round-seed|role")
    print(f"VRF output ({len(vrf_hash)} bytes): {vrf_hash.hex()[:32]}…")
    print(f"proof verifies and matches: {recomputed == vrf_hash}")

    # 2. Sortition for the proposer role of round 1. Alice holds 1,000 of
    #    10,000 currency units; tau_proposer expects 26 winners total.
    seed, tau, weight, total = H(b"public seed"), 26, 1000, 10_000
    result = sortition(backend, alice.secret, seed, tau,
                       proposer_role(1), weight, total)
    print(f"\nAlice selected as {result.j} sub-user(s) "
          f"(P[selected at all] = "
          f"{selection_probability(weight, tau, total):.2f})")
    j_checked = verify_sort(backend, alice.public, result.vrf_hash,
                            result.vrf_proof, seed, tau, proposer_role(1),
                            weight, total)
    print(f"any verifier recomputes j = {j_checked} from the proof")

    # 3. Sybil resistance: one 1000-unit user vs ten 100-unit pseudonyms.
    whole, split = 0, 0
    trials = 200
    for trial in range(trials):
        trial_seed = H(b"trial", trial.to_bytes(2, "big"))
        whole += sortition(backend, alice.secret, trial_seed, tau,
                           proposer_role(1), 1000, total).j
        for pseudonym in range(10):
            sybil = backend.keypair(H(b"sybil", bytes([pseudonym])))
            split += sortition(backend, sybil.secret, trial_seed, tau,
                               proposer_role(1), 100, total).j
    print(f"\nSybil check over {trials} seeds "
          f"(expected {trials * tau * weight / total:.0f} each):")
    print(f"  one 1000-unit identity : {whole} selections")
    print(f"  ten 100-unit pseudonyms: {split} selections")

    # 4. The committee-size analysis behind Figure 4's tau_step = 2000.
    print(f"\nP[violating BA* constraints] at (h=80%, tau=2000, T=0.685): "
          f"{check_paper_step_parameters():.2e}  (paper: ~5e-9)")
    print(f"same committee at h=76%: "
          f"{violation_probability(2000, 0.685, 0.76):.2e} "
          f"(why Figure 3 explodes toward 2/3)")


if __name__ == "__main__":
    main()
