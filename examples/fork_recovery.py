#!/usr/bin/env python3
"""Fork recovery after a network partition (section 8.2).

Weak synchrony lets an adversary who controls the links split honest
users onto different *tentative* chains. Algorand's answer: periodically
run BA* on "which fork do we all adopt", proposing forks with the same
sortition machinery as blocks and always choosing the longest fork (which
preserves every final block).

This example manufactures the fork the hard way — two groups of users
append different tentative blocks — then runs the recovery protocol over
the gossip network and shows everyone converging on the longest fork.

Run:  python examples/fork_recovery.py
"""

from __future__ import annotations

from repro import Simulation, SimulationConfig
from repro.crypto.hashing import H
from repro.ledger.block import Block, empty_block
from repro.node.recovery import run_recovery
from repro.sortition.seed import propose_seed


def manufacture_fork(sim: Simulation) -> None:
    """Append divergent round-3 blocks to two halves of the network."""
    group_a, group_b = sim.nodes[:8], sim.nodes[8:]
    reference = sim.nodes[0].chain

    def tentative_block(proposer, tag: bytes) -> Block:
        seed, proof = propose_seed(sim.backend, proposer.keypair.secret,
                                   reference.seed_of_round(2), 3)
        return Block(round_number=3, prev_hash=reference.tip_hash,
                     timestamp=sim.env.now + 1.0, seed=seed,
                     seed_proof=proof, proposer=proposer.keypair.public,
                     proposer_vrf_hash=H(tag), proposer_vrf_proof=b"p",
                     proposer_priority=H(tag), transactions=())

    block_a = tentative_block(sim.nodes[0], b"side-a")
    block_b = tentative_block(sim.nodes[8], b"side-b")
    for node in group_a:
        node.chain.append(block_a)
    for node in group_b:
        node.chain.append(block_b)
    # Side A managed one more round before stalling: it is the longest
    # fork, so recovery must converge on it.
    bonus = empty_block(4, block_a.block_hash)
    for node in group_a:
        node.chain.append(bonus)


def main() -> None:
    sim = Simulation(SimulationConfig(num_users=16, seed=19))
    sim.run_rounds(2)
    print(f"common prefix built: {sim.nodes[0].chain.height} rounds, "
          f"all equal: {sim.all_chains_equal()}")

    manufacture_fork(sim)
    tips = {node.chain.tip_hash for node in sim.nodes}
    heights = sorted({node.chain.height for node in sim.nodes})
    print(f"after partition: {len(tips)} distinct tips, "
          f"heights {heights} -> the network is forked")

    run_recovery(sim.nodes, pre_fork_round=2)
    sim.env.run(until=sim.env.now + 600)

    tips = {node.chain.tip_hash for node in sim.nodes}
    height = {node.chain.height for node in sim.nodes}
    print(f"after recovery: {len(tips)} distinct tip(s), "
          f"height {height}")
    assert len(tips) == 1, "recovery failed to converge"
    assert height == {4}, "recovery did not adopt the longest fork"
    print("all 16 users adopted the longest fork; final blocks preserved")


if __name__ == "__main__":
    main()
