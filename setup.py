"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets ``python setup.py develop`` perform the editable install
using only the locally available setuptools. Package metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
