"""repro — a reproduction of Algorand (SOSP 2017) in Python.

The package implements the paper's full stack:

* :mod:`repro.crypto` — Ed25519 + ECVRF (and a fast simulation backend);
* :mod:`repro.sortition` — cryptographic sortition and the seed schedule;
* :mod:`repro.ledger` — transactions, accounts, blocks, chains, storage;
* :mod:`repro.baplus` — the BA* Byzantine agreement protocol;
* :mod:`repro.node` — the user agent: proposal, rounds, recovery, catch-up;
* :mod:`repro.substrate` — the execution-substrate API (clock + transport)
  both runners satisfy;
* :mod:`repro.network` / :mod:`repro.sim` — the simulated WAN substrate;
* :mod:`repro.live` — the live substrate: real OS processes speaking the
  wire format over TCP or Unix domain sockets;
* :mod:`repro.adversary` — Byzantine strategies and network control;
* :mod:`repro.baselines` — the Bitcoin/Nakamoto comparison baseline;
* :mod:`repro.analysis` — committee sizing (Figure 3, Appendix B);
* :mod:`repro.experiments` — runners for every figure/table in section 10;
* :mod:`repro.obs` — tracing/metrics bus, JSONL export, trace-report CLI;
* :mod:`repro.conformance` — reference BA* state machine checked
  against every trace, online and offline.

Quickstart (simulated substrate, deterministic virtual time)::

    from repro import Simulation, SimulationConfig

    sim = Simulation(SimulationConfig(num_users=20, seed=1))
    sim.submit_payments(50)
    sim.run_rounds(3)
    assert sim.all_chains_equal()

Same protocol on real processes and sockets (live substrate)::

    from repro import SimulationConfig, SubstrateConfig, deploy

    cluster = deploy(SimulationConfig(
        num_users=5, seed=7, initial_balance=40,
        substrate=SubstrateConfig(kind="live")))
    cluster.submit_payments(20)
    cluster.run_rounds(3)
    assert cluster.all_chains_equal()

Config knobs are grouped (``network=NetworkConfig(...)``,
``runtime=RuntimeConfig(...)``, ``population=PopulationConfig(...)``,
``substrate=SubstrateConfig(...)``); the old flat keyword arguments are
still accepted under a :class:`DeprecationWarning`.
"""

from repro.common.params import PAPER_PARAMS, TEST_PARAMS, ProtocolParams
from repro.experiments.harness import (
    NetworkConfig,
    PopulationConfig,
    RuntimeConfig,
    Simulation,
    SimulationConfig,
    SubstrateConfig,
    deploy,
)
from repro.live.cluster import LiveCluster
from repro.obs import TraceBus
from repro.substrate import Clock, SimSubstrate, Substrate, Transport

__version__ = "1.1.0"

__all__ = [
    "Simulation",
    "SimulationConfig",
    "NetworkConfig",
    "RuntimeConfig",
    "PopulationConfig",
    "SubstrateConfig",
    "deploy",
    "LiveCluster",
    "Clock",
    "Transport",
    "Substrate",
    "SimSubstrate",
    "TraceBus",
    "ProtocolParams",
    "PAPER_PARAMS",
    "TEST_PARAMS",
    "__version__",
]
