"""repro — a reproduction of Algorand (SOSP 2017) in Python.

The package implements the paper's full stack:

* :mod:`repro.crypto` — Ed25519 + ECVRF (and a fast simulation backend);
* :mod:`repro.sortition` — cryptographic sortition and the seed schedule;
* :mod:`repro.ledger` — transactions, accounts, blocks, chains, storage;
* :mod:`repro.baplus` — the BA* Byzantine agreement protocol;
* :mod:`repro.node` — the user agent: proposal, rounds, recovery, catch-up;
* :mod:`repro.network` / :mod:`repro.sim` — the simulated WAN substrate;
* :mod:`repro.adversary` — Byzantine strategies and network control;
* :mod:`repro.baselines` — the Bitcoin/Nakamoto comparison baseline;
* :mod:`repro.analysis` — committee sizing (Figure 3, Appendix B);
* :mod:`repro.experiments` — runners for every figure/table in section 10;
* :mod:`repro.obs` — tracing/metrics bus, JSONL export, trace-report CLI;
* :mod:`repro.conformance` — reference BA* state machine checked
  against every trace, online and offline.

Quickstart::

    from repro import Simulation, SimulationConfig

    sim = Simulation(SimulationConfig(num_users=20, seed=1))
    sim.submit_payments(50)
    sim.run_rounds(3)
    assert sim.all_chains_equal()
"""

from repro.common.params import PAPER_PARAMS, TEST_PARAMS, ProtocolParams
from repro.experiments.harness import Simulation, SimulationConfig
from repro.obs import TraceBus

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "SimulationConfig",
    "TraceBus",
    "ProtocolParams",
    "PAPER_PARAMS",
    "TEST_PARAMS",
    "__version__",
]
