"""Cryptographic sortition: private, non-interactive committee selection."""

from repro.sortition.roles import (
    FINAL_STEP,
    REDUCTION_ONE,
    REDUCTION_TWO,
    committee_role,
    fork_proposer_role,
    proposer_role,
)
from repro.sortition.seed import (
    SeedChain,
    fallback_seed,
    propose_seed,
    selection_round,
    verify_seed,
)
from repro.sortition.selection import (
    SELECTION_STATS,
    SelectionStats,
    SortitionProof,
    selection_probability,
    sortition,
    sub_users_selected,
    verify_sort,
)

__all__ = [
    "SELECTION_STATS",
    "SelectionStats",
    "SortitionProof",
    "sortition",
    "verify_sort",
    "sub_users_selected",
    "selection_probability",
    "proposer_role",
    "committee_role",
    "fork_proposer_role",
    "FINAL_STEP",
    "REDUCTION_ONE",
    "REDUCTION_TWO",
    "SeedChain",
    "propose_seed",
    "verify_seed",
    "fallback_seed",
    "selection_round",
]
