"""Seed schedule for sortition (sections 5.2 and 5.3).

Every round publishes a fresh seed. The proposer of round ``r``'s block
computes ``(seed_r, pi) = VRF_sk(seed_{r-1} || r)`` and embeds it in the
block; if the round's block is empty or carries an invalid seed, everyone
falls back to ``seed_r = H(seed_{r-1} || r)`` (the hash is modeled as a
random oracle).

Sortition at round ``r`` does not use ``seed_{r-1}`` directly: to limit
seed grinding, the *selection seed* is refreshed only every ``R`` rounds —
round ``r`` uses the seed of round ``r - 1 - (r mod R)``.
"""

from __future__ import annotations

from repro.common.encoding import encode
from repro.crypto.backend import CryptoBackend
from repro.crypto.hashing import H


def seed_input(previous_seed: bytes, round_number: int) -> bytes:
    """The VRF/hash input ``seed_{r-1} || r``."""
    return previous_seed + encode(round_number)


def propose_seed(backend: CryptoBackend, secret: bytes,
                 previous_seed: bytes,
                 round_number: int) -> tuple[bytes, bytes]:
    """Proposer-side seed for round ``round_number``: ``(seed, proof)``."""
    return backend.vrf_prove(secret, seed_input(previous_seed, round_number))


def verify_seed(backend: CryptoBackend, public: bytes, seed: bytes,
                proof: bytes, previous_seed: bytes,
                round_number: int) -> bool:
    """Check a block's embedded seed against its proposer's VRF proof."""
    try:
        expected = backend.vrf_verify(
            public, proof, seed_input(previous_seed, round_number))
    except Exception:
        return False
    return expected == seed


def fallback_seed(previous_seed: bytes, round_number: int) -> bytes:
    """Seed used when the round's block is empty or carries a bad seed."""
    return H(seed_input(previous_seed, round_number))


def selection_round(round_number: int, refresh_interval: int) -> int:
    """The round whose seed governs sortition at ``round_number``.

    Implements the paper's ``r - 1 - (r mod R)`` rule; clamped at 0 so the
    genesis seed covers the first rounds.
    """
    if refresh_interval < 1:
        raise ValueError("refresh interval must be >= 1")
    return max(0, round_number - 1 - (round_number % refresh_interval))


class SeedChain:
    """Tracks the per-round seed sequence for one chain of blocks.

    The chain stores ``seed_r`` for every round agreed so far and answers
    ``selection_seed(r)`` queries under the refresh-interval rule.
    """

    def __init__(self, genesis_seed: bytes, refresh_interval: int) -> None:
        if len(genesis_seed) == 0:
            raise ValueError("genesis seed must be non-empty")
        self._seeds: list[bytes] = [genesis_seed]
        self._refresh_interval = refresh_interval

    @property
    def refresh_interval(self) -> int:
        return self._refresh_interval

    def copy(self) -> "SeedChain":
        """Independent clone (seeds are immutable bytes, list is copied)."""
        clone = SeedChain(self._seeds[0], self._refresh_interval)
        clone._seeds = list(self._seeds)
        return clone

    def __len__(self) -> int:
        return len(self._seeds)

    def seed_of_round(self, round_number: int) -> bytes:
        """The published seed of ``round_number`` (0 == genesis)."""
        return self._seeds[round_number]

    def append(self, seed: bytes) -> None:
        """Record the next round's seed (round ``len(self)``)."""
        self._seeds.append(seed)

    def truncate(self, length: int) -> None:
        """Drop seeds from round ``length`` on (used when switching forks)."""
        if length < 1:
            raise ValueError("cannot truncate the genesis seed")
        del self._seeds[length:]

    def selection_seed(self, round_number: int) -> bytes:
        """Seed to pass to sortition for ``round_number`` (section 5.2)."""
        return self._seeds[
            selection_round(round_number, self._refresh_interval)
        ]
