"""Vectorized sortition over an aggregated stake pool.

The per-user path (:func:`repro.sortition.selection.sortition`) asks,
for one user at a time: "given my VRF output, how many sub-users do I
win?". Materializing only sortition winners requires the *population*
question instead: "which of these N accounts win at least one sub-user
for this (seed, role)?" — and it must be answered for every role of
every round. Asking it by running N scalar sortitions would keep the
per-round cost O(N · CDF-walk); this module answers it with one
vectorized screen over the pool's balance array plus a handful of
scalar confirmations.

The screen relies on the selection decision being a *threshold test*:
a user of weight ``w`` wins ``j >= 1`` sub-users iff their VRF fraction
exceeds ``B(0; w, p) = (1-p)^w`` — the CDF walk in
:func:`sub_users_selected` starts at that term and only continues while
the fraction is above the running sum. ``(1-p)^w`` for the whole pool
is one ``numpy`` expression; accounts whose fraction clears the
threshold (minus a conservative epsilon for the float-path difference
between ``exp(w·log1p(-p))`` and python's ``(1-p)**w``) are then
*confirmed* through the unchanged scalar oracle, which assigns the
exact ``j``. The screen therefore can only err by letting a borderline
account through to the oracle — never by dropping a winner — and every
returned ``j`` is bit-identical to what the per-user path computes.

VRF evaluation stays per-account (that is the point of sortition: each
user's chance is their own secret's), but only the *hash* is computed
during the sweep; proofs are produced for winners alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import SortitionError
from repro.crypto.backend import CryptoBackend
from repro.sortition.selection import (
    SELECTION_STATS,
    SortitionProof,
    sub_users_selected,
)

#: Relative safety margin on the ``(1-p)^w`` screen threshold. The
#: vectorized threshold is evaluated as ``exp(w * log1p(-p))`` whose
#: relative error vs. python's ``(1-p)**w`` is O(w · ulp) — below 1e-11
#: even at w = 1e6 — so a 1e-9 relative margin admits every account the
#: scalar oracle could select, at the cost of a (rare) false candidate
#: that the oracle then rejects.
_SCREEN_MARGIN = 1e-9


@dataclass(frozen=True)
class PoolSelection:
    """Winners of one (seed, role) pass over the pool."""

    #: account slot -> full sortition proof (hash, proof, exact j >= 1).
    winners: dict[int, SortitionProof]
    #: How many accounts survived the screen (oracle confirmations run).
    candidates: int
    #: How many accounts held non-zero weight (VRF hashes computed).
    evaluated: int


def pool_fractions(backend: CryptoBackend, secrets: list[bytes],
                   weights: np.ndarray, alpha: bytes) -> np.ndarray:
    """VRF hash fraction per account (NaN for zero-weight slots).

    One hash per staked account — the unavoidable per-user part of
    sortition — but batched into a single pass that feeds the
    vectorized screen, instead of being interleaved with N python-level
    CDF walks.
    """
    if len(secrets) != len(weights):
        raise SortitionError(
            f"pool has {len(secrets)} secrets but {len(weights)} weights")
    vrf_output = backend.vrf_output
    prefixes = bytearray(8 * len(secrets))
    staked = np.flatnonzero(weights)
    for slot in staked:
        slot = int(slot)
        prefixes[8 * slot:8 * slot + 8] = (
            vrf_output(secrets[slot], alpha)[:8])
    # Same top-53-bits mapping as hash_to_fraction, vectorized.
    tops = np.frombuffer(bytes(prefixes), dtype=">u8") >> np.uint64(11)
    fractions = tops.astype(np.float64) / float(1 << 53)
    fractions = np.where(weights > 0, fractions, np.nan)
    return fractions


def pool_select(backend: CryptoBackend, secrets: list[bytes],
                weights: np.ndarray, tau: float, total_weight: int,
                seed: bytes, role: bytes) -> PoolSelection:
    """One vectorized selection pass: who wins ``role`` under ``seed``?

    Args:
        backend: crypto backend holding every pool key (the harness
            generates all key pairs up front either way).
        secrets: per-slot secret keys, aligned with ``weights``.
        weights: int balance array (zero = unstaked slot).
        tau: the role's expected committee size.
        total_weight: the sortition denominator ``W``.
        seed: the round's selection seed.
        role: canonical role bytes (proposer/committee/final).

    Returns:
        A :class:`PoolSelection` whose ``winners[slot].j`` equals
        exactly ``sortition(...).j`` for that account.
    """
    if total_weight <= 0:
        raise SortitionError(
            f"total weight must be positive, got {total_weight}")
    if tau <= 0:
        raise SortitionError(f"tau must be positive, got {tau}")
    weights = np.asarray(weights, dtype=np.int64)
    alpha = seed + role
    fractions = pool_fractions(backend, secrets, weights, alpha)
    evaluated = int(np.count_nonzero(weights))
    p = tau / total_weight
    if p >= 1.0:
        # Certainty: every staked account is selected with j == weight
        # (matching the scalar path's p >= 1.0 short-circuit).
        candidate_slots = np.flatnonzero(weights)
    else:
        with np.errstate(invalid="ignore"):
            thresholds = np.exp(weights * np.log1p(-p))
            screened = fractions > thresholds * (1.0 - _SCREEN_MARGIN)
        candidate_slots = np.flatnonzero(screened)

    winners: dict[int, SortitionProof] = {}
    stats = SELECTION_STATS
    for slot in candidate_slots:
        slot = int(slot)
        vrf_hash, vrf_proof = backend.vrf_prove(secrets[slot], alpha)
        j = sub_users_selected(vrf_hash, int(weights[slot]), tau,
                               total_weight)
        if j > 0:
            winners[slot] = SortitionProof(vrf_hash=vrf_hash,
                                           vrf_proof=vrf_proof, j=j)
    stats.pool_evaluations += evaluated
    stats.pool_candidates += len(candidate_slots)
    stats.pool_selected += len(winners)
    return PoolSelection(winners=winners,
                         candidates=len(candidate_slots),
                         evaluated=evaluated)
