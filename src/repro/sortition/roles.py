"""Role strings for sortition.

Sortition takes a ``role`` parameter distinguishing what a user may be
selected for: proposing a block in round ``r``, serving on the committee of
step ``s`` of round ``r``, or proposing a fork during recovery. Roles are
canonically encoded so every node derives identical VRF inputs.
"""

from __future__ import annotations

from functools import lru_cache

from repro.common.encoding import encode

#: Step number reserved for the final-consensus committee (section 7.4).
#: Ordinary BinaryBA* steps are numbered 1..MaxSteps; the reduction runs as
#: steps REDUCTION_ONE and REDUCTION_TWO.
FINAL_STEP = "final"
REDUCTION_ONE = "reduction_one"
REDUCTION_TWO = "reduction_two"


@lru_cache(maxsize=4096)
def proposer_role(round_number: int) -> bytes:
    """Role for proposing a block in ``round_number`` (section 6)."""
    return encode(["proposer", round_number])


@lru_cache(maxsize=4096)
def committee_role(round_number: int, step: int | str) -> bytes:
    """Role for the BA* committee at ``(round, step)`` (Algorithm 4)."""
    return encode(["committee", round_number, str(step)])


def fork_proposer_role(round_number: int, attempt: int) -> bytes:
    """Role for proposing a fork during recovery (section 8.2).

    ``attempt`` distinguishes repeated recovery tries; the paper re-hashes
    the seed each attempt, we fold the attempt counter into the role, which
    has the same effect of drawing fresh proposers and committees.
    """
    return encode(["fork_proposer", round_number, attempt])
