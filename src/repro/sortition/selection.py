"""Cryptographic sortition (Algorithms 1 and 2 of the paper).

Given a VRF output ``hash`` (uniform in ``[0, 2**hashlen)``), a user of
weight ``w`` out of total weight ``W``, and a role threshold ``tau``, the
user is selected as ``j`` "sub-users" where ``j`` follows the binomial
distribution ``B(j; w, tau/W)``. The paper's interval walk

    while hash/2^hashlen not in [ sum_{k<=j} B(k), sum_{k<=j+1} B(k) ): j++

is exactly the inverse binomial CDF evaluated at the hash fraction, which
is how we compute it (via :func:`scipy.stats.binom.ppf`, with an exact
fallback for small weights).

The binomial is what makes sortition Sybil-resistant: since
``B(k1; n1, p) + B(k2; n2, p)`` convolves to ``B(k1+k2; n1+n2, p)``,
splitting one's currency across pseudonyms leaves the distribution of
selected sub-users unchanged (tested property).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import binom

from repro.common.errors import SortitionError
from repro.crypto.backend import CryptoBackend


def hash_to_fraction(vrf_hash: bytes) -> float:
    """Map VRF output bytes to a fraction in ``[0, 1)``.

    Uses the top 53 bits so the conversion is exact in a double.
    """
    if not vrf_hash:
        raise SortitionError("empty VRF hash")
    top = int.from_bytes(vrf_hash[:8], "big") >> 11  # 53 bits
    return top / float(1 << 53)


def sub_users_selected(vrf_hash: bytes, weight: int, tau: float,
                       total_weight: int) -> int:
    """Number of selected sub-users ``j`` for this VRF output.

    Args:
        vrf_hash: the (pseudo-random) VRF output for ``seed || role``.
        weight: the user's weight ``w`` (currency units).
        tau: expected number of selected sub-users across all users.
        total_weight: total currency ``W``.

    Returns:
        ``j`` in ``[0, weight]``; ``0`` means not selected.
    """
    if weight < 0:
        raise SortitionError(f"negative weight {weight}")
    if total_weight <= 0:
        raise SortitionError(f"total weight must be positive, got {total_weight}")
    if weight > total_weight:
        raise SortitionError(
            f"weight {weight} exceeds total weight {total_weight}"
        )
    if tau <= 0:
        raise SortitionError(f"tau must be positive, got {tau}")
    if weight == 0:
        return 0
    p = tau / total_weight
    if p >= 1.0:
        # Every sub-user is selected with certainty.
        return weight
    fraction = hash_to_fraction(vrf_hash)
    if weight <= _EXACT_WEIGHT_LIMIT:
        return _inverse_cdf_exact(fraction, weight, p)
    j = int(binom.ppf(fraction, weight, p))
    return max(0, min(j, weight))


#: Below this weight we walk the CDF with exact term recurrences, which is
#: faster than a scipy call and free of any tail-accuracy concerns.
_EXACT_WEIGHT_LIMIT = 64


def _inverse_cdf_exact(fraction: float, w: int, p: float) -> int:
    """Smallest ``j`` with ``CDF(j) >= fraction`` by direct summation."""
    term = (1.0 - p) ** w  # B(0; w, p)
    cumulative = term
    j = 0
    while cumulative < fraction and j < w:
        # B(k+1) = B(k) * (w-k)/(k+1) * p/(1-p)
        term *= (w - j) / (j + 1) * (p / (1.0 - p))
        cumulative += term
        j += 1
    return j


class SelectionStats:
    """Process-wide sortition tallies (observability).

    Plain int increments — negligible next to the VRF work each call
    already does — so they stay always-on. The harness snapshots the
    tuple at simulation start and reports per-run *deltas*, which keeps
    the numbers correct when multiple simulations run in one process.
    """

    __slots__ = ("proves", "prove_selected", "subusers_selected",
                 "verifies", "verify_selected", "pool_evaluations",
                 "pool_candidates", "pool_selected")

    def __init__(self) -> None:
        self.proves = 0
        self.prove_selected = 0
        self.subusers_selected = 0
        self.verifies = 0
        self.verify_selected = 0
        #: Vectorized pool pass (:mod:`repro.sortition.pool`): accounts
        #: screened, screen survivors confirmed by the scalar oracle,
        #: and confirmed winners. candidates/evaluations is the screen's
        #: rejectivity; selected/candidates its (near-1) precision.
        self.pool_evaluations = 0
        self.pool_candidates = 0
        self.pool_selected = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "proves": self.proves,
            "prove_selected": self.prove_selected,
            "subusers_selected": self.subusers_selected,
            "verifies": self.verifies,
            "verify_selected": self.verify_selected,
            "pool_evaluations": self.pool_evaluations,
            "pool_candidates": self.pool_candidates,
            "pool_selected": self.pool_selected,
        }

    def delta_since(self, baseline: dict[str, int]) -> dict[str, int]:
        """Per-run view: counts accumulated since ``baseline``."""
        current = self.as_dict()
        return {name: current[name] - baseline.get(name, 0)
                for name in current}


#: The process-wide tally every :func:`sortition`/:func:`verify_sort`
#: call updates.
SELECTION_STATS = SelectionStats()


@dataclass(frozen=True)
class SortitionProof:
    """Result of running sortition: carried in every committee message."""

    vrf_hash: bytes
    vrf_proof: bytes
    j: int

    @property
    def selected(self) -> bool:
        return self.j > 0


def sortition(backend: CryptoBackend, secret: bytes, seed: bytes,
              tau: float, role: bytes, weight: int,
              total_weight: int) -> SortitionProof:
    """Algorithm 1: privately check selection for ``role`` under ``seed``."""
    vrf_hash, vrf_proof = backend.vrf_prove(secret, seed + role)
    j = sub_users_selected(vrf_hash, weight, tau, total_weight)
    stats = SELECTION_STATS
    stats.proves += 1
    if j > 0:
        stats.prove_selected += 1
        stats.subusers_selected += j
    return SortitionProof(vrf_hash=vrf_hash, vrf_proof=vrf_proof, j=j)


def verify_sort(backend: CryptoBackend, public: bytes, vrf_hash: bytes,
                vrf_proof: bytes, seed: bytes, tau: float, role: bytes,
                weight: int, total_weight: int) -> int:
    """Algorithm 2: publicly verify a sortition proof.

    Returns the number of selected sub-users, or ``0`` if the proof is
    invalid or the user was not selected.
    """
    stats = SELECTION_STATS
    stats.verifies += 1
    try:
        expected_hash = backend.vrf_verify(public, vrf_proof, seed + role)
    except Exception:
        return 0
    if expected_hash != vrf_hash:
        return 0
    j = sub_users_selected(vrf_hash, weight, tau, total_weight)
    if j > 0:
        stats.verify_selected += 1
    return j


def expected_committee_votes(tau: float) -> float:
    """Expected total sub-user selections across all users (== tau)."""
    return float(tau)


def selection_probability(weight: int, tau: float, total_weight: int) -> float:
    """Probability that a user of ``weight`` is selected at least once."""
    if weight == 0:
        return 0.0
    p = min(1.0, tau / total_weight)
    return 1.0 - math.pow(1.0 - p, weight)
