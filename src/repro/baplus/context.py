"""The BA* context (the ``ctx`` of Algorithms 3-9).

Captures the state of the ledger that one BA* execution runs against: the
sortition seed for this round, the weight table (public key -> currency),
the total weight ``W``, and the hash of the last agreed block. The context
is immutable for the duration of one round's agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.common.errors import SortitionError


@dataclass(frozen=True)
class BAContext:
    """Ledger snapshot that one round of BA* is bound to."""

    seed: bytes
    weights: Mapping[bytes, int]
    total_weight: int
    last_block_hash: bytes

    def __post_init__(self) -> None:
        if self.total_weight <= 0:
            raise SortitionError("total weight must be positive")
        # Freeze the mapping so a shared dict cannot drift mid-round.
        # Already-immutable mappings (the ledger's shared weight
        # snapshots, ArrayWeights views) are adopted as-is: re-copying
        # a 10k-account table per node per round is exactly the scaling
        # cost the shared snapshots exist to remove.
        weights = self.weights
        if not (isinstance(weights, MappingProxyType)
                or getattr(weights, "frozen", False)):
            object.__setattr__(self, "weights",
                               MappingProxyType(dict(weights)))

    def weight_of(self, public: bytes) -> int:
        return self.weights.get(public, 0)

    @classmethod
    def from_weights(cls, seed: bytes, weights: Mapping[bytes, int],
                     last_block_hash: bytes) -> "BAContext":
        # ArrayWeights precomputes the total; summing a large lazy view
        # in python would defeat the array representation.
        total = getattr(weights, "total", None)
        if total is None:
            total = sum(weights.values())
        return cls(seed=seed, weights=weights, total_weight=total,
                   last_block_hash=last_block_hash)
