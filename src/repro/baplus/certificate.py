"""Block certificates (section 8.3, "Bootstrapping new users").

A certificate for a round is an aggregate of votes from the deciding step
of BinaryBA* sufficient to let anyone re-derive the agreement:
``floor(T * tau) + 1`` valid committee votes for the same value, round and
step. Users validate certificates exactly as live nodes validate votes
(Algorithm 6): signature, chain binding, and sortition proof.

A *final certificate* (step == "final") additionally proves safety of the
block: it uses the final-step committee parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baplus.buffer import VoteBuffer
from repro.baplus.context import BAContext
from repro.baplus.messages import VoteMessage
from repro.baplus.voting import process_msg
from repro.common.errors import InvalidCertificate
from repro.common.params import ProtocolParams
from repro.network.message import VOTE_MESSAGE_BYTES
from repro.sortition.roles import FINAL_STEP


def step_parameters(step: str, params: ProtocolParams) -> tuple[float, float]:
    """(tau, T) in force for ``step``."""
    if step == FINAL_STEP:
        return params.tau_final, params.t_final
    return params.tau_step, params.t_step


def votes_needed(step: str, params: ProtocolParams) -> int:
    """Minimum vote weight for a valid certificate: floor(T * tau) + 1."""
    tau, threshold = step_parameters(step, params)
    return math.floor(threshold * tau) + 1


@dataclass(frozen=True)
class Certificate:
    """Verifiable evidence that a round agreed on ``value``."""

    round_number: int
    step: str
    value: bytes
    votes: tuple[VoteMessage, ...]

    @property
    def size(self) -> int:
        """Approximate wire size in bytes (drives storage accounting)."""
        return len(self.votes) * VOTE_MESSAGE_BYTES

    @property
    def is_final(self) -> bool:
        return self.step == FINAL_STEP


def build_certificate(buffer: VoteBuffer, ctx: BAContext, backend,
                      params: ProtocolParams, round_number: int, step: str,
                      value: bytes) -> Certificate | None:
    """Assemble a certificate from buffered votes; None if short of votes."""
    tau, _ = step_parameters(step, params)
    needed = votes_needed(step, params)
    chosen: list[VoteMessage] = []
    weight = 0
    voters: set[bytes] = set()
    for vote in buffer.messages(round_number, step):
        if vote.value != value or vote.voter in voters:
            continue
        votes, _, _ = process_msg(backend, ctx, tau, vote)
        if votes == 0:
            continue
        voters.add(vote.voter)
        chosen.append(vote)
        weight += votes
        if weight >= needed:
            return Certificate(round_number=round_number, step=step,
                               value=value, votes=tuple(chosen))
    return None


def verify_certificate(certificate: Certificate, ctx: BAContext, backend,
                       params: ProtocolParams) -> None:
    """Validate a certificate; raise :class:`InvalidCertificate` if bad.

    ``ctx`` must be the context of the certified round *as derived from
    the previous blocks* — this is why new users validate blocks in order
    (section 8.3).
    """
    tau, _ = step_parameters(certificate.step, params)
    needed = votes_needed(certificate.step, params)
    weight = 0
    voters: set[bytes] = set()
    for vote in certificate.votes:
        if vote.round_number != certificate.round_number:
            raise InvalidCertificate("vote for a different round")
        if vote.step != certificate.step:
            raise InvalidCertificate("vote for a different step")
        if vote.value != certificate.value:
            raise InvalidCertificate("vote for a different value")
        if vote.voter in voters:
            raise InvalidCertificate("duplicate voter in certificate")
        votes, _, _ = process_msg(backend, ctx, tau, vote)
        if votes == 0:
            raise InvalidCertificate("certificate vote fails validation")
        voters.add(vote.voter)
        weight += votes
    if weight < needed:
        raise InvalidCertificate(
            f"certificate carries {weight} votes; needs {needed}"
        )
