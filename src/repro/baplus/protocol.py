"""BA* main procedures: Reduction, BinaryBA*, and BA* (Algorithms 3, 7, 8).

All three are simulation generators driven with ``yield from`` inside a
node's round process. They follow the paper's pseudocode step for step,
including the subtle liveness/safety devices:

* every ``return`` in BinaryBA* is paired with a timeout check that sets
  the *next-step* vote to the value being returned, so users that already
  finished still steer stragglers (section 7.4, "safety with strong
  synchrony");
* a user that reaches consensus votes in the next three steps with the
  consensus value, so remaining users can still cross the threshold;
* step 1 consensus additionally triggers a ``final``-committee vote, which
  BA* counts to distinguish final from tentative consensus;
* every third step uses the common coin instead of a deterministic
  fallback, defeating the adversary's vote-withholding split attack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baplus.context import BAContext
from repro.baplus.voting import (
    BAParticipant,
    TIMEOUT,
    committee_vote,
    common_coin,
    count_votes,
)
from repro.common.errors import ConsensusHalted
from repro.ledger.block import empty_block_hash
from repro.sortition.roles import FINAL_STEP, REDUCTION_ONE, REDUCTION_TWO

#: Outcome kinds (section 4): FINAL excludes any other agreed block this
#: round; TENTATIVE may coexist with other tentative blocks on forks.
FINAL = "final"
TENTATIVE = "tentative"


@dataclass(frozen=True)
class AgreementResult:
    """What one node's BA* execution concluded for a round."""

    kind: str
    block_hash: bytes
    deciding_step: str
    steps_taken: int

    @property
    def is_final(self) -> bool:
        return self.kind == FINAL


def reduction(part: BAParticipant, ctx: BAContext, round_number: int,
              hblock: bytes):
    """Algorithm 7: reduce arbitrary-value agreement to a binary choice.

    Returns either a block hash that gathered a voting quorum or the
    empty-block hash. Ensures at most one non-empty hash can emerge for
    all honest users.
    """
    params = part.params
    committee_vote(part, ctx, round_number, REDUCTION_ONE, params.tau_step,
                   hblock)
    # Others may still be waiting for block proposals, so the first step
    # waits lambda_block + lambda_step.
    hblock1 = yield from count_votes(
        part, ctx, round_number, REDUCTION_ONE, params.t_step,
        params.tau_step, params.lambda_block + params.lambda_step,
    )
    empty_hash = empty_block_hash(round_number, ctx.last_block_hash)
    if hblock1 is TIMEOUT:
        committee_vote(part, ctx, round_number, REDUCTION_TWO,
                       params.tau_step, empty_hash)
    else:
        committee_vote(part, ctx, round_number, REDUCTION_TWO,
                       params.tau_step, hblock1)
    hblock2 = yield from count_votes(
        part, ctx, round_number, REDUCTION_TWO, params.t_step,
        params.tau_step, params.lambda_step,
    )
    if hblock2 is TIMEOUT:
        return empty_hash
    return hblock2


@dataclass(frozen=True)
class BinaryResult:
    """Outcome of BinaryBA*: the agreed hash and where it was decided."""

    value: bytes
    deciding_step: int
    voted_final: bool


def binary_ba_star(part: BAParticipant, ctx: BAContext, round_number: int,
                   block_hash: bytes):
    """Algorithm 8: agree on ``block_hash`` or the empty-block hash.

    Raises:
        ConsensusHalted: after ``MaxSteps`` steps without consensus; the
            caller must fall back to the recovery protocol (section 8.2).
    """
    params = part.params
    step = 1
    r = block_hash
    empty_hash = empty_block_hash(round_number, ctx.last_block_hash)

    def vote_next_three(final_value: bytes, after_step: int) -> None:
        # A finished user keeps steering the next three steps (section 7.4).
        for future in range(after_step + 1, after_step + 4):
            committee_vote(part, ctx, round_number, str(future),
                           params.tau_step, final_value)

    while step < params.max_steps:
        # --- Step A: push toward block_hash on timeout -------------------
        committee_vote(part, ctx, round_number, str(step), params.tau_step, r)
        r = yield from count_votes(
            part, ctx, round_number, str(step), params.t_step,
            params.tau_step, params.lambda_step,
        )
        if r is TIMEOUT:
            r = block_hash
        elif r != empty_hash:
            vote_next_three(r, step)
            voted_final = step == 1
            if voted_final:
                committee_vote(part, ctx, round_number, FINAL_STEP,
                               params.tau_final, r)
            return BinaryResult(value=r, deciding_step=step,
                                voted_final=voted_final)
        step += 1

        # --- Step B: push toward empty_hash on timeout --------------------
        committee_vote(part, ctx, round_number, str(step), params.tau_step, r)
        r = yield from count_votes(
            part, ctx, round_number, str(step), params.t_step,
            params.tau_step, params.lambda_step,
        )
        if r is TIMEOUT:
            r = empty_hash
        elif r == empty_hash:
            vote_next_three(r, step)
            return BinaryResult(value=r, deciding_step=step,
                                voted_final=False)
        step += 1

        # --- Step C: common coin breaks adversarial splits ----------------
        committee_vote(part, ctx, round_number, str(step), params.tau_step, r)
        r = yield from count_votes(
            part, ctx, round_number, str(step), params.t_step,
            params.tau_step, params.lambda_step,
        )
        if r is TIMEOUT:
            if common_coin(part, ctx, round_number, str(step),
                           params.tau_step) == 0:
                r = block_hash
            else:
                r = empty_hash
        step += 1

    # No consensus after MaxSteps: assume a network problem and rely on
    # the recovery protocol of section 8.2 (the paper's HangForever()).
    raise ConsensusHalted(
        f"BinaryBA* exceeded MaxSteps={params.max_steps} in round "
        f"{round_number}"
    )


def ba_star(part: BAParticipant, ctx: BAContext, round_number: int,
            hblock: bytes):
    """Algorithm 3: full BA* for one round, given the initial block hash.

    Returns an :class:`AgreementResult` whose ``block_hash`` the caller
    resolves to a block via its proposal store (``BlockOfHash``).
    """
    params = part.params
    reduced = yield from reduction(part, ctx, round_number, hblock)
    binary = yield from binary_ba_star(part, ctx, round_number, reduced)
    final_vote = yield from count_votes(
        part, ctx, round_number, FINAL_STEP, params.t_final,
        params.tau_final, params.lambda_step,
    )
    if final_vote is not TIMEOUT and binary.value == final_vote:
        kind = FINAL
    else:
        kind = TENTATIVE
    return AgreementResult(
        kind=kind,
        block_hash=binary.value,
        deciding_step=str(binary.deciding_step),
        steps_taken=binary.deciding_step,
    )
