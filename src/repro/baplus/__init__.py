"""BA*: the committee-based Byzantine agreement protocol (paper section 7)."""

from repro.baplus.accountability import (
    DoubleVoteEvidence,
    EquivocationEvidence,
    find_double_votes,
    find_equivocations,
    scan_buffer,
)
from repro.baplus.buffer import VoteBuffer
from repro.baplus.certificate import (
    Certificate,
    build_certificate,
    step_parameters,
    verify_certificate,
    votes_needed,
)
from repro.baplus.context import BAContext
from repro.baplus.messages import VoteMessage, make_vote
from repro.baplus.protocol import (
    FINAL,
    TENTATIVE,
    AgreementResult,
    BinaryResult,
    ba_star,
    binary_ba_star,
    reduction,
)
from repro.baplus.voting import (
    BAParticipant,
    TIMEOUT,
    committee_vote,
    common_coin,
    count_votes,
    process_msg,
)

__all__ = [
    "BAContext",
    "BAParticipant",
    "VoteBuffer",
    "VoteMessage",
    "make_vote",
    "committee_vote",
    "count_votes",
    "process_msg",
    "common_coin",
    "TIMEOUT",
    "ba_star",
    "binary_ba_star",
    "reduction",
    "AgreementResult",
    "BinaryResult",
    "FINAL",
    "TENTATIVE",
    "Certificate",
    "build_certificate",
    "verify_certificate",
    "votes_needed",
    "step_parameters",
    "DoubleVoteEvidence",
    "EquivocationEvidence",
    "find_double_votes",
    "find_equivocations",
    "scan_buffer",
]
