"""Misbehavior detection ("detect and punish", paper section 2).

The paper notes that "Algorand may be extended to 'detect and punish'
malicious users, but this is not required to prevent forks or double
spending." This module implements the detection half: because every BA*
vote and every block proposal is signed, two conflicting signed
statements from one key are *self-certifying evidence* of Byzantine
behavior that any user can verify offline and, in a deployment with
slashing, submit for punishment.

Two evidence types:

* :class:`DoubleVoteEvidence` — two valid votes by the same key for the
  same ``(round, step)`` with different values (the Figure 8 committee
  attack produces these in volume);
* :class:`EquivocationEvidence` — two different blocks proposed by the
  same key for the same round (the Figure 8 proposer attack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.baplus.buffer import VoteBuffer
from repro.baplus.messages import VoteMessage
from repro.crypto.backend import CryptoBackend
from repro.ledger.block import Block


@dataclass(frozen=True)
class DoubleVoteEvidence:
    """Two conflicting signed votes from one committee member."""

    offender: bytes
    round_number: int
    step: str
    first: VoteMessage
    second: VoteMessage

    def verify(self, backend: CryptoBackend) -> bool:
        """Anyone can check the evidence without trusting the reporter."""
        return (
            self.first.voter == self.second.voter == self.offender
            and self.first.round_number == self.second.round_number
            == self.round_number
            and self.first.step == self.second.step == self.step
            and self.first.value != self.second.value
            and self.first.verify_signature(backend)
            and self.second.verify_signature(backend)
        )


@dataclass(frozen=True)
class EquivocationEvidence:
    """Two different blocks from one proposer for one round."""

    offender: bytes
    round_number: int
    first_hash: bytes
    second_hash: bytes

    @property
    def conflicting(self) -> bool:
        return self.first_hash != self.second_hash


def find_double_votes(votes: Iterable[VoteMessage],
                      backend: CryptoBackend) -> list[DoubleVoteEvidence]:
    """Scan signed votes for conflicting pairs (one report per offender
    per (round, step))."""
    seen: dict[tuple[bytes, int, str], VoteMessage] = {}
    evidence: list[DoubleVoteEvidence] = []
    reported: set[tuple[bytes, int, str]] = set()
    for vote in votes:
        if not vote.verify_signature(backend):
            continue  # unsigned claims prove nothing
        key = (vote.voter, vote.round_number, vote.step)
        previous = seen.get(key)
        if previous is None:
            seen[key] = vote
            continue
        if previous.value != vote.value and key not in reported:
            reported.add(key)
            evidence.append(DoubleVoteEvidence(
                offender=vote.voter, round_number=vote.round_number,
                step=vote.step, first=previous, second=vote))
    return evidence


def scan_buffer(buffer: VoteBuffer, round_number: int, steps: Iterable[str],
                backend: CryptoBackend) -> list[DoubleVoteEvidence]:
    """Scan one round's buckets of a node's vote buffer."""
    evidence: list[DoubleVoteEvidence] = []
    for step in steps:
        evidence.extend(find_double_votes(
            buffer.messages(round_number, step), backend))
    return evidence


def find_equivocations(blocks: Iterable[Block]) -> list[EquivocationEvidence]:
    """Scan proposed blocks for proposers announcing two versions."""
    first_seen: dict[tuple[bytes, int], bytes] = {}
    evidence: list[EquivocationEvidence] = []
    reported: set[tuple[bytes, int]] = set()
    for block in blocks:
        if block.proposer is None:
            continue
        key = (block.proposer, block.round_number)
        previous = first_seen.get(key)
        if previous is None:
            first_seen[key] = block.block_hash
            continue
        if previous != block.block_hash and key not in reported:
            reported.add(key)
            evidence.append(EquivocationEvidence(
                offender=block.proposer, round_number=block.round_number,
                first_hash=previous, second_hash=block.block_hash))
    return evidence
