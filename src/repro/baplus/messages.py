"""BA* vote messages (Algorithm 4).

A committee member's vote is a signed tuple
``(round, step, sorthash, pi, H(last_block), value)`` together with the
voter's public key. The sortition hash/proof establishes committee
membership and vote multiplicity; the previous-block hash binds the vote
to one chain (votes from other forks are discarded, section 8.2); the
value is the block hash being voted for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.encoding import encode
from repro.crypto.backend import CryptoBackend


@dataclass(frozen=True)
class VoteMessage:
    """One committee member's vote for ``value`` at ``(round, step)``."""

    voter: bytes
    round_number: int
    step: str
    sorthash: bytes
    sortproof: bytes
    prev_hash: bytes
    value: bytes
    signature: bytes = field(default=b"", compare=False)

    def signing_payload(self) -> bytes:
        # Votes are immutable and re-verified at every relay hop; cache
        # the canonical encoding on the instance (frozen dataclass, so
        # bypass __setattr__).
        cached = getattr(self, "_signing_payload", None)
        if cached is None:
            cached = encode([
                "vote", self.round_number, self.step, self.sorthash,
                self.sortproof, self.prev_hash, self.value,
            ])
            object.__setattr__(self, "_signing_payload", cached)
        return cached

    def verify_signature(self, backend: CryptoBackend) -> bool:
        return backend.is_valid_signature(
            self.voter, self.signing_payload(), self.signature)


def make_vote(backend: CryptoBackend, secret: bytes, voter: bytes,
              round_number: int, step: str, sorthash: bytes,
              sortproof: bytes, prev_hash: bytes,
              value: bytes) -> VoteMessage:
    """Build and sign a vote."""
    unsigned = VoteMessage(
        voter=voter, round_number=round_number, step=step,
        sorthash=sorthash, sortproof=sortproof, prev_hash=prev_hash,
        value=value,
    )
    signature = backend.sign(secret, unsigned.signing_payload())
    return VoteMessage(
        voter=voter, round_number=round_number, step=step,
        sorthash=sorthash, sortproof=sortproof, prev_hash=prev_hash,
        value=value, signature=signature,
    )
