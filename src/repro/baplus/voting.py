"""Voting primitives of BA* (Algorithms 4, 5, 6 and 9).

These are written as plain functions plus one generator
(:func:`count_votes`) that runs inside a node's simulation process:
``value = yield from count_votes(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baplus.buffer import VoteBuffer
from repro.baplus.context import BAContext
from repro.baplus.messages import VoteMessage, make_vote
from repro.common.params import ProtocolParams
from repro.crypto.backend import CryptoBackend, KeyPair
from repro.crypto.hashing import H, HASHLEN_BITS
from repro.sim.loop import Environment
from repro.sortition.roles import committee_role
from repro.sortition.selection import SortitionProof, sortition, verify_sort


class _TimeoutSentinel:
    """Unique return value of :func:`count_votes` on timeout."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TIMEOUT"


#: Returned by :func:`count_votes` when no value crossed the threshold.
TIMEOUT = _TimeoutSentinel()


@dataclass
class BAParticipant:
    """Everything the BA* procedures need from their host node."""

    env: Environment
    params: ProtocolParams
    backend: CryptoBackend
    buffer: VoteBuffer
    keypair: KeyPair
    gossip_vote: Callable[[VoteMessage], None]
    #: Optional hook ``(round, step, seconds, timed_out)`` called whenever
    #: a CountVotes invocation completes (feeds the section 10.5
    #: timeout-validation experiment).
    step_observer: Callable[[int, str, float, bool], None] | None = None
    #: Optional :class:`repro.obs.TraceBus`: when set, CommitteeVote and
    #: CountVotes emit ``vote_cast`` / ``step_enter`` / ``step_exit``
    #: events tagged with ``node_id`` and update sortition counters.
    obs: "object | None" = None
    node_id: int | None = None
    #: Open CountVotes intervals: ``(round, step) -> start time``.
    #: Maintained only while ``obs`` is set; :func:`interrupt_open_steps`
    #: closes them with an ``interrupted`` exit when the generators
    #: holding them are killed (fail-stop crash, transient retirement),
    #: so every step-termination path emits a matching ``step_exit``.
    open_steps: dict[tuple[int, str], float] = field(default_factory=dict)


def committee_vote(part: BAParticipant, ctx: BAContext, round_number: int,
                   step: str, tau: float, value: bytes) -> SortitionProof:
    """Algorithm 4: gossip a signed vote if selected for this committee.

    Returns the sortition proof (``j == 0`` means not selected, nothing
    was sent).
    """
    role = committee_role(round_number, step)
    proof = sortition(
        part.backend, part.keypair.secret, ctx.seed, tau, role,
        ctx.weight_of(part.keypair.public), ctx.total_weight,
    )
    if proof.j > 0:
        vote = make_vote(
            part.backend, part.keypair.secret, part.keypair.public,
            round_number, step, proof.vrf_hash, proof.vrf_proof,
            ctx.last_block_hash, value,
        )
        if part.obs is not None:
            part.obs.emit("vote_cast", node=part.node_id,
                          round=round_number, step=step, j=proof.j,
                          weight=ctx.weight_of(part.keypair.public))
        part.gossip_vote(vote)
    return proof


def process_msg(backend: CryptoBackend, ctx: BAContext, tau: float,
                vote: VoteMessage) -> tuple[int, bytes | None, bytes | None]:
    """Algorithm 6: validate a vote; returns ``(votes, value, sorthash)``.

    ``votes == 0`` means the message must be ignored (bad signature, wrong
    chain, or failed sortition).
    """
    if not vote.verify_signature(backend):
        return 0, None, None
    if vote.prev_hash != ctx.last_block_hash:
        # Vote extends a different chain (possibly a fork); ignore here —
        # the fork monitor tracks these separately (section 8.2).
        return 0, None, None
    role = committee_role(vote.round_number, vote.step)
    votes = verify_sort(
        backend, vote.voter, vote.sorthash, vote.sortproof, ctx.seed, tau,
        role, ctx.weight_of(vote.voter), ctx.total_weight,
    )
    if votes == 0:
        return 0, None, None
    return votes, vote.value, vote.sorthash


def count_votes(part: BAParticipant, ctx: BAContext, round_number: int,
                step: str, threshold_fraction: float, tau: float,
                lam: float):
    """Algorithm 5 as a simulation generator.

    Processes buffered votes for ``(round, step)`` as they arrive; returns
    the first value whose accumulated (deduplicated) votes exceed
    ``threshold_fraction * tau``, or :data:`TIMEOUT` after ``lam`` seconds.
    """
    env = part.env
    start = env.now
    deadline = start + lam
    counts: dict[bytes, int] = {}
    voters: set[bytes] = set()
    bucket = part.buffer.messages(round_number, step)
    cursor = 0
    obs = part.obs
    if obs is not None:
        obs.emit("step_enter", node=part.node_id, round=round_number,
                 step=step, deadline_s=lam)
        part.open_steps[(round_number, step)] = start

    def _done(result):
        timed_out = result is TIMEOUT
        if obs is not None:
            part.open_steps.pop((round_number, step), None)
            obs.emit("step_exit", node=part.node_id, round=round_number,
                     step=step, seconds=env.now - start,
                     timed_out=timed_out,
                     votes_counted=sum(counts.values()))
        if part.step_observer is not None:
            part.step_observer(round_number, step, env.now - start,
                               timed_out)
        return result

    while True:
        while cursor < len(bucket):
            vote = bucket[cursor]
            cursor += 1
            votes, value, _ = process_msg(part.backend, ctx, tau, vote)
            if vote.voter in voters or votes == 0:
                continue
            voters.add(vote.voter)
            counts[value] = counts.get(value, 0) + votes
            if counts[value] > threshold_fraction * tau:
                return _done(value)
        remaining = deadline - env.now
        if remaining <= 0:
            return _done(TIMEOUT)
        yield env.any_of([
            part.buffer.signal(round_number, step).next_event(),
            env.timeout(remaining),
        ])


#: Mirrors :data:`repro.node.recovery.RECOVERY_ROUND_BASE` by value
#: (recovery sits above this module in the import graph). Recovery
#: sessions are not killed by a fail-stop crash, so their open
#: intervals must survive :func:`interrupt_open_steps`.
_RECOVERY_ROUND_BASE = 1_000_000_000


def interrupt_open_steps(part: BAParticipant, *,
                         keep_at_or_above: int = _RECOVERY_ROUND_BASE
                         ) -> None:
    """Close interrupted CountVotes intervals with a ``step_exit``.

    A generator killed at its wait point (``Process.interrupt()`` on a
    crash or retirement) never reaches :func:`count_votes`'s own exit
    emission; the killer calls this right after interrupting, so
    per-step timings and the conformance machine always see closed
    intervals. The exits carry ``interrupted=True`` and count as
    neither a threshold success nor a timeout. Emission is explicit —
    never from a generator ``finally`` — because GC-time generator
    close is nondeterministic and would break trace reproducibility.

    ``keep_at_or_above`` preserves recovery-lane intervals (their
    sessions survive a crash and later finish their own counts).
    """
    obs = part.obs
    if obs is None or not part.open_steps:
        return
    env = part.env
    for round_number, step in sorted(part.open_steps):
        if round_number >= keep_at_or_above:
            continue
        start = part.open_steps.pop((round_number, step))
        obs.emit("step_exit", node=part.node_id, round=round_number,
                 step=step, seconds=env.now - start, timed_out=False,
                 interrupted=True)


def common_coin(part: BAParticipant, ctx: BAContext, round_number: int,
                step: str, tau: float) -> int:
    """Algorithm 9: the committee-derived common coin (0 or 1).

    The coin is the least-significant bit of the minimum
    ``H(sorthash || j)`` over all valid votes observed in this step, one
    hash per selected sub-user.
    """
    min_hash = 1 << HASHLEN_BITS
    for vote in part.buffer.messages(round_number, step):
        votes, _, sorthash = process_msg(part.backend, ctx, tau, vote)
        for j in range(1, votes + 1):
            h = int.from_bytes(H(sorthash, j.to_bytes(8, "big")), "big")
            if h < min_hash:
                min_hash = h
    return min_hash % 2
