"""Incoming-vote buffer (the ``incomingMsgs`` of Algorithm 5).

A background handler stores every received vote indexed by
``(round, step)``; :func:`repro.baplus.voting.count_votes` iterates a
bucket while concurrently waiting for more messages via the bucket's
signal. Buckets are kept until explicitly pruned so that certificates can
be assembled from past steps and passive observers can recount votes.

The buffer can be bounded (``budget_messages``): past the budget an
incoming vote must displace a buffered one or be rejected. Eviction is
by *round proximity* — the paper's "undecidable messages" (future-round
and recovery votes that cannot be validated yet, the buffering DoS
vector of PAPERS.md) are the first to go, and votes at or below the
``anchor_round`` being decided right now are never evicted. Because
:meth:`messages` hands out live list references that step processes
iterate by index, eviction only ever pops from the *tail* of a
strictly-future bucket and never deletes bucket dict entries.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baplus.messages import VoteMessage
from repro.sim.loop import Environment, Signal

_Key = tuple[int, str]


class VoteBuffer:
    """Votes indexed by ``(round, step)`` plus arrival signals."""

    def __init__(self, env: Environment,
                 budget_messages: int | None = None) -> None:
        self._env = env
        self._buckets: dict[_Key, list[VoteMessage]] = defaultdict(list)
        self._signals: dict[_Key, Signal] = {}
        #: Maximum buffered votes across all buckets (None = unbounded).
        self.budget_messages = budget_messages
        #: Rounds at or below this are protected from eviction (the
        #: round currently being decided; set by the node's round loop).
        self.anchor_round = 0
        self._size = 0
        self.high_water = 0
        self.evicted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return self._size

    def add(self, vote: VoteMessage) -> bool:
        """Buffer ``vote``; False if the budget forced a rejection."""
        key = (vote.round_number, vote.step)
        budget = self.budget_messages
        if budget is not None and self._size >= budget:
            if not self._evict_for(key):
                self.rejected += 1
                return False
        self._buckets[key].append(vote)
        self._size += 1
        if self._size > self.high_water:
            self.high_water = self._size
        signal = self._signals.get(key)
        if signal is not None:
            signal.pulse()
        return True

    def _evict_for(self, incoming_key: _Key) -> bool:
        """Make room for ``incoming_key`` by dropping a far-future vote.

        The victim is the tail of the furthest-future non-empty bucket
        above the anchor. If the incoming vote is itself at or beyond
        that furthest bucket (and not anchored), it is the worst
        candidate and the caller rejects it instead.
        """
        candidates = [key for key, bucket in self._buckets.items()
                      if bucket and key[0] > self.anchor_round]
        if not candidates:
            return False
        victim = max(candidates)
        if incoming_key[0] > self.anchor_round and incoming_key >= victim:
            return False
        self._buckets[victim].pop()
        self._size -= 1
        self.evicted += 1
        return True

    def messages(self, round_number: int, step: str) -> list[VoteMessage]:
        """The current bucket (live list — callers index, don't mutate)."""
        return self._buckets[(round_number, step)]

    def signal(self, round_number: int, step: str) -> Signal:
        key = (round_number, step)
        if key not in self._signals:
            self._signals[key] = Signal(self._env)
        return self._signals[key]

    def rounds_buffered(self) -> set[int]:
        return {round_number for round_number, _ in self._buckets}

    def clear(self) -> None:
        """Drop every bucket and signal (a crashed node's volatile state)."""
        self._buckets.clear()
        self._signals.clear()
        self._size = 0

    def prune_before(self, round_number: int) -> None:
        """Drop buckets for rounds strictly below ``round_number``."""
        stale = [key for key in self._buckets if key[0] < round_number]
        for key in stale:
            self._size -= len(self._buckets[key])
            del self._buckets[key]
            self._signals.pop(key, None)

    def prune_at_or_above(self, round_number: int) -> None:
        """Drop buckets for rounds >= ``round_number`` (recovery cleanup)."""
        stale = [key for key in self._buckets if key[0] >= round_number]
        for key in stale:
            self._size -= len(self._buckets[key])
            del self._buckets[key]
            self._signals.pop(key, None)
