"""Incoming-vote buffer (the ``incomingMsgs`` of Algorithm 5).

A background handler stores every received vote indexed by
``(round, step)``; :func:`repro.baplus.voting.count_votes` iterates a
bucket while concurrently waiting for more messages via the bucket's
signal. Buckets are kept until explicitly pruned so that certificates can
be assembled from past steps and passive observers can recount votes.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baplus.messages import VoteMessage
from repro.sim.loop import Environment, Signal

_Key = tuple[int, str]


class VoteBuffer:
    """Votes indexed by ``(round, step)`` plus arrival signals."""

    def __init__(self, env: Environment) -> None:
        self._env = env
        self._buckets: dict[_Key, list[VoteMessage]] = defaultdict(list)
        self._signals: dict[_Key, Signal] = {}

    def add(self, vote: VoteMessage) -> None:
        key = (vote.round_number, vote.step)
        self._buckets[key].append(vote)
        signal = self._signals.get(key)
        if signal is not None:
            signal.pulse()

    def messages(self, round_number: int, step: str) -> list[VoteMessage]:
        """The current bucket (live list — callers index, don't mutate)."""
        return self._buckets[(round_number, step)]

    def signal(self, round_number: int, step: str) -> Signal:
        key = (round_number, step)
        if key not in self._signals:
            self._signals[key] = Signal(self._env)
        return self._signals[key]

    def rounds_buffered(self) -> set[int]:
        return {round_number for round_number, _ in self._buckets}

    def clear(self) -> None:
        """Drop every bucket and signal (a crashed node's volatile state)."""
        self._buckets.clear()
        self._signals.clear()

    def prune_before(self, round_number: int) -> None:
        """Drop buckets for rounds strictly below ``round_number``."""
        stale = [key for key in self._buckets if key[0] < round_number]
        for key in stale:
            del self._buckets[key]
            self._signals.pop(key, None)
