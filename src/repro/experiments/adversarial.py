"""Misbehaving-users experiment (Figure 8).

The paper forces the highest-priority proposer to equivocate (one block
version to half its peers, another to the rest) while malicious committee
members vote for both versions, then sweeps the malicious stake fraction
from 0 to 20% and plots round latency. The result: "at least empirically
for this particular attack, Algorand is not significantly affected."
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.adversary.strategies import MaliciousNode
from repro.common.errors import NoSamplesError
from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import NetworkConfig, Simulation, SimulationConfig
from repro.experiments.metrics import LatencySummary
from repro.experiments.spec import (
    AdversarialSpec,
    register_runner,
    run_point,
)

#: Malicious-stake fractions swept by Figure 8.
FIGURE8_FRACTIONS = [0.0, 0.05, 0.10, 0.15, 0.20]


@dataclass(frozen=True)
class AdversarialPoint:
    """One x-axis point of Figure 8."""

    malicious_fraction: float
    num_malicious: int
    summary: LatencySummary
    agreed: bool          # safety: one hash per round among honest nodes
    empty_rounds: int     # attack cost: rounds forced to the empty block


@register_runner(AdversarialSpec.kind)
def run_spec(spec: AdversarialSpec) -> AdversarialPoint:
    """Deploy ``spec.fraction`` malicious stake; measure honest latency."""
    params = spec.params if spec.params is not None else TEST_PARAMS
    num_users, rounds = spec.num_users, spec.rounds
    num_malicious = round(spec.fraction * num_users)
    sim = Simulation(
        SimulationConfig(num_users=num_users, params=params,
                         seed=spec.seed, num_malicious=num_malicious,
                         network=NetworkConfig(latency_model="city")),
        malicious_class=MaliciousNode if num_malicious else None,
    )
    sim.submit_payments(num_users, note_bytes=20)
    sim.run_rounds(rounds)
    honest = sim.nodes[:num_users - num_malicious]
    samples = []
    agreed = True
    empty_rounds = 0
    for round_number in range(1, rounds + 1):
        hashes = {node.chain.block_at(round_number).block_hash
                  for node in honest}
        agreed = agreed and len(hashes) == 1
        for node in honest:
            record = node.metrics.round_record(round_number)
            if record is not None:
                samples.append(record.duration)
        if honest[0].chain.block_at(round_number).is_empty:
            empty_rounds += 1
    try:
        summary = LatencySummary.from_samples(samples)
    except NoSamplesError:
        summary = LatencySummary.empty()
    return AdversarialPoint(
        malicious_fraction=spec.fraction,
        num_malicious=num_malicious,
        summary=summary,
        agreed=agreed,
        empty_rounds=empty_rounds,
    )


def run_adversarial_point(fraction: float, *, num_users: int = 20,
                          rounds: int = 2, seed: int = 0,
                          params: ProtocolParams | None = None
                          ) -> AdversarialPoint:
    """Deprecated keyword shim: build an :class:`AdversarialSpec`."""
    warnings.warn(
        "run_adversarial_point() is deprecated; build an AdversarialSpec "
        "and call repro.experiments.run_point(spec)", DeprecationWarning,
        stacklevel=2)
    return run_point(AdversarialSpec(
        fraction=fraction, num_users=num_users, rounds=rounds, seed=seed,
        params=params,
    )).point


def figure8(fractions: list[float] | None = None, *, num_users: int = 20,
            seed: int = 0) -> list[AdversarialPoint]:
    """Latency vs malicious stake fraction (Figure 8 shape)."""
    return [run_point(spec).point
            for spec in figure8_specs(fractions, num_users=num_users,
                                      seed=seed)]


def figure8_specs(fractions: list[float] | None = None, *,
                  num_users: int = 20,
                  seed: int = 0) -> list[AdversarialSpec]:
    """The Figure 8 grid as sweep-ready specs."""
    sweep = fractions if fractions is not None else FIGURE8_FRACTIONS
    return [AdversarialSpec(fraction=f, num_users=num_users, seed=seed + i)
            for i, f in enumerate(sweep)]
