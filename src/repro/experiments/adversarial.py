"""Misbehaving-users experiment (Figure 8).

The paper forces the highest-priority proposer to equivocate (one block
version to half its peers, another to the rest) while malicious committee
members vote for both versions, then sweeps the malicious stake fraction
from 0 to 20% and plots round latency. The result: "at least empirically
for this particular attack, Algorand is not significantly affected."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.strategies import MaliciousNode
from repro.common.errors import NoSamplesError
from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.metrics import LatencySummary

#: Malicious-stake fractions swept by Figure 8.
FIGURE8_FRACTIONS = [0.0, 0.05, 0.10, 0.15, 0.20]


@dataclass(frozen=True)
class AdversarialPoint:
    """One x-axis point of Figure 8."""

    malicious_fraction: float
    num_malicious: int
    summary: LatencySummary
    agreed: bool          # safety: one hash per round among honest nodes
    empty_rounds: int     # attack cost: rounds forced to the empty block


def run_adversarial_point(fraction: float, *, num_users: int = 20,
                          rounds: int = 2, seed: int = 0,
                          params: ProtocolParams | None = None
                          ) -> AdversarialPoint:
    """Deploy `fraction` malicious stake and measure honest latency."""
    if not 0 <= fraction < 0.34:
        raise ValueError("malicious fraction must be in [0, 1/3)")
    params = params if params is not None else TEST_PARAMS
    num_malicious = round(fraction * num_users)
    sim = Simulation(
        SimulationConfig(num_users=num_users, params=params, seed=seed,
                         num_malicious=num_malicious,
                         latency_model="city"),
        malicious_class=MaliciousNode if num_malicious else None,
    )
    sim.submit_payments(num_users, note_bytes=20)
    sim.run_rounds(rounds)
    honest = sim.nodes[:num_users - num_malicious]
    samples = []
    agreed = True
    empty_rounds = 0
    for round_number in range(1, rounds + 1):
        hashes = {node.chain.block_at(round_number).block_hash
                  for node in honest}
        agreed = agreed and len(hashes) == 1
        for node in honest:
            record = node.metrics.round_record(round_number)
            if record is not None:
                samples.append(record.duration)
        if honest[0].chain.block_at(round_number).is_empty:
            empty_rounds += 1
    try:
        summary = LatencySummary.from_samples(samples)
    except NoSamplesError:
        summary = LatencySummary.empty()
    return AdversarialPoint(
        malicious_fraction=fraction,
        num_malicious=num_malicious,
        summary=summary,
        agreed=agreed,
        empty_rounds=empty_rounds,
    )


def figure8(fractions: list[float] | None = None, *, num_users: int = 20,
            seed: int = 0) -> list[AdversarialPoint]:
    """Latency vs malicious stake fraction (Figure 8 shape)."""
    sweep = fractions if fractions is not None else FIGURE8_FRACTIONS
    return [run_adversarial_point(f, num_users=num_users, seed=seed + i)
            for i, f in enumerate(sweep)]
