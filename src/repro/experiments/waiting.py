"""The block-proposal waiting trade-off (section 6).

"Waiting a short amount of time will mean no received proposals ...
Algorand will reach consensus on an empty block. On the other hand,
waiting too long ... unnecessarily increase[s] the confirmation latency."

This experiment sweeps the pre-BA* waiting time (the
``lambda_stepvar + lambda_priority`` window in which nodes learn the
highest-priority proposer) and measures both sides of the trade-off:
the fraction of rounds that land on the empty block (wasted rounds) and
the median round latency. The paper resolves the trade-off by measuring
the gossip time of priority messages (~1 s) and padding generously (5 s);
the sweep shows why: a knee below which empty rounds spike, and a linear
latency cost above it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import Simulation, SimulationConfig

#: Wait-window values (seconds) swept by the benchmark, spanning "far too
#: short" to "comfortably padded" for the scaled WAN.
WAIT_SWEEP = [0.02, 0.1, 0.5, 2.0, 4.0]


@dataclass(frozen=True)
class WaitingPoint:
    """One sweep point: proposal-wait window vs what it buys."""

    wait_seconds: float
    empty_fraction: float
    median_latency: float
    rounds: int


def run_waiting_point(wait_seconds: float, *, num_users: int = 20,
                      rounds: int = 3, seed: int = 0,
                      params: ProtocolParams | None = None) -> WaitingPoint:
    """Measure one wait-window setting over several rounds."""
    if wait_seconds <= 0:
        raise ValueError("wait_seconds must be positive")
    base = params if params is not None else TEST_PARAMS
    tuned = dataclasses.replace(
        base,
        lambda_stepvar=wait_seconds / 2,
        lambda_priority=wait_seconds / 2,
    )
    sim = Simulation(SimulationConfig(
        num_users=num_users, params=tuned, seed=seed,
        latency_model="city",
    ))
    sim.submit_payments(num_users * 2, note_bytes=16)
    sim.run_rounds(rounds)

    reference = sim.nodes[0].chain
    empty = sum(1 for r in range(1, rounds + 1)
                if reference.block_at(r).is_empty)
    latencies = [
        record.duration
        for node in sim.nodes
        for record in node.metrics.rounds
    ]
    return WaitingPoint(
        wait_seconds=wait_seconds,
        empty_fraction=empty / rounds,
        median_latency=float(np.median(latencies)),
        rounds=rounds,
    )


def waiting_tradeoff(waits: list[float] | None = None, *, seed: int = 0,
                     num_users: int = 20) -> list[WaitingPoint]:
    """The full sweep (section 6 trade-off curve)."""
    sweep = waits if waits is not None else WAIT_SWEEP
    return [run_waiting_point(w, num_users=num_users, seed=seed + i)
            for i, w in enumerate(sweep)]
