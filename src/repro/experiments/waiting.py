"""The block-proposal waiting trade-off (section 6).

"Waiting a short amount of time will mean no received proposals ...
Algorand will reach consensus on an empty block. On the other hand,
waiting too long ... unnecessarily increase[s] the confirmation latency."

This experiment sweeps the pre-BA* waiting time (the
``lambda_stepvar + lambda_priority`` window in which nodes learn the
highest-priority proposer) and measures both sides of the trade-off:
the fraction of rounds that land on the empty block (wasted rounds) and
the median round latency. The paper resolves the trade-off by measuring
the gossip time of priority messages (~1 s) and padding generously (5 s);
the sweep shows why: a knee below which empty rounds spike, and a linear
latency cost above it.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

import numpy as np

from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import NetworkConfig, Simulation, SimulationConfig
from repro.experiments.spec import WaitingSpec, register_runner, run_point

#: Wait-window values (seconds) swept by the benchmark, spanning "far too
#: short" to "comfortably padded" for the scaled WAN.
WAIT_SWEEP = [0.02, 0.1, 0.5, 2.0, 4.0]


@dataclass(frozen=True)
class WaitingPoint:
    """One sweep point: proposal-wait window vs what it buys."""

    wait_seconds: float
    empty_fraction: float
    median_latency: float
    rounds: int


@register_runner(WaitingSpec.kind)
def run_spec(spec: WaitingSpec) -> WaitingPoint:
    """Measure one wait-window setting over several rounds."""
    base = spec.params if spec.params is not None else TEST_PARAMS
    num_users, rounds = spec.num_users, spec.rounds
    tuned = dataclasses.replace(
        base,
        lambda_stepvar=spec.wait_seconds / 2,
        lambda_priority=spec.wait_seconds / 2,
    )
    sim = Simulation(SimulationConfig(
        num_users=num_users, params=tuned, seed=spec.seed,
        network=NetworkConfig(latency_model="city"),
    ))
    sim.submit_payments(num_users * 2, note_bytes=16)
    sim.run_rounds(rounds)

    reference = sim.nodes[0].chain
    empty = sum(1 for r in range(1, rounds + 1)
                if reference.block_at(r).is_empty)
    latencies = [
        record.duration
        for node in sim.nodes
        for record in node.metrics.rounds
    ]
    return WaitingPoint(
        wait_seconds=spec.wait_seconds,
        empty_fraction=empty / rounds,
        median_latency=float(np.median(latencies)),
        rounds=rounds,
    )


def run_waiting_point(wait_seconds: float, *, num_users: int = 20,
                      rounds: int = 3, seed: int = 0,
                      params: ProtocolParams | None = None) -> WaitingPoint:
    """Deprecated keyword shim: build a :class:`WaitingSpec`."""
    warnings.warn(
        "run_waiting_point() is deprecated; build a WaitingSpec and call "
        "repro.experiments.run_point(spec)", DeprecationWarning,
        stacklevel=2)
    return run_point(WaitingSpec(
        wait_seconds=wait_seconds, num_users=num_users, rounds=rounds,
        seed=seed, params=params,
    )).point


def waiting_tradeoff(waits: list[float] | None = None, *, seed: int = 0,
                     num_users: int = 20) -> list[WaitingPoint]:
    """The full sweep (section 6 trade-off curve)."""
    return [run_point(spec).point
            for spec in waiting_specs(waits, seed=seed,
                                      num_users=num_users)]


def waiting_specs(waits: list[float] | None = None, *, seed: int = 0,
                  num_users: int = 20) -> list[WaitingSpec]:
    """The section 6 sweep as sweep-ready specs."""
    sweep = waits if waits is not None else WAIT_SWEEP
    return [WaitingSpec(wait_seconds=w, num_users=num_users, seed=seed + i)
            for i, w in enumerate(sweep)]
