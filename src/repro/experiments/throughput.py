"""Block-size sweep (Figure 7) and the section 10.2 throughput table.

Figure 7 splits each round into three segments:

* **block proposal** — until the node holds the winning proposed block
  (dominated by ``lambda_priority + lambda_stepvar`` for small blocks and
  by block gossip for large ones);
* **BA\\* except the final step** — reduction + BinaryBA*; the paper's
  claim is this is independent of block size (~12 s);
* **the final step** — could be pipelined with the next round.

Section 10.2 then converts committed bytes per unit time into MBytes/hour
and compares with Bitcoin (125x at 10 MByte blocks).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

import numpy as np

from repro.baselines.nakamoto import NakamotoConfig, throughput_bytes_per_hour
from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import NetworkConfig, Simulation, SimulationConfig
from repro.experiments.spec import (
    BlockSizeSpec,
    register_runner,
    run_point,
)

#: Scaled block-size sweep standing in for the paper's 1 KB..10 MB.
FIGURE7_BLOCK_SIZES = [1_000, 10_000, 50_000, 100_000, 250_000]


@dataclass(frozen=True)
class BlockSizePoint:
    """One bar of Figure 7 (median across users, seconds)."""

    block_size: int
    payload_committed: int
    proposal_time: float
    ba_time: float
    final_step_time: float

    @property
    def total(self) -> float:
        return self.proposal_time + self.ba_time + self.final_step_time


@register_runner(BlockSizeSpec.kind)
def run_spec(spec: BlockSizeSpec) -> BlockSizePoint:
    """One deployment at a given block size; segments from round 2."""
    base = spec.params if spec.params is not None else TEST_PARAMS
    block_size, num_users = spec.block_size, spec.num_users
    # lambda_block must comfortably cover gossiping one block across the
    # network's diameter (the paper fixes it at a minute for 1-10 MB
    # blocks; we scale it with the per-hop transfer time).
    per_hop = block_size * 8.0 / spec.bandwidth_bps
    tuned = dataclasses.replace(
        base, block_size=block_size,
        lambda_block=max(base.lambda_block, 40.0 * per_hop))
    sim = Simulation(SimulationConfig(
        num_users=num_users, params=tuned, seed=spec.seed,
        network=NetworkConfig(bandwidth_bps=spec.bandwidth_bps,
                              latency_model="city"),
    ))
    # Enough payload to fill the target block size each round.
    note = max(16, (2 * block_size) // max(1, num_users * 2))
    for _ in range(2):
        sim.submit_payments(num_users * 2, note_bytes=note)
    sim.run_rounds(2)
    records = [node.metrics.round_record(2) for node in sim.nodes]
    records = [record for record in records if record is not None]
    payload = int(np.median([record.payload_bytes for record in records]))
    return BlockSizePoint(
        block_size=block_size,
        payload_committed=payload,
        proposal_time=float(np.median(
            [record.proposal_duration for record in records])),
        ba_time=float(np.median(
            [record.ba_duration for record in records])),
        final_step_time=float(np.median(
            [record.final_step_duration for record in records])),
    )


def run_block_size_point(block_size: int, *, num_users: int = 40,
                         seed: int = 0,
                         params: ProtocolParams | None = None,
                         bandwidth_bps: float = 5e6) -> BlockSizePoint:
    """Deprecated keyword shim: build a :class:`BlockSizeSpec`."""
    warnings.warn(
        "run_block_size_point() is deprecated; build a BlockSizeSpec and "
        "call repro.experiments.run_point(spec)", DeprecationWarning,
        stacklevel=2)
    return run_point(BlockSizeSpec(
        block_size=block_size, num_users=num_users, seed=seed,
        params=params, bandwidth_bps=bandwidth_bps,
    )).point


def figure7(block_sizes: list[int] | None = None, *, seed: int = 0,
            num_users: int = 40) -> list[BlockSizePoint]:
    """Latency breakdown vs block size (Figure 7 shape)."""
    return [run_point(spec).point
            for spec in figure7_specs(block_sizes, seed=seed,
                                      num_users=num_users)]


def figure7_specs(block_sizes: list[int] | None = None, *, seed: int = 0,
                  num_users: int = 40) -> list[BlockSizeSpec]:
    """The Figure 7 grid as sweep-ready specs."""
    sizes = block_sizes if block_sizes is not None else FIGURE7_BLOCK_SIZES
    return [BlockSizeSpec(block_size=size, seed=seed + i,
                          num_users=num_users)
            for i, size in enumerate(sizes)]


@dataclass(frozen=True)
class ThroughputRow:
    """One row of the section 10.2 comparison table."""

    system: str
    block_size: int
    round_time: float
    bytes_per_hour: float
    ratio_vs_bitcoin: float


def throughput_table(points: list[BlockSizePoint],
                     pipeline_final_step: bool = False) -> list[ThroughputRow]:
    """Convert Figure 7 points into the 10.2 throughput comparison.

    ``pipeline_final_step`` drops the final-step segment from the round
    time, as the paper notes is possible ("it could be pipelined with the
    next round").
    """
    bitcoin = throughput_bytes_per_hour(NakamotoConfig())
    rows = [ThroughputRow(
        system="bitcoin", block_size=1_000_000, round_time=600.0,
        bytes_per_hour=bitcoin, ratio_vs_bitcoin=1.0,
    )]
    for point in points:
        round_time = point.total
        if pipeline_final_step:
            round_time -= point.final_step_time
        per_hour = point.payload_committed * (3600.0 / round_time)
        rows.append(ThroughputRow(
            system="algorand", block_size=point.block_size,
            round_time=round_time, bytes_per_hour=per_hour,
            ratio_vs_bitcoin=per_hour / bitcoin,
        ))
    return rows


def paper_scale_projection(ba_time: float = 12.0,
                           gossip_seconds_per_mbyte: float = 2.6,
                           block_size: int = 10_000_000,
                           wait_time: float = 10.0) -> float:
    """Project full-scale throughput from the paper's measured constants.

    The paper's model: round time = fixed waits (lambda_priority +
    lambda_stepvar) + BA* time (~12 s, size-independent) + block
    propagation (linear in size). With these constants a 10 MB block
    takes ~48 s per round, i.e. ~750 MBytes/hour — the number behind the
    paper's 125x-Bitcoin headline. Benchmarks use this to check that our
    measured (scaled) constants extrapolate to the same regime.
    """
    round_time = (wait_time + ba_time
                  + gossip_seconds_per_mbyte * block_size / 1e6)
    return block_size * 3600.0 / round_time
