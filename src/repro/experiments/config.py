"""Deployment configuration: nested groups with flat-kwarg back-compat.

:class:`SimulationConfig` historically accumulated ~20 flat knobs; they
are now grouped by the layer that consumes them:

* :class:`NetworkConfig` — the gossip fabric (bandwidth, latency model,
  peer degree, dedup horizon).
* :class:`RuntimeConfig` — the runtime layers wrapped around the node
  (verification cache, admission gate, relay damping, batch
  verification, conformance monitoring).
* :class:`PopulationConfig` — how users are represented (full agents vs
  the aggregated stake pool).
* :class:`SubstrateConfig` — what carries the protocol: the virtual
  discrete-event world (``"sim"``, the default) or real OS processes
  over sockets (``"live"``, see :mod:`repro.live`).

Each group is frozen and owns its ``validate()``;
:meth:`SimulationConfig.validate` runs the cross-field checks and
delegates the rest. The old flat keywords
(``SimulationConfig(bandwidth_bps=None, relay_damping=False)``) are
still accepted — they are merged onto the matching group and a single
:class:`DeprecationWarning` names the knobs to migrate (the same shim
pattern as the ``run_*_point`` wrappers). Flat *reads*
(``config.bandwidth_bps``) keep working silently via read-through
properties, so result dicts and experiment code stay stable.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import (
    BalancesError,
    ConfigError,
    LatencyModelError,
    PopulationError,
)
from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.runtime.admission import AdmissionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    pass


@dataclass(frozen=True)
class NetworkConfig:
    """Gossip-fabric knobs (the message-carrying layer of the sim)."""

    #: Per-node uplink in bits/second; ``None`` disables bandwidth modeling.
    bandwidth_bps: float | None = 20e6
    #: "city" uses the 20-city WAN model; "uniform" a constant latency.
    latency_model: str = "city"
    uniform_latency: float = 0.05
    peers_per_node: int = 4
    #: Re-randomize every node's gossip peers after each round (§8.4:
    #: "Algorand replaces gossip peers each round, which helps users
    #: recover from being possibly disconnected").
    reshuffle_peers_each_round: bool = False
    #: Rounds of gossip duplicate-suppression memory per node; ``None``
    #: keeps every msg_id forever (unbounded, pre-refactor behavior).
    seen_horizon_rounds: int | None = 2

    def validate(self) -> None:
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ConfigError(
                f"bandwidth_bps must be positive or None, "
                f"got {self.bandwidth_bps}")
        if self.latency_model not in ("city", "uniform"):
            raise LatencyModelError(
                f"unknown latency model {self.latency_model!r} "
                f"(expected 'city' or 'uniform')")
        if self.uniform_latency < 0:
            raise ConfigError(
                f"uniform_latency must be >= 0, got {self.uniform_latency}")
        if self.peers_per_node < 1:
            raise ConfigError(
                f"peers_per_node must be >= 1, got {self.peers_per_node}")
        if (self.seen_horizon_rounds is not None
                and self.seen_horizon_rounds < 1):
            raise ConfigError(
                f"seen_horizon_rounds must be >= 1 or None, "
                f"got {self.seen_horizon_rounds}")


@dataclass(frozen=True)
class RuntimeConfig:
    """Runtime layers wrapped around every node."""

    #: Share context-independent verification verdicts (VRF proofs,
    #: envelope signatures) across nodes via a per-simulation
    #: :class:`repro.runtime.VerificationCache`. Context-dependent checks
    #: (seeds, balances, vote counting) still run per node. ``False``
    #: reproduces the pre-cache behavior bit-for-bit.
    use_verification_cache: bool = True
    #: Install the :mod:`repro.runtime.admission` ingress layer on every
    #: node: sortition-gated vote admission, bounded vote buffers and
    #: egress lanes, peer health scoring, and a network quarantine
    #: directory. On honest deployments the committed chain is
    #: byte-identical with this on or off.
    use_admission: bool = True
    #: Budgets/weights for the admission layer (defaults when ``None``).
    admission: AdmissionConfig | None = None
    #: Quorum-trimmed relay (:mod:`repro.runtime.damping`): every node
    #: stops forwarding votes for a ``(round, step, value)`` once its
    #: local tally crosses the step threshold. The agreed blocks,
    #: proposers, and seeds are identical with this on or off.
    relay_damping: bool = True
    #: Batch signature verification per delivery drain. ``"auto"``
    #: enables it exactly for aggregated populations; explicit ``True``
    #: requires ``use_verification_cache``.
    batch_verify: bool | str = "auto"
    #: Online conformance checking (:mod:`repro.conformance`). ``"auto"``
    #: (default) enables it exactly when a trace bus is supplied;
    #: ``True`` forces it; ``False`` disables it. Pure observer either
    #: way — committed chains are byte-identical.
    conformance: bool | str = "auto"

    def validate(self) -> None:
        if self.admission is not None:
            self.admission.validate()
        if self.batch_verify not in (True, False, "auto"):
            raise ConfigError(
                f"batch_verify must be True, False, or 'auto', "
                f"got {self.batch_verify!r}")
        if self.conformance not in (True, False, "auto"):
            raise ConfigError(
                f"conformance must be True, False, or 'auto', "
                f"got {self.conformance!r}")
        if self.batch_verify is True and not self.use_verification_cache:
            raise ConfigError(
                "batch_verify=True requires use_verification_cache "
                "(priming writes into the shared cache)")


@dataclass(frozen=True)
class PopulationConfig:
    """How users are represented during a run."""

    #: ``"full"`` (classic) builds every user as a live agent for the
    #: whole run. ``"aggregated"`` holds non-participants as a weighted
    #: stake pool (:class:`repro.node.population.Population`):
    #: array-backed balances, full agents only for the always-on core
    #: plus each round's sortition winners. Honest-only. With
    #: ``always_on_core >= num_users`` the aggregated run commits chains
    #: byte-identical to ``"full"``.
    mode: str = "full"
    #: Aggregated mode: how many always-on full agents (lowest indices).
    always_on_core: int = 16
    #: Aggregated mode: BinaryBA* steps covered by the per-round pool
    #: pass (4 covers the honest clean path incl. next-three steering).
    steps_ahead: int = 4

    def validate(self) -> None:
        if self.mode not in ("full", "aggregated"):
            raise PopulationError(
                f"unknown population mode {self.mode!r} "
                f"(expected 'full' or 'aggregated')")
        if self.mode == "aggregated":
            if self.always_on_core < 1:
                raise PopulationError(
                    f"always_on_core must be >= 1, "
                    f"got {self.always_on_core}")
            if self.steps_ahead < 1:
                raise PopulationError(
                    f"steps_ahead must be >= 1, got {self.steps_ahead}")


@dataclass(frozen=True)
class SubstrateConfig:
    """What carries the protocol code (see :mod:`repro.substrate`).

    ``"sim"`` runs everything in one process on the deterministic
    virtual clock (the default; byte-reproducible). ``"live"`` spawns
    one OS process per node, each running
    :class:`~repro.live.clock.LiveClock` inside an asyncio loop and
    exchanging :mod:`repro.network.wire` frames over real sockets.
    """

    kind: str = "sim"
    #: Live mode: ``"uds"`` (Unix domain sockets, same host, default)
    #: or ``"tcp"`` (loopback or LAN).
    transport: str = "uds"
    #: TCP host nodes bind and dial; UDS mode ignores it.
    host: str = "127.0.0.1"
    #: TCP base port; 0 lets the OS assign ephemeral ports (the
    #: coordinator distributes the resulting address map, so 0 is safe
    #: and avoids collisions between concurrent clusters).
    base_port: int = 0
    #: Directory for UDS sockets and control files; ``None`` uses a
    #: fresh temporary directory per cluster.
    runtime_dir: str | None = None
    #: Seconds a node waits for peers/coordinator before giving up.
    connect_timeout: float = 30.0
    #: Max envelopes handed to the node per inbox-drain pass; arrivals
    #: beyond it stay queued for the next pass so one chatty peer
    #: cannot starve timers.
    drain_budget: int = 128
    #: Bound on the per-node receive queue (oldest dropped beyond it).
    rx_queue_limit: int = 4096

    def validate(self) -> None:
        if self.kind not in ("sim", "live"):
            raise ConfigError(
                f"unknown substrate kind {self.kind!r} "
                f"(expected 'sim' or 'live')")
        if self.transport not in ("uds", "tcp"):
            raise ConfigError(
                f"unknown live transport {self.transport!r} "
                f"(expected 'uds' or 'tcp')")
        if self.base_port < 0 or self.base_port > 65535:
            raise ConfigError(
                f"base_port must be in [0, 65535], got {self.base_port}")
        if self.connect_timeout <= 0:
            raise ConfigError(
                f"connect_timeout must be positive, "
                f"got {self.connect_timeout}")
        if self.drain_budget < 1:
            raise ConfigError(
                f"drain_budget must be >= 1, got {self.drain_budget}")
        if self.rx_queue_limit < 1:
            raise ConfigError(
                f"rx_queue_limit must be >= 1, got {self.rx_queue_limit}")


_UNSET = object()

#: Legacy flat keyword → (group field, knob name). The shim in
#: ``SimulationConfig.__init__`` merges these onto the matching nested
#: group (flat wins, so ``dataclasses.replace(config, relay_damping=...)``
#: keeps working) and warns once per call listing the knobs used.
_FLAT_KNOBS: dict[str, tuple[str, str]] = {
    "bandwidth_bps": ("network", "bandwidth_bps"),
    "latency_model": ("network", "latency_model"),
    "uniform_latency": ("network", "uniform_latency"),
    "peers_per_node": ("network", "peers_per_node"),
    "reshuffle_peers_each_round": ("network", "reshuffle_peers_each_round"),
    "seen_horizon_rounds": ("network", "seen_horizon_rounds"),
    "use_verification_cache": ("runtime", "use_verification_cache"),
    "use_admission": ("runtime", "use_admission"),
    "admission": ("runtime", "admission"),
    "relay_damping": ("runtime", "relay_damping"),
    "batch_verify": ("runtime", "batch_verify"),
    "conformance": ("runtime", "conformance"),
    "always_on_core": ("population", "always_on_core"),
    "steps_ahead": ("population", "steps_ahead"),
}


@dataclass(init=False)
class SimulationConfig:
    """Parameters of one deployment (simulated or live).

    Construct with nested groups::

        SimulationConfig(num_users=50, seed=11,
                         network=NetworkConfig(bandwidth_bps=None),
                         population=PopulationConfig(mode="aggregated"))

    The pre-group flat keywords are still accepted under a single
    :class:`DeprecationWarning` and merged onto the groups (flat wins
    over an explicitly supplied group, which is what
    ``dataclasses.replace(config, relay_damping=False)`` relies on).
    Flat attribute *reads* remain first-class and silent.
    """

    num_users: int = 20
    params: ProtocolParams = field(default_factory=lambda: TEST_PARAMS)
    seed: int = 0
    #: Currency units per user ("equal share of money", section 10).
    initial_balance: int = 10
    #: Optional weight list overriding the equal distribution.
    balances: list[int] | None = None
    #: Number of Byzantine users (instantiated from the ``malicious_class``
    #: passed to :class:`~repro.experiments.harness.Simulation`); they
    #: occupy the highest indices so index 0 is always an honest observer.
    num_malicious: int = 0
    #: Extra zero-stake nodes appended after the weighted users. They
    #: exercise the paper's "passive participation" property (section 7).
    num_observers: int = 0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    substrate: SubstrateConfig = field(default_factory=SubstrateConfig)

    def __init__(self, num_users: int = 20,
                 params: ProtocolParams | None = None,
                 seed: int = 0,
                 initial_balance: int = 10,
                 *,
                 balances: list[int] | None = None,
                 num_malicious: int = 0,
                 num_observers: int = 0,
                 network: NetworkConfig | None = None,
                 runtime: RuntimeConfig | None = None,
                 population: "PopulationConfig | str | None" = None,
                 substrate: SubstrateConfig | None = None,
                 **flat) -> None:
        self.num_users = num_users
        self.params = params if params is not None else TEST_PARAMS
        self.seed = seed
        self.initial_balance = initial_balance
        self.balances = balances
        self.num_malicious = num_malicious
        self.num_observers = num_observers
        self.network = network if network is not None else NetworkConfig()
        self.runtime = runtime if runtime is not None else RuntimeConfig()
        self.substrate = (substrate if substrate is not None
                          else SubstrateConfig())
        legacy_used: list[str] = []
        if isinstance(population, str):
            # Pre-group API: population was the mode string itself.
            legacy_used.append(f"population={population!r}")
            self.population = PopulationConfig(mode=population)
        else:
            self.population = (population if population is not None
                               else PopulationConfig())
        grouped: dict[str, dict[str, object]] = {}
        for name, value in flat.items():
            target = _FLAT_KNOBS.get(name)
            if target is None:
                raise TypeError(
                    f"SimulationConfig got an unexpected keyword "
                    f"argument {name!r}")
            group_field, knob = target
            grouped.setdefault(group_field, {})[knob] = value
            legacy_used.append(name)
        for group_field, overrides in grouped.items():
            setattr(self, group_field,
                    dataclasses.replace(getattr(self, group_field),
                                        **overrides))
        if legacy_used:
            warnings.warn(
                f"flat SimulationConfig knob(s) {', '.join(legacy_used)} "
                f"are deprecated; pass nested groups instead "
                f"(NetworkConfig/RuntimeConfig/PopulationConfig/"
                f"SubstrateConfig)",
                DeprecationWarning, stacklevel=2)

    # -- flat read-through (silent; result dicts and experiments rely
    # -- on these names staying readable) ------------------------------

    @property
    def bandwidth_bps(self) -> float | None:
        return self.network.bandwidth_bps

    @property
    def latency_model(self) -> str:
        return self.network.latency_model

    @property
    def uniform_latency(self) -> float:
        return self.network.uniform_latency

    @property
    def peers_per_node(self) -> int:
        return self.network.peers_per_node

    @property
    def reshuffle_peers_each_round(self) -> bool:
        return self.network.reshuffle_peers_each_round

    @property
    def seen_horizon_rounds(self) -> int | None:
        return self.network.seen_horizon_rounds

    @property
    def use_verification_cache(self) -> bool:
        return self.runtime.use_verification_cache

    @property
    def use_admission(self) -> bool:
        return self.runtime.use_admission

    @property
    def admission(self) -> AdmissionConfig | None:
        return self.runtime.admission

    @property
    def relay_damping(self) -> bool:
        return self.runtime.relay_damping

    @property
    def batch_verify(self) -> bool | str:
        return self.runtime.batch_verify

    @property
    def conformance(self) -> bool | str:
        return self.runtime.conformance

    @property
    def always_on_core(self) -> int:
        return self.population.always_on_core

    @property
    def steps_ahead(self) -> int:
        return self.population.steps_ahead

    # ------------------------------------------------------------------

    def batch_verify_enabled(self) -> bool:
        if self.runtime.batch_verify == "auto":
            return (self.population.mode == "aggregated"
                    and self.runtime.use_verification_cache)
        return bool(self.runtime.batch_verify)

    def validate(self) -> None:
        """Raise a typed :class:`~repro.common.errors.ConfigError` subclass
        on any inconsistency. Invoked by the harness before wiring
        anything, so misconfigurations fail fast with one clear error.
        Group-local checks live on the groups; this method adds the
        cross-field ones."""
        if self.num_users < 1:
            raise PopulationError(
                f"num_users must be >= 1, got {self.num_users}")
        if self.num_malicious < 0:
            raise PopulationError(
                f"num_malicious must be >= 0, got {self.num_malicious}")
        if self.num_observers < 0:
            raise PopulationError(
                f"num_observers must be >= 0, got {self.num_observers}")
        if self.num_malicious > self.num_users:
            # Malicious users occupy the highest user indices; they
            # cannot outnumber the weighted population itself.
            raise PopulationError(
                f"num_malicious ({self.num_malicious}) exceeds "
                f"num_users ({self.num_users})")
        if self.initial_balance < 0:
            raise BalancesError(
                f"initial_balance must be >= 0, got {self.initial_balance}")
        if self.balances is not None:
            if len(self.balances) != self.num_users:
                raise BalancesError(
                    f"balances length ({len(self.balances)}) must equal "
                    f"num_users ({self.num_users})")
            if any(balance < 0 for balance in self.balances):
                raise BalancesError("balances must be non-negative")
        self.network.validate()
        self.runtime.validate()
        self.population.validate()
        self.substrate.validate()
        if self.population.mode == "aggregated":
            if self.num_malicious:
                raise PopulationError(
                    "aggregated population is honest-only: dormant stake "
                    "cannot model Byzantine agents (use mode='full')")
            if self.num_observers:
                raise PopulationError(
                    "aggregated population does not support observers "
                    "(use mode='full')")

    def make_balances(self) -> list[int]:
        if self.balances is not None:
            if len(self.balances) != self.num_users:
                raise BalancesError(
                    f"balances length ({len(self.balances)}) must equal "
                    f"num_users ({self.num_users})")
            return list(self.balances)
        return [self.initial_balance] * self.num_users


def deploy(config: SimulationConfig, **kwargs):
    """Build the harness ``config.substrate`` selects.

    Returns a :class:`~repro.experiments.harness.Simulation` for
    ``kind="sim"`` (the default) or a
    :class:`~repro.live.cluster.LiveCluster` for ``kind="live"``; both
    expose ``submit_payments`` / ``run_rounds`` / ``all_chains_equal``.
    """
    if config.substrate.kind == "live":
        from repro.live.cluster import LiveCluster

        return LiveCluster(config, **kwargs)
    from repro.experiments.harness import Simulation

    return Simulation(config, **kwargs)
