"""Running costs (section 10.3): bandwidth, certificate storage, sharding.

The paper reports, for 50,000 users and 1 MByte blocks:

* ~10 Mbit/s per-user bandwidth while a round is active;
* per-user communication independent of the total number of users
  (committee-sized, not population-sized);
* 300 KByte certificates (~30% overhead on 1 MB blocks), reduced
  proportionally by sharding (130 KB/block/user at 10 shards).

We measure the same quantities from the simulation's byte counters and
real certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import NetworkConfig, Simulation, SimulationConfig
from repro.ledger.storage import ShardedStore
from repro.network.message import VOTE_MESSAGE_BYTES


@dataclass(frozen=True)
class CostReport:
    """Measured per-user costs for one deployment."""

    num_users: int
    rounds: int
    mean_bytes_sent_per_user: float
    mean_bandwidth_bits_per_sec: float
    certificate_bytes: float
    certificate_votes: float
    block_bytes: float
    certificate_overhead: float  # certificate / block size
    storage_per_round_unsharded: float
    storage_per_round_sharded_10: float
    # CPU proxy (section 10.3: "most of it for verifying signatures and
    # VRFs"): crypto operations per user per round, plus the CPU-seconds
    # estimate at production per-op costs.
    verifications_per_user_round: float
    cpu_seconds_per_user_round: float


def measure_costs(num_users: int = 40, *, rounds: int = 3, seed: int = 0,
                  params: ProtocolParams | None = None,
                  payload_bytes: int = 40_000) -> CostReport:
    """Run a deployment and collect the section 10.3 cost metrics."""
    from repro.crypto.backend import FastBackend
    from repro.crypto.counting import CountingBackend

    params = params if params is not None else TEST_PARAMS
    counting = CountingBackend(FastBackend())
    sim = Simulation(SimulationConfig(
        num_users=num_users, params=params, seed=seed,
        network=NetworkConfig(bandwidth_bps=20e6, latency_model="city"),
    ), backend=counting)
    for _ in range(rounds):
        sim.submit_payments(min(200, num_users * 2),
                            note_bytes=payload_bytes // 100)
    sim.run_rounds(rounds)

    duration = sim.env.now
    bytes_sent = sim.network.bytes_sent_per_node()
    mean_bytes = float(np.mean(bytes_sent))

    certificate_sizes, certificate_votes, block_sizes = [], [], []
    reference = sim.nodes[0].chain
    for round_number in range(1, rounds + 1):
        certificate = reference.certificate_at(round_number)
        if certificate is not None:
            certificate_sizes.append(certificate.size)
            certificate_votes.append(len(certificate.votes))
        block_sizes.append(reference.block_at(round_number).size)

    certificate_bytes = float(np.mean(certificate_sizes))
    block_bytes = float(np.mean(block_sizes))

    # Storage: every user stores every round unsharded; sharding by 10
    # divides the expectation.
    store = ShardedStore(10)
    publics = [node.keypair.public for node in sim.nodes]
    for round_number in range(1, rounds + 1):
        block = reference.block_at(round_number)
        certificate = reference.certificate_at(round_number)
        certificate_size = certificate.size if certificate else 0
        for public in publics:
            store.record_block(public, block,
                               certificate_bytes=certificate_size)
    sharded = store.average_bytes_per_round(publics, rounds)

    user_rounds = num_users * rounds
    return CostReport(
        num_users=num_users,
        rounds=rounds,
        mean_bytes_sent_per_user=mean_bytes,
        mean_bandwidth_bits_per_sec=mean_bytes * 8.0 / duration,
        certificate_bytes=certificate_bytes,
        certificate_votes=float(np.mean(certificate_votes)),
        block_bytes=block_bytes,
        certificate_overhead=certificate_bytes / block_bytes,
        storage_per_round_unsharded=block_bytes + certificate_bytes,
        storage_per_round_sharded_10=sharded,
        verifications_per_user_round=(
            counting.counts.total_verifications / user_rounds),
        cpu_seconds_per_user_round=(
            counting.counts.cpu_seconds() / user_rounds),
    )


def bandwidth_independence(user_counts: list[int] | None = None,
                           seed: int = 0) -> list[CostReport]:
    """Per-user bandwidth across population sizes.

    The paper's claim: communication cost per user is governed by the
    committee size and peer count, not by N — so these reports' bandwidth
    columns should stay within a small factor of each other.
    """
    counts = user_counts if user_counts is not None else [30, 60, 120]
    return [measure_costs(n, seed=seed + i, rounds=2)
            for i, n in enumerate(counts)]


def expected_certificate_bytes(params: ProtocolParams) -> float:
    """Analytic certificate size: quorum votes x bytes per vote.

    With the paper's tau_step = 2000, T = 0.685 and ~250-byte votes this
    lands near the reported 300 KB.
    """
    quorum = int(params.t_step * params.tau_step) + 1
    return quorum * VOTE_MESSAGE_BYTES
