"""Process-parallel sweep engine over :class:`ExperimentSpec` grids.

The paper runs its evaluation grid on 1,000 VMs; our reproduction used to
run every grid point serially in one Python process, which made the
``bench_*`` suite the slowest thing in the repo and capped how far up the
user-count axis we could afford to measure. This engine fans a list of
specs out over a ``multiprocessing`` worker pool and merges the results
so that **parallel output is byte-identical to serial output**:

* **shared-nothing workers** — each point runs in a fresh process that
  rebuilds its own :class:`~repro.experiments.harness.Simulation` from
  the spec's seed, so no simulator state crosses a process boundary and
  scheduling order cannot leak into results;
* **deterministic merge** — outcomes are reassembled in spec order and
  the merged artifact carries only spec-determined data (wall-clock
  times live in the checkpoint and the obs registry, never in the
  merged JSON);
* **per-point timeout + retry-once-on-crash** — a worker that crashes
  or overruns its deadline is killed and the point retried
  (``retries`` times, default once); a point that keeps failing is
  recorded as a failure without sinking the sweep;
* **JSONL checkpointing** — every finished point is appended to a
  checkpoint file keyed by the spec's fingerprint, so an interrupted
  sweep resumes without recomputing finished points;
* **obs integration** — per-point wall-time histograms and
  completed/failed/retried/resumed counters on an optional
  :class:`~repro.obs.bus.TraceBus`.

Serial fallback: with ``jobs=1`` and no timeout the engine runs fully
in-process (no multiprocessing at all), which is also the degenerate
case the byte-identical guarantee is checked against.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Iterable, Sequence

from repro.common.errors import SpecError
from repro.experiments.spec import (
    ExperimentSpec,
    run_point,
    spec_from_json,
)
from repro.obs.bus import TraceBus

#: How long the scheduler sleeps waiting for worker messages (seconds).
_POLL_SECONDS = 0.05


@dataclass
class PointOutcome:
    """One grid point's fate: its measurement or its failure."""

    index: int
    spec: ExperimentSpec
    result: dict | None
    wall_time: float
    attempts: int
    error: str | None = None
    #: True when the result was read back from a checkpoint, not rerun.
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def checkpoint_record(self) -> dict:
        return {
            "fingerprint": self.spec.fingerprint(),
            "spec": self.spec.to_json(),
            "result": self.result,
            "wall_time": round(self.wall_time, 6),
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` learned, in spec order."""

    outcomes: list[PointOutcome]
    jobs: int
    wall_time: float
    resumed_points: int = 0

    @property
    def failures(self) -> list[PointOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def results(self) -> list[dict | None]:
        """The JSON-safe measurement payloads, in spec order."""
        return [outcome.result for outcome in self.outcomes]

    def merged(self) -> dict:
        """The deterministic merged artifact (spec-determined data only).

        Wall-clock times and attempt counts are deliberately excluded:
        they vary run to run, and the contract is that a parallel sweep
        serializes to the same bytes as a serial one.
        """
        return {
            "engine": "repro.experiments.sweep",
            "points": [
                {
                    "spec": outcome.spec.to_json(),
                    "result": outcome.result,
                    "error": outcome.error,
                }
                for outcome in self.outcomes
            ],
        }

    def merged_json(self) -> str:
        """Canonical bytes of :meth:`merged` (sorted keys, no spaces)."""
        return json.dumps(self.merged(), sort_keys=True,
                          separators=(",", ":")) + "\n"


# ---------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------


def load_checkpoint(path: str) -> dict[str, dict]:
    """Read a JSONL checkpoint into ``fingerprint -> record``.

    Later lines win (a retried sweep may append a success after a
    failure); truncated trailing lines — the signature of a killed
    writer — are skipped rather than fatal. Failed points are *not*
    treated as done, so a resumed sweep retries them.
    """
    records: dict[str, dict] = {}
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("error") is None and "fingerprint" in record:
                records[record["fingerprint"]] = record
    return records


class _CheckpointWriter:
    def __init__(self, path: str | None) -> None:
        self._handle = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")

    def append(self, outcome: PointOutcome) -> None:
        if self._handle is None:
            return
        json.dump(outcome.checkpoint_record(), self._handle,
                  sort_keys=True, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------
# Workers
# ---------------------------------------------------------------------


def _point_worker(connection, spec_record: dict) -> None:
    """Child-process entry: run one spec, send ``(status, payload)``."""
    try:
        spec = spec_from_json(spec_record)
        result = run_point(spec)
        connection.send(("ok", result.data()))
    except BaseException as exc:  # report, never hang the parent
        try:
            connection.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        connection.close()


@dataclass
class _Job:
    index: int
    spec: ExperimentSpec
    process: multiprocessing.Process = field(repr=False)
    connection: object = field(repr=False)
    attempts: int
    started: float
    deadline: float | None


def _default_context() -> multiprocessing.context.BaseContext:
    # fork is markedly cheaper per point and available on the platforms
    # CI runs on; spawn is the portable fallback (specs travel as JSON,
    # so both work).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------


def run_sweep(specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
              *, jobs: int = 1, timeout: float | None = None,
              retries: int = 1, checkpoint: str | None = None,
              obs: TraceBus | None = None,
              progress: Callable[[PointOutcome, int], None] | None = None,
              mp_context: multiprocessing.context.BaseContext | None = None,
              ) -> SweepReport:
    """Run every spec and merge outcomes deterministically in spec order.

    ``jobs=1`` with no ``timeout`` runs fully in-process (the serial
    fallback); otherwise up to ``jobs`` shared-nothing worker processes
    run concurrently, each computing one point from its spec alone.
    ``progress`` (if given) is called with each finished
    :class:`PointOutcome` and the total point count, in completion
    order.
    """
    spec_list = list(specs)
    if jobs < 1:
        raise SpecError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise SpecError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise SpecError(f"retries must be >= 0, got {retries}")
    for spec in spec_list:  # fail fast, before any process is forked
        if not isinstance(spec, ExperimentSpec):
            raise SpecError(f"not an ExperimentSpec: {spec!r}")
        spec.validate()

    started = time.perf_counter()
    total = len(spec_list)
    done = load_checkpoint(checkpoint) if checkpoint else {}
    writer = _CheckpointWriter(checkpoint)
    outcomes: dict[int, PointOutcome] = {}
    pending: list[tuple[int, ExperimentSpec]] = []
    resumed = 0
    for index, spec in enumerate(spec_list):
        record = done.get(spec.fingerprint())
        if record is not None:
            outcomes[index] = PointOutcome(
                index=index, spec=spec, result=record["result"],
                wall_time=record.get("wall_time", 0.0),
                attempts=record.get("attempts", 1), resumed=True)
            resumed += 1
        else:
            pending.append((index, spec))
    if obs is not None and resumed:
        obs.metrics.inc("sweep.points_resumed", resumed)

    def finish(outcome: PointOutcome) -> None:
        outcomes[outcome.index] = outcome
        if not outcome.resumed:
            writer.append(outcome)
        if obs is not None:
            obs.metrics.observe("sweep.point_wall_time", outcome.wall_time)
            if outcome.ok:
                obs.metrics.inc("sweep.points_completed")
            else:
                obs.metrics.inc("sweep.points_failed")
            obs.emit("sweep.point_done", index=outcome.index,
                     spec_kind=outcome.spec.kind, ok=outcome.ok,
                     attempts=outcome.attempts,
                     wall_time=round(outcome.wall_time, 6))
        if progress is not None:
            progress(outcome, total)

    try:
        if jobs == 1 and timeout is None:
            for index, spec in pending:
                finish(_run_serial(index, spec, retries, obs))
        elif pending:
            for outcome in _run_parallel(pending, jobs=jobs,
                                         timeout=timeout, retries=retries,
                                         obs=obs,
                                         mp_context=mp_context):
                finish(outcome)
    finally:
        writer.close()

    report = SweepReport(
        outcomes=[outcomes[index] for index in range(total)],
        jobs=jobs,
        wall_time=time.perf_counter() - started,
        resumed_points=resumed,
    )
    if obs is not None:
        obs.metrics.set_gauge("sweep.wall_time", report.wall_time)
        obs.metrics.set_gauge("sweep.points_total", total)
    return report


def _run_serial(index: int, spec: ExperimentSpec, retries: int,
                obs: TraceBus | None) -> PointOutcome:
    attempts = 0
    while True:
        attempts += 1
        start = time.perf_counter()
        try:
            result = run_point(spec).data()
            return PointOutcome(
                index=index, spec=spec, result=result,
                wall_time=time.perf_counter() - start, attempts=attempts)
        except Exception as exc:
            if attempts <= retries:
                if obs is not None:
                    obs.metrics.inc("sweep.retries")
                continue
            return PointOutcome(
                index=index, spec=spec, result=None,
                wall_time=time.perf_counter() - start, attempts=attempts,
                error=f"{type(exc).__name__}: {exc}")


def _run_parallel(pending: list[tuple[int, ExperimentSpec]], *, jobs: int,
                  timeout: float | None, retries: int,
                  obs: TraceBus | None,
                  mp_context: multiprocessing.context.BaseContext | None,
                  ) -> Iterable[PointOutcome]:
    """Yield outcomes in completion order, at most ``jobs`` in flight."""
    context = mp_context if mp_context is not None else _default_context()
    queue: list[tuple[int, ExperimentSpec, int]] = [
        (index, spec, 0) for index, spec in pending]
    queue.reverse()  # pop() from the tail -> original order
    running: dict[int, _Job] = {}

    def launch(index: int, spec: ExperimentSpec, attempts: int) -> None:
        parent_end, child_end = context.Pipe(duplex=False)
        process = context.Process(
            target=_point_worker, args=(child_end, spec.to_json()),
            daemon=True)
        process.start()
        child_end.close()
        now = time.perf_counter()
        running[index] = _Job(
            index=index, spec=spec, process=process,
            connection=parent_end, attempts=attempts + 1, started=now,
            deadline=None if timeout is None else now + timeout)

    def reap(job: _Job) -> tuple[str, object] | None:
        """Collect the worker's message, if any, and join the process."""
        message = None
        try:
            if job.connection.poll():
                message = job.connection.recv()
        except (EOFError, OSError):
            message = None
        finally:
            job.connection.close()
        job.process.join()
        return message

    def retry_or_fail(job: _Job, error: str) -> PointOutcome | None:
        if job.attempts <= retries:
            if obs is not None:
                obs.metrics.inc("sweep.retries")
            launch(job.index, job.spec, job.attempts)
            return None
        return PointOutcome(
            index=job.index, spec=job.spec, result=None,
            wall_time=time.perf_counter() - job.started,
            attempts=job.attempts, error=error)

    try:
        while queue or running:
            while queue and len(running) < jobs:
                index, spec, attempts = queue.pop()
                launch(index, spec, attempts)
            # Block until some worker has something to say (or the next
            # deadline passes).
            wait_for = _POLL_SECONDS
            if timeout is not None and running:
                nearest = min(job.deadline for job in running.values())
                wait_for = max(0.0, min(wait_for * 4,
                                        nearest - time.perf_counter()))
            connection_wait(
                [job.connection for job in running.values()],
                timeout=wait_for)
            now = time.perf_counter()
            for job in list(running.values()):
                outcome: PointOutcome | None = None
                if job.connection.poll():
                    del running[job.index]
                    message = reap(job)
                    if message is None:
                        outcome = retry_or_fail(
                            job, "worker died before reporting")
                    elif message[0] == "ok":
                        outcome = PointOutcome(
                            index=job.index, spec=job.spec,
                            result=message[1], wall_time=now - job.started,
                            attempts=job.attempts)
                    else:
                        outcome = retry_or_fail(job, str(message[1]))
                elif not job.process.is_alive():
                    del running[job.index]
                    message = reap(job)
                    if message is not None and message[0] == "ok":
                        outcome = PointOutcome(
                            index=job.index, spec=job.spec,
                            result=message[1], wall_time=now - job.started,
                            attempts=job.attempts)
                    else:
                        error = (str(message[1]) if message is not None
                                 else f"worker crashed (exit code "
                                      f"{job.process.exitcode})")
                        outcome = retry_or_fail(job, error)
                elif job.deadline is not None and now > job.deadline:
                    del running[job.index]
                    job.process.terminate()
                    job.process.join()
                    job.connection.close()
                    outcome = retry_or_fail(
                        job, f"timeout after {timeout:g}s")
                if outcome is not None:
                    yield outcome
    finally:
        for job in running.values():
            job.process.terminate()
            job.process.join()
            job.connection.close()
