"""Latency-scaling experiments: Figures 5 and 6.

**Figure 5** (paper): round-completion latency with 5,000-50,000 users,
1 MByte blocks, 20 Mbit/s per-user bandwidth — the claim is that latency
sits well under a minute and is *near-constant in the number of users*.

**Figure 6** (paper): 50,000-500,000 users by packing 500 users per VM;
per-user bandwidth collapses (a shared 1 Gbit/s NIC), CPU is saturated,
and ``lambda_step`` is raised to 60 s. Latency is ~4x Figure 5's but the
curve stays *flat*, which is the scaling claim.

Our reproduction keeps the committee sizes fixed while the population
grows (exactly the paper's mechanism for flat scaling: all costs depend
on tau, not on N) and scales populations down ~100x; see EXPERIMENTS.md
for the mapping. The Figure 6 variant models the shared-NIC bottleneck by
dividing per-user bandwidth by the users-per-VM packing factor.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.common.errors import NoSamplesError
from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import NetworkConfig, PopulationConfig, Simulation, SimulationConfig
from repro.experiments.metrics import LatencySummary
from repro.experiments.spec import LatencySpec, register_runner, run_point

#: Scaled-down populations standing in for the paper's 5K..50K sweep.
FIGURE5_USERS = [40, 80, 160, 320]
#: Scaled-down populations standing in for the paper's 50K..500K sweep.
FIGURE6_USERS = [80, 160, 320]
#: The paper packs 500 users per VM in Figure 6; bandwidth divides by it.
FIGURE6_PACKING = 10


@dataclass(frozen=True)
class LatencyPoint:
    """One x-axis point of a latency figure."""

    num_users: int
    summary: LatencySummary
    empty_rounds: int
    final_rounds: int
    rounds_measured: int


def _scaling_params(base: ProtocolParams | None) -> ProtocolParams:
    return base if base is not None else TEST_PARAMS


@register_runner(LatencySpec.kind)
def run_spec(spec: LatencySpec) -> LatencyPoint:
    """Run one deployment and summarize its round-completion latency."""
    params = _scaling_params(spec.params)
    config = SimulationConfig(
        num_users=spec.num_users, params=params, seed=spec.seed,
        network=NetworkConfig(bandwidth_bps=spec.bandwidth_bps,
                              latency_model="city"),
        population=PopulationConfig(mode=spec.population,
                                    always_on_core=spec.always_on_core,
                                    steps_ahead=spec.steps_ahead),
    )
    sim = Simulation(config)
    if spec.payload_bytes:
        senders = min(spec.num_users, 200)
        sim.submit_payments(senders,
                            note_bytes=spec.payload_bytes // senders)
    sim.run_rounds(spec.rounds)
    samples = sim.round_latencies(spec.measure_round)
    empties = sum(1 for node in sim.nodes
                  if node.chain.block_at(spec.measure_round).is_empty)
    finals = sum(
        1 for node in sim.nodes
        if node.metrics.round_record(spec.measure_round) is not None
        and node.metrics.round_record(spec.measure_round).kind == "final")
    try:
        summary = LatencySummary.from_samples(samples)
    except NoSamplesError:
        summary = LatencySummary.empty()
    return LatencyPoint(
        num_users=spec.num_users,
        summary=summary,
        empty_rounds=empties,
        final_rounds=finals,
        rounds_measured=spec.rounds,
    )


def run_latency_point(num_users: int, *, seed: int = 0,
                      params: ProtocolParams | None = None,
                      rounds: int = 2, payload_bytes: int = 0,
                      bandwidth_bps: float | None = 20e6,
                      measure_round: int = 2) -> LatencyPoint:
    """Deprecated keyword shim: build a :class:`LatencySpec` instead."""
    warnings.warn(
        "run_latency_point() is deprecated; build a LatencySpec and call "
        "repro.experiments.run_point(spec)", DeprecationWarning,
        stacklevel=2)
    return run_point(LatencySpec(
        num_users=num_users, seed=seed, params=params, rounds=rounds,
        payload_bytes=payload_bytes, bandwidth_bps=bandwidth_bps,
        measure_round=measure_round,
    )).point


def figure5(users: list[int] | None = None, *, seed: int = 0,
            params: ProtocolParams | None = None,
            payload_bytes: int = 50_000) -> list[LatencyPoint]:
    """Latency vs number of users (Figure 5 shape)."""
    return [run_point(spec).point
            for spec in figure5_specs(users, seed=seed, params=params,
                                      payload_bytes=payload_bytes)]


def figure5_specs(users: list[int] | None = None, *, seed: int = 0,
                  params: ProtocolParams | None = None,
                  payload_bytes: int = 50_000) -> list[LatencySpec]:
    """The Figure 5 grid as sweep-ready specs."""
    return [
        LatencySpec(num_users=n, seed=seed + i, params=params,
                    payload_bytes=payload_bytes)
        for i, n in enumerate(users if users is not None else FIGURE5_USERS)
    ]


def figure6(users: list[int] | None = None, *, seed: int = 0,
            params: ProtocolParams | None = None,
            packing: int = FIGURE6_PACKING) -> list[LatencyPoint]:
    """Latency vs users under shared-host bandwidth contention (Figure 6).

    Per-user bandwidth shrinks by the packing factor and lambda_step
    grows, mirroring the paper's configuration change.
    """
    return [run_point(spec).point
            for spec in figure6_specs(users, seed=seed, params=params,
                                      packing=packing)]


def figure6_specs(users: list[int] | None = None, *, seed: int = 0,
                  params: ProtocolParams | None = None,
                  packing: int = FIGURE6_PACKING) -> list[LatencySpec]:
    """The Figure 6 contention grid as sweep-ready specs."""
    base = _scaling_params(params)
    contended = dataclasses.replace(
        base, lambda_step=base.lambda_step * 3)
    return [
        LatencySpec(num_users=n, seed=seed + i, params=contended,
                    bandwidth_bps=20e6 / packing)
        for i, n in enumerate(users if users is not None else FIGURE6_USERS)
    ]


def flatness(points: list[LatencyPoint]) -> float:
    """Max/min ratio of median latency across the sweep (1.0 == flat).

    The paper's claim is near-constant latency; the benchmarks assert
    this stays small.
    """
    medians = [point.summary.median for point in points]
    return max(medians) / min(medians)
