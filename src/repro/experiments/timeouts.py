"""Timeout-parameter validation (section 10.5).

The paper validates its Figure 4 timeouts empirically:

* BA* steps finish well under ``lambda_step`` (20 s);
* the 25th-75th percentile spread of BA* completion times is under
  ``lambda_stepvar`` (5 s);
* blocks gossip within ``lambda_block`` (1 min);
* priority/proof messages propagate in ~1 s, well under
  ``lambda_priority`` (5 s).

We re-measure all four from node metrics and gossip timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.params import ProtocolParams, TEST_PARAMS
from repro.experiments.harness import NetworkConfig, Simulation, SimulationConfig


@dataclass(frozen=True)
class TimeoutReport:
    """Measured timings vs their configured budgets."""

    step_p99: float
    lambda_step: float
    ba_iqr: float               # 75th - 25th pct of BA* completion
    lambda_stepvar: float
    proposal_p99: float         # time to obtain the winning block
    lambda_block_budget: float  # stepvar + priority + block
    rounds: int

    @property
    def steps_within_budget(self) -> bool:
        return self.step_p99 < self.lambda_step

    @property
    def variance_within_budget(self) -> bool:
        return self.ba_iqr < self.lambda_stepvar

    @property
    def proposals_within_budget(self) -> bool:
        return self.proposal_p99 < self.lambda_block_budget


def measure_timeouts(num_users: int = 40, *, rounds: int = 3, seed: int = 0,
                     params: ProtocolParams | None = None,
                     payload_bytes: int = 20_000) -> TimeoutReport:
    """Run a deployment and compare measured timings to the budgets."""
    params = params if params is not None else TEST_PARAMS
    sim = Simulation(SimulationConfig(
        num_users=num_users, params=params, seed=seed,
        network=NetworkConfig(bandwidth_bps=20e6, latency_model="city"),
    ))
    for _ in range(rounds):
        sim.submit_payments(min(100, num_users),
                            note_bytes=payload_bytes // 100)
    sim.run_rounds(rounds)

    step_durations = [
        seconds
        for node in sim.nodes
        for (_, _, seconds) in node.metrics.step_durations
    ]
    ba_completions = [
        record.ba_done_time - record.start_time
        for node in sim.nodes
        for record in node.metrics.rounds
    ]
    proposal_durations = [
        record.proposal_duration
        for node in sim.nodes
        for record in node.metrics.rounds
    ]
    return TimeoutReport(
        step_p99=float(np.percentile(step_durations, 99)),
        lambda_step=params.lambda_step,
        ba_iqr=float(np.percentile(ba_completions, 75)
                     - np.percentile(ba_completions, 25)),
        lambda_stepvar=params.lambda_stepvar,
        proposal_p99=float(np.percentile(proposal_durations, 99)),
        lambda_block_budget=(params.lambda_stepvar + params.lambda_priority
                             + params.lambda_block),
        rounds=rounds,
    )


def measure_priority_gossip(num_users: int = 60, *,
                            seed: int = 0) -> float:
    """Seconds for a 200-byte priority message to reach all users.

    The paper measures ~1 s for 1 KB to 90% of Bitcoin's network and sets
    lambda_priority = 5 s; our WAN model should land in the same regime.
    """
    import numpy as np_local
    from repro.network.gossip import GossipNetwork
    from repro.network.latency import LatencyModel
    from repro.network.message import Envelope
    from repro.sim.loop import Environment

    env = Environment()
    rng = np_local.random.default_rng(seed)
    network = GossipNetwork(env, num_users, rng, LatencyModel(num_users, rng),
                            bandwidth_bps=20e6)
    network.interfaces[0].broadcast(
        Envelope(origin=b"measure", kind="priority", payload=None, size=200))
    env.run()
    return env.now
