"""Per-round traffic census: the quorum-trimmed relay's receipts.

Section 10.1 argues Algorand's per-round traffic is dominated by
committee votes, and section 8.4's gossip rule ("relay at most once per
key") caps each unique message at one transmission per node. The relay
damper (:mod:`repro.runtime.damping`) trims further: once a node has
forwarded a quorum for a ``(round, step, value)`` it stops relaying that
key. This module measures both regimes against a closed-form model and
writes the comparison to ``BENCH_traffic.json``.

**The analytical column.** With stake vector ``w`` (total ``W``) and an
expected committee size ``tau``, each unit of stake is selected
independently with probability ``tau / W`` (section 5.1's binomial
sortition), so the expected number of *distinct* users holding at least
one selected sub-user — i.e. distinct vote messages originated — is::

    E_d(tau) = sum_i (1 - (1 - tau / W) ** w_i)

A common-case round carries two proposer-committee messages per
proposer (priority announcement + block), six ordinary step committees
(reduction 1-2, BinaryBA* step 1, and the next-three steering steps),
and one final committee:

* ``full    = 2 E_d(tau_p) + 6 E_d(tau_s) + E_d(tau_f)`` — every
  originated message, the relay-everything regime;
* ``minimal = 2 E_d(tau_p) + 6 T_step E_d(tau_s) + T_final E_d(tau_f)``
  — the quorum-trimmed floor, where each committee stops mattering at
  its vote threshold.

Stake concentration lowers ``E_d`` (a whale's sub-users collapse into
one message), so the census sweeps three stake shapes: ``uniform``,
``whale`` (top tenth of accounts holds a third of the stake) and
``midtier`` (middle 40% of accounts holds 60%).

**The observed column** comes from :mod:`repro.obs` gossip counters
(``gossip.sent.* / recv.* / relayed.* / damped.vote``) on an event-less
:class:`~repro.obs.bus.TraceBus`, normalized per round. Runs submit no
payments, so the stake vector the analytical model sees is exactly the
one sortition draws from all run long.

CLI (the CI traffic-smoke job runs the quick form)::

    python -m repro.experiments traffic            # census + scale point
    python -m repro.experiments.traffic --no-scale # census grid only
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from dataclasses import dataclass
from typing import Any

from repro.common.errors import SpecError
from repro.common.params import TEST_PARAMS, ProtocolParams
from repro.experiments.harness import RuntimeConfig, Simulation, SimulationConfig
from repro.experiments.metrics import format_table
from repro.experiments.spec import TrafficSpec, register_runner
from repro.obs.bus import TraceBus

#: Stake shapes the census sweeps.
STAKE_SHAPES = ("uniform", "whale", "midtier")

#: Census deployment: 40 users and committees sized so the analytical
#: minimal column lands near 100 messages/round — comparable across the
#: three stake shapes without drowning in either proposer or final
#: traffic.
CENSUS_USERS = 40
CENSUS_PARAMS = dataclasses.replace(TEST_PARAMS, tau_step=24, tau_final=36)

#: Scale point: the damper's headline claim is measured at 300 users
#: with the final step pipelined — without pipelining, a node commits
#: the moment its final count crosses and the stale-round check already
#: stops the final tail, hiding the damper's largest committee.
SCALE_PARAMS = dataclasses.replace(TEST_PARAMS, pipeline_final_step=True)

#: Per-user stake unit for the synthetic distributions.
STAKE_UNIT = 10


def stake_distribution(shape: str, num_users: int,
                       unit: int = STAKE_UNIT) -> list[int]:
    """Deterministic integer balances summing to ``unit * num_users``.

    * ``uniform`` — every account holds ``unit``;
    * ``whale``   — the top ``num_users // 10`` accounts (at least one)
      split a third of the total, the rest split the remainder;
    * ``midtier`` — the middle 40% of accounts split 60% of the total.

    Rounding remainders go to the first account of each group, so the
    total is exact and the vector is a pure function of its arguments.
    """
    if shape not in STAKE_SHAPES:
        raise ValueError(f"unknown stake shape {shape!r}; "
                         f"expected one of {STAKE_SHAPES}")
    total = unit * num_users
    if shape == "uniform":
        return [unit] * num_users

    def split(group_total: int, size: int) -> list[int]:
        share, remainder = divmod(group_total, size)
        return [share + remainder] + [share] * (size - 1)

    if shape == "whale":
        whales = max(1, num_users // 10)
        rich = split(total // 3, whales)
        poor = split(total - total // 3, num_users - whales)
        return rich + poor
    # midtier: middle 40% of accounts hold 60% of the stake.
    mid = max(1, (num_users * 2) // 5)
    low = (num_users - mid) // 2
    high = num_users - mid - low
    mid_total = (total * 3) // 5
    outer = split(total - mid_total, low + high)
    return outer[:low] + split(mid_total, mid) + outer[low:]


def expected_distinct_voters(balances: list[int], tau: float) -> float:
    """``E_d(tau)``: expected users with >= 1 selected sub-user."""
    total = sum(balances)
    keep = 1.0 - tau / total
    return sum(1.0 - keep ** w for w in balances)


def analytical_census(balances: list[int],
                      params: ProtocolParams) -> dict[str, float]:
    """Closed-form messages/round for a common-case round (module doc)."""
    proposers = expected_distinct_voters(balances, params.tau_proposer)
    step = expected_distinct_voters(balances, params.tau_step)
    final = expected_distinct_voters(balances, params.tau_final)
    return {
        "proposer_msgs": round(proposers, 2),
        "step_committee_msgs": round(step, 2),
        "final_committee_msgs": round(final, 2),
        "full": round(2 * proposers + 6 * step + final, 2),
        "minimal": round(2 * proposers + 6 * params.t_step * step
                         + params.t_final * final, 2),
    }


# ---------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class TrafficPoint:
    """One measured deployment next to its analytical model."""

    stake_shape: str
    num_users: int
    rounds: int
    relay_damping: bool
    analytic: dict[str, float]
    #: kind -> {sent, recv, relayed} per round, network-wide.
    observed: dict[str, dict[str, float]]
    #: Vote relays skipped per round by the damper (0 when off).
    damped_per_round: float


@register_runner(TrafficSpec.kind)
def run_spec(spec: TrafficSpec) -> TrafficPoint:
    """Run one census deployment and read the gossip counters."""
    params = spec.params if spec.params is not None else CENSUS_PARAMS
    balances = stake_distribution(spec.stake_shape, spec.num_users)
    bus = TraceBus(max_events=0)
    sim = Simulation(SimulationConfig(
        num_users=spec.num_users, params=params, seed=spec.seed,
        balances=balances,
        runtime=RuntimeConfig(relay_damping=spec.relay_damping)), obs=bus)
    sim.run_rounds(spec.rounds)
    metrics = bus.metrics
    observed = {}
    for kind in ("priority", "block", "vote"):
        observed[kind] = {
            counter: round(
                metrics.counter(f"gossip.{counter}.{kind}") / spec.rounds, 1)
            for counter in ("sent", "recv", "relayed")}
    return TrafficPoint(
        stake_shape=spec.stake_shape,
        num_users=spec.num_users,
        rounds=spec.rounds,
        relay_damping=spec.relay_damping,
        analytic=analytical_census(balances, params),
        observed=observed,
        damped_per_round=round(
            metrics.counter("gossip.damped.vote") / spec.rounds, 1),
    )


def census_specs(*, seed: int = 0, num_users: int = CENSUS_USERS,
                 rounds: int = 2) -> list[TrafficSpec]:
    """The census grid: every stake shape, damped and undamped."""
    return [TrafficSpec(stake_shape=shape, num_users=num_users,
                        rounds=rounds, seed=seed, relay_damping=damping)
            for shape in STAKE_SHAPES
            for damping in (True, False)]


def _reduction(undamped: float, damped: float) -> float:
    return round(100.0 * (undamped - damped) / undamped, 1) if undamped else 0.0


def traffic_census(*, seed: int = 0, num_users: int = CENSUS_USERS,
                   rounds: int = 2) -> dict[str, Any]:
    """Run the census grid; per-shape damped/undamped/analytic record."""
    points: dict[tuple[str, bool], TrafficPoint] = {}
    for spec in census_specs(seed=seed, num_users=num_users, rounds=rounds):
        points[(spec.stake_shape, spec.relay_damping)] = run_spec(spec)
    report: dict[str, Any] = {}
    for shape in STAKE_SHAPES:
        damped = points[(shape, True)]
        undamped = points[(shape, False)]
        report[shape] = {
            "num_users": num_users,
            "rounds": rounds,
            "seed": seed,
            "analytic": damped.analytic,
            "damped": damped.observed,
            "damped_votes_per_round": damped.damped_per_round,
            "undamped": undamped.observed,
            "vote_relay_reduction_pct": _reduction(
                undamped.observed["vote"]["relayed"],
                damped.observed["vote"]["relayed"]),
        }
    return report


def scale_point(*, seed: int = 11, num_users: int = 300,
                rounds: int = 2) -> dict[str, Any]:
    """The headline claim: vote-relay reduction at 200+ users."""
    outcomes = {}
    for damping in (True, False):
        spec = TrafficSpec(stake_shape="uniform", num_users=num_users,
                           rounds=rounds, seed=seed, relay_damping=damping,
                           params=SCALE_PARAMS)
        outcomes[damping] = run_spec(spec)
    damped, undamped = outcomes[True], outcomes[False]
    return {
        "num_users": num_users,
        "rounds": rounds,
        "seed": seed,
        "pipeline_final_step": True,
        "damped": damped.observed,
        "damped_votes_per_round": damped.damped_per_round,
        "undamped": undamped.observed,
        "vote_relay_reduction_pct": _reduction(
            undamped.observed["vote"]["relayed"],
            damped.observed["vote"]["relayed"]),
        "vote_sent_reduction_pct": _reduction(
            undamped.observed["vote"]["sent"],
            damped.observed["vote"]["sent"]),
    }


def build_report(*, include_scale: bool = True, seed: int = 0,
                 num_users: int = CENSUS_USERS,
                 rounds: int = 2) -> dict[str, Any]:
    """The full BENCH_traffic.json payload (deterministic bytes)."""
    report: dict[str, Any] = {
        "census": traffic_census(seed=seed, num_users=num_users,
                                 rounds=rounds),
        "params": {
            "tau_proposer": CENSUS_PARAMS.tau_proposer,
            "tau_step": CENSUS_PARAMS.tau_step,
            "tau_final": CENSUS_PARAMS.tau_final,
            "t_step": CENSUS_PARAMS.t_step,
            "t_final": CENSUS_PARAMS.t_final,
        },
    }
    if include_scale:
        report["scale"] = scale_point()
    return report


def render_census(report: dict[str, Any]) -> str:
    """Human table: analytic full/minimal vs observed unique msgs."""
    rows = []
    for shape, entry in report["census"].items():
        analytic = entry["analytic"]
        unique_damped = round(
            sum(entry["damped"][k]["recv"] for k in ("priority", "block",
                                                     "vote"))
            / entry["num_users"], 1)
        rows.append([
            shape, analytic["full"], analytic["minimal"],
            unique_damped,
            entry["damped"]["vote"]["relayed"],
            entry["undamped"]["vote"]["relayed"],
            f"{entry['vote_relay_reduction_pct']}%",
        ])
    return format_table(
        ["stake", "analytic full", "analytic minimal", "recv/user/round",
         "vote relays damped", "undamped", "reduction"], rows)


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_traffic(*, include_scale: bool = True,
                out: str | None = "BENCH_traffic.json") -> dict[str, Any]:
    """The ``traffic`` artifact: census (+ scale point), table, JSON."""
    report = build_report(include_scale=include_scale)
    print(render_census(report))
    if include_scale:
        scale = report["scale"]
        print(f"scale point ({scale['num_users']} users, pipelined final): "
              f"vote relays {scale['undamped']['vote']['relayed']:.0f} -> "
              f"{scale['damped']['vote']['relayed']:.0f} per round "
              f"({scale['vote_relay_reduction_pct']}% fewer)")
    if out is not None:
        write_report(report, out)
        print(f"wrote {out}")
    return report


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.traffic",
        description="Per-round traffic census: analytical vs observed "
                    "messages per round, damped vs undamped.")
    parser.add_argument("--no-scale", action="store_true",
                        help="census grid only (CI smoke; skips the "
                             "300-user scale point)")
    parser.add_argument("--out", default="BENCH_traffic.json",
                        help="output path ('-' prints JSON to stdout)")
    args = parser.parse_args(argv)
    report = run_traffic(
        include_scale=not args.no_scale,
        out=None if args.out == "-" else args.out)
    if args.out == "-":
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
