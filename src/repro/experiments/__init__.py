"""Experiment harness and per-figure/table runners for the evaluation.

The unified experiment-point API lives in :mod:`repro.experiments.spec`
(frozen :class:`ExperimentSpec` dataclasses + one ``run_point``
dispatcher) and the process-parallel grid engine in
:mod:`repro.experiments.sweep`; the per-figure modules contribute the
measurement logic and sweep-ready grid builders.
"""

from repro.experiments.adversarial import (
    AdversarialPoint,
    figure8,
    figure8_specs,
    run_adversarial_point,
)
from repro.experiments.costs import (
    CostReport,
    bandwidth_independence,
    expected_certificate_bytes,
    measure_costs,
)
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.latency import (
    LatencyPoint,
    figure5,
    figure5_specs,
    figure6,
    figure6_specs,
    flatness,
    run_latency_point,
)
from repro.experiments.metrics import LatencySummary, format_table
from repro.experiments.spec import (
    AdversarialSpec,
    BlockSizeSpec,
    ExperimentSpec,
    LatencySpec,
    PointResult,
    SPEC_KINDS,
    WaitingSpec,
    run_point,
    spec_from_json,
)
from repro.experiments.sweep import (
    PointOutcome,
    SweepReport,
    load_checkpoint,
    run_sweep,
)
from repro.experiments.throughput import (
    BlockSizePoint,
    ThroughputRow,
    figure7,
    figure7_specs,
    paper_scale_projection,
    run_block_size_point,
    throughput_table,
)
from repro.experiments.waiting import (
    WaitingPoint,
    run_waiting_point,
    waiting_specs,
    waiting_tradeoff,
)
from repro.experiments.timeouts import (
    TimeoutReport,
    measure_priority_gossip,
    measure_timeouts,
)

__all__ = [
    "Simulation",
    "SimulationConfig",
    "ExperimentSpec",
    "LatencySpec",
    "AdversarialSpec",
    "BlockSizeSpec",
    "WaitingSpec",
    "SPEC_KINDS",
    "PointResult",
    "run_point",
    "spec_from_json",
    "PointOutcome",
    "SweepReport",
    "run_sweep",
    "load_checkpoint",
    "figure5_specs",
    "figure6_specs",
    "figure7_specs",
    "figure8_specs",
    "waiting_specs",
    "LatencySummary",
    "format_table",
    "LatencyPoint",
    "run_latency_point",
    "figure5",
    "figure6",
    "flatness",
    "BlockSizePoint",
    "ThroughputRow",
    "run_block_size_point",
    "figure7",
    "throughput_table",
    "paper_scale_projection",
    "CostReport",
    "measure_costs",
    "bandwidth_independence",
    "expected_certificate_bytes",
    "AdversarialPoint",
    "run_adversarial_point",
    "figure8",
    "TimeoutReport",
    "measure_timeouts",
    "measure_priority_gossip",
    "WaitingPoint",
    "run_waiting_point",
    "waiting_tradeoff",
]
