"""Experiment harness and per-figure/table runners for the evaluation."""

from repro.experiments.adversarial import (
    AdversarialPoint,
    figure8,
    run_adversarial_point,
)
from repro.experiments.costs import (
    CostReport,
    bandwidth_independence,
    expected_certificate_bytes,
    measure_costs,
)
from repro.experiments.harness import Simulation, SimulationConfig
from repro.experiments.latency import (
    LatencyPoint,
    figure5,
    figure6,
    flatness,
    run_latency_point,
)
from repro.experiments.metrics import LatencySummary, format_table
from repro.experiments.throughput import (
    BlockSizePoint,
    ThroughputRow,
    figure7,
    paper_scale_projection,
    run_block_size_point,
    throughput_table,
)
from repro.experiments.waiting import (
    WaitingPoint,
    run_waiting_point,
    waiting_tradeoff,
)
from repro.experiments.timeouts import (
    TimeoutReport,
    measure_priority_gossip,
    measure_timeouts,
)

__all__ = [
    "Simulation",
    "SimulationConfig",
    "LatencySummary",
    "format_table",
    "LatencyPoint",
    "run_latency_point",
    "figure5",
    "figure6",
    "flatness",
    "BlockSizePoint",
    "ThroughputRow",
    "run_block_size_point",
    "figure7",
    "throughput_table",
    "paper_scale_projection",
    "CostReport",
    "measure_costs",
    "bandwidth_independence",
    "expected_certificate_bytes",
    "AdversarialPoint",
    "run_adversarial_point",
    "figure8",
    "TimeoutReport",
    "measure_timeouts",
    "measure_priority_gossip",
    "WaitingPoint",
    "run_waiting_point",
    "waiting_tradeoff",
]
