"""Regenerate every reproduced figure/table from the command line.

Usage::

    python -m repro.experiments                  # everything (~10 min)
    python -m repro.experiments fig5 tab_costs   # a subset
    python -m repro.experiments --jobs 4 fig5    # sweep artifacts in parallel
    python -m repro.experiments sweep --jobs 4   # raw grid -> merged JSON

Artifacts are registered declaratively in :data:`ARTIFACTS`. Sweep-style
artifacts (fig5, fig6, fig7, fig8, tab_throughput, tab_waiting) are
expressed as a spec grid plus a renderer and route through the parallel
sweep engine (:mod:`repro.experiments.sweep`); analytic artifacts are
plain callables. The ``sweep`` subcommand exposes the engine directly:
it builds a grid, fans it over ``--jobs`` worker processes, writes a
deterministic merged JSON (byte-identical for any ``--jobs``), and
checkpoints finished points so an interrupted sweep resumes.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable

from repro.analysis.committee import (
    certificate_forgery_log2,
    check_paper_step_parameters,
    figure3_curve,
    final_step_safety,
)
from repro.baselines.nakamoto import NakamotoConfig, throughput_bytes_per_hour
from repro.common.params import PAPER_PARAMS
from repro.experiments.adversarial import figure8_specs
from repro.experiments.costs import expected_certificate_bytes, measure_costs
from repro.experiments.latency import figure5_specs, figure6_specs
from repro.experiments.metrics import format_table
from repro.experiments.spec import (
    AdversarialSpec,
    BlockSizeSpec,
    ExperimentSpec,
    LatencySpec,
    WaitingSpec,
)
from repro.experiments.sweep import PointOutcome, SweepReport, run_sweep
from repro.experiments.throughput import (
    BlockSizePoint,
    figure7_specs,
    paper_scale_projection,
    throughput_table,
)
from repro.experiments.timeouts import measure_priority_gossip, measure_timeouts
from repro.experiments.waiting import waiting_specs


def _banner(title: str) -> None:
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


# ---------------------------------------------------------------------
# Renderers for sweep artifacts (take the engine's JSON-safe payloads)
# ---------------------------------------------------------------------


def _summary_row(result: dict) -> list[str]:
    """min/p25/median/p75/max cells from a serialized LatencySummary."""
    summary = result["summary"]
    cells = []
    for key in ("minimum", "p25", "median", "p75", "maximum"):
        value = summary[key]
        cells.append("nan" if value is None else round(value, 2))
    return cells


def _latency_flatness(results: list[dict]) -> float:
    medians = [r["summary"]["median"] for r in results
               if r["summary"]["median"] is not None]
    return max(medians) / min(medians) if medians else float("nan")


def _render_latency(results: list[dict]) -> str:
    table = format_table(
        ["users", "min", "p25", "median", "p75", "max"],
        [[r["num_users"]] + _summary_row(r) for r in results])
    return (f"{table}\nflatness (max/min median): "
            f"{_latency_flatness(results):.2f} (paper: near-constant)")


def _render_fig7(results: list[dict]) -> str:
    rows = []
    for r in results:
        total = r["proposal_time"] + r["ba_time"] + r["final_step_time"]
        rows.append([r["block_size"], f"{r['proposal_time']:.2f}",
                     f"{r['ba_time']:.2f}", f"{r['final_step_time']:.2f}",
                     f"{total:.2f}"])
    return format_table(["block B", "proposal", "BA*", "final", "total"],
                        rows)


def _render_fig8(results: list[dict]) -> str:
    rows = []
    for r in results:
        cells = _summary_row(r)
        rows.append([f"{r['malicious_fraction']:.0%}", cells[0], cells[2],
                     cells[4], r["agreed"], r["empty_rounds"]])
    return format_table(
        ["malicious", "min", "median", "max", "agreed", "empty rounds"],
        rows)


def _render_tab_throughput(results: list[dict]) -> str:
    points = [BlockSizePoint(**r) for r in results]
    rows = throughput_table(points)
    table = format_table(
        ["system", "block B", "round s", "MB/hour", "vs bitcoin"],
        [[r.system, r.block_size, f"{r.round_time:.1f}",
          f"{r.bytes_per_hour / 1e6:.1f}", f"{r.ratio_vs_bitcoin:.1f}x"]
         for r in rows])
    projection = paper_scale_projection()
    bitcoin = throughput_bytes_per_hour(NakamotoConfig())
    return (f"{table}\npaper-scale projection (10 MB blocks): "
            f"{projection / 1e6:.0f} MB/h = {projection / bitcoin:.0f}x "
            f"Bitcoin (paper: ~750 MB/h, 125x)")


def _render_tab_waiting(results: list[dict]) -> str:
    return format_table(
        ["wait", "empty rounds", "median latency"],
        [[f"{r['wait_seconds']:.2f} s", f"{r['empty_fraction']:.0%}",
          f"{r['median_latency']:.2f} s"] for r in results])


# ---------------------------------------------------------------------
# Analytic / non-sweep artifacts (plain callables)
# ---------------------------------------------------------------------


def run_fig3() -> None:
    points = figure3_curve([0.78, 0.80, 0.84, 0.88])
    print(format_table(
        ["h", "tau", "T"],
        [[f"{p.honest_fraction:.0%}", p.committee_size,
          f"{p.threshold:.3f}"] for p in points]))
    print(f"paper's starred point: tau=2000, T=0.685 at h=80% "
          f"(violation {check_paper_step_parameters():.1e})")


def run_tab_costs() -> None:
    report = measure_costs(40, rounds=3, seed=500, payload_bytes=40_000)
    print(format_table(["metric", "measured"], [
        ["bandwidth / user",
         f"{report.mean_bandwidth_bits_per_sec / 1e6:.2f} Mbit/s"],
        ["certificate", f"{report.certificate_bytes / 1e3:.1f} KB "
                        f"({report.certificate_votes:.0f} votes)"],
        ["certificate overhead", f"{report.certificate_overhead:.0%}"],
        ["storage/round (10 shards)",
         f"{report.storage_per_round_sharded_10 / 1e3:.1f} KB"],
    ]))
    print(f"paper-scale certificate (tau=2000): "
          f"{expected_certificate_bytes(PAPER_PARAMS) / 1e3:.0f} KB "
          f"(paper: ~300 KB)")


def run_tab_timeouts() -> None:
    report = measure_timeouts(40, rounds=3, seed=800)
    print(format_table(["quantity", "measured", "budget"], [
        ["BA* step p99", f"{report.step_p99:.2f} s",
         f"{report.lambda_step:.0f} s"],
        ["BA* completion IQR", f"{report.ba_iqr:.2f} s",
         f"{report.lambda_stepvar:.0f} s"],
        ["block obtained p99", f"{report.proposal_p99:.2f} s",
         f"{report.lambda_block_budget:.0f} s"],
    ]))
    print(f"priority gossip to 60 users: "
          f"{measure_priority_gossip(60, seed=801):.2f} s "
          f"(budget 5 s; paper measures ~1 s)")


def run_tab_params() -> None:
    p = PAPER_PARAMS
    print(format_table(["parameter", "value"], [
        ["h", f"{p.honest_fraction:.0%}"],
        ["R", p.seed_refresh_interval],
        ["tau_proposer / tau_step / tau_final",
         f"{p.tau_proposer} / {p.tau_step} / {p.tau_final}"],
        ["T_step / T_final", f"{p.t_step} / {p.t_final}"],
        ["MaxSteps", p.max_steps],
        ["lambdas (priority/block/step/stepvar)",
         f"{p.lambda_priority:.0f} / {p.lambda_block:.0f} / "
         f"{p.lambda_step:.0f} / {p.lambda_stepvar:.0f} s"],
    ]))
    print(f"final-step violation: {final_step_safety():.1e}; "
          f"certificate forgery: 2^{certificate_forgery_log2():.0f}")


def run_tab_related() -> None:
    from repro.baselines.doublespend import speedup_table
    from repro.baselines.related import comparison_rows
    print(format_table(
        ["attacker q", "blocks", "bitcoin wait", "speedup"],
        [[f"{row['q']:.0%}", row["z"],
          f"{row['bitcoin_wait_s'] / 60:.0f} min",
          f"{row['speedup']:.0f}x"] for row in speedup_table()]))
    print(format_table(
        ["system", "latency", "open", "fork-free", "adaptive-adv"],
        [[p.name, f"{p.latency_seconds:.0f} s", p.decentralized,
          not p.forks_possible, p.adaptive_adversary]
         for p in comparison_rows()]))


def run_tab_scalability() -> None:
    from repro.analysis.graph import diameter_scaling
    from repro.analysis.steps import (
        COMMON_CASE_STEPS,
        expected_total_steps_worst_case,
    )
    print(format_table(
        ["users", "giant component", "diameter"],
        [[r.num_nodes, f"{r.giant_component_fraction:.3f}", r.diameter]
         for r in diameter_scaling([50, 400, 3200])]))
    print(f"BA* steps: {COMMON_CASE_STEPS} common case, "
          f"{expected_total_steps_worst_case():.0f} expected worst case "
          f"(paper: 4 and 13)")


def run_traffic_artifact() -> None:
    """Census grid + 200-user scale point; writes BENCH_traffic.json."""
    from repro.experiments.traffic import run_traffic
    run_traffic()


#: Set by ``--conformance`` in :func:`main`; makes the ``obs`` artifact
#: print the reference-machine verdict after the trace report.
_PRINT_CONFORMANCE = False


def run_obs() -> None:
    from repro.experiments.harness import Simulation, SimulationConfig
    from repro.obs import TraceBus
    from repro.obs.report import render_report

    bus = TraceBus()
    sim = Simulation(SimulationConfig(num_users=12, seed=42), obs=bus)
    sim.submit_payments(24)
    sim.run_rounds(2)
    print(render_report(bus.events, bus.snapshot()))
    summary = sim.summary()
    cache = summary["verification_cache"]
    print(f"\nharness summary: {summary['events_processed']:,} events "
          f"({summary['immediates_processed']:,} immediate), "
          f"{summary['messages_delivered']:,} messages delivered")
    print(f"verification cache: {cache['hits']:,} hits / "
          f"{cache['misses']:,} misses "
          f"(hit rate {cache['hit_rate']:.3f}, "
          f"{cache['negative_hits']} negative); "
          f"router unknown-kind drops: {summary['router_unknown_kinds']}")
    if _PRINT_CONFORMANCE and sim.conformance is not None:
        verdict = sim.conformance.verdict()
        status = "CONFORMS" if verdict.ok else "VIOLATIONS"
        print(f"\nconformance: {status} — {verdict.events_checked:,} "
              f"events checked across {verdict.nodes} nodes, "
              f"{len(verdict.violations)} violations")
        for breach in verdict.violations[:10]:
            print(f"  [{breach['rule']}] t={breach['t']:.3f} "
                  f"node {breach['node']} round {breach['round']}: "
                  f"{breach['detail']}")


# ---------------------------------------------------------------------
# The declarative artifact registry
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Artifact:
    """One regenerable paper artifact.

    Sweep artifacts define ``specs`` (the grid) + ``render`` (payloads ->
    table) and route through the engine; analytic artifacts define only
    ``runner``.
    """

    name: str
    title: str
    specs: Callable[[], list[ExperimentSpec]] | None = None
    render: Callable[[list[dict]], str] | None = None
    runner: Callable[[], None] | None = None

    def run(self, jobs: int = 1) -> None:
        _banner(self.title)
        if self.specs is not None:
            report = run_sweep(self.specs(), jobs=jobs)
            for failure in report.failures:
                print(f"point {failure.index} failed: {failure.error}")
            print(self.render(
                [o.result for o in report.outcomes if o.ok]))
        else:
            self.runner()


_ARTIFACT_LIST = [
    Artifact("fig3",
             "Figure 3: committee size vs honest fraction (eps = 5e-9)",
             runner=run_fig3),
    Artifact("fig5", "Figure 5: round latency vs #users (simulated seconds)",
             specs=lambda: figure5_specs([30, 60, 120], seed=100,
                                         payload_bytes=40_000),
             render=_render_latency),
    Artifact("fig6", "Figure 6: latency under 10x bandwidth contention",
             specs=lambda: figure6_specs([60, 120], seed=200),
             render=_render_latency),
    Artifact("fig7", "Figure 7: round segments vs block size",
             specs=lambda: figure7_specs([1_000, 50_000, 200_000], seed=300,
                                         num_users=30),
             render=_render_fig7),
    Artifact("fig8", "Figure 8: latency vs fraction of malicious users",
             specs=lambda: figure8_specs([0.0, 0.10, 0.20], num_users=20,
                                         seed=700),
             render=_render_fig8),
    Artifact("tab_throughput", "Section 10.2: throughput vs Bitcoin",
             specs=lambda: figure7_specs([50_000, 200_000], seed=400,
                                         num_users=30),
             render=_render_tab_throughput),
    Artifact("tab_costs", "Section 10.3: per-user costs",
             runner=run_tab_costs),
    Artifact("tab_timeouts", "Section 10.5: timeout validation",
             runner=run_tab_timeouts),
    Artifact("tab_params", "Figure 4: implementation parameters",
             runner=run_tab_params),
    Artifact("tab_related",
             "Sections 1-2: double-spend wait and related systems",
             runner=run_tab_related),
    Artifact("tab_waiting", "Section 6: proposal-wait trade-off",
             specs=lambda: waiting_specs([0.02, 0.5, 2.0], seed=10),
             render=_render_tab_waiting),
    Artifact("tab_scalability",
             "Section 8.4 topology + section 7 step counts",
             runner=run_tab_scalability),
    Artifact("obs", "Observability: traced 2-round deployment + report",
             runner=run_obs),
    Artifact("traffic",
             "Traffic census: analytical vs observed messages per round",
             runner=run_traffic_artifact),
]

ARTIFACTS: dict[str, Artifact] = {a.name: a for a in _ARTIFACT_LIST}


# ---------------------------------------------------------------------
# The sweep subcommand
# ---------------------------------------------------------------------


def _csv_ints(text: str) -> list[int]:
    return [int(item) for item in text.split(",") if item]


def _csv_floats(text: str) -> list[float]:
    return [float(item) for item in text.split(",") if item]


def build_grid(args: argparse.Namespace) -> list[ExperimentSpec]:
    """Materialize the requested grid (axis values x seeds)."""
    specs: list[ExperimentSpec] = []
    for seed in args.seeds:
        if args.grid == "latency":
            rounds = args.rounds or 1
            specs.extend(LatencySpec(
                num_users=n, seed=seed, rounds=rounds,
                payload_bytes=args.payload_bytes,
                measure_round=rounds,
                population=args.population,
                always_on_core=args.core,
                steps_ahead=args.steps_ahead) for n in args.users)
        elif args.grid == "adversarial":
            specs.extend(AdversarialSpec(
                fraction=f, num_users=args.users[0], seed=seed,
                rounds=args.rounds or 2) for f in args.fractions)
        elif args.grid == "blocksize":
            specs.extend(BlockSizeSpec(
                block_size=b, num_users=args.users[0], seed=seed)
                for b in args.sizes)
        elif args.grid == "waiting":
            specs.extend(WaitingSpec(
                wait_seconds=w, num_users=args.users[0], seed=seed,
                rounds=args.rounds or 3) for w in args.waits)
    return specs


def sweep_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Fan an experiment grid over worker processes; "
                    "merged output is byte-identical for any --jobs.")
    parser.add_argument("--grid", default="latency",
                        choices=["latency", "adversarial", "blocksize",
                                 "waiting"])
    parser.add_argument("--users", type=_csv_ints, default=[8, 10, 12],
                        help="population axis (latency) or the fixed "
                             "population (other grids)")
    parser.add_argument("--seeds", type=_csv_ints, default=[0, 1, 2, 3],
                        help="seed axis; the grid is axis x seeds")
    parser.add_argument("--fractions", type=_csv_floats,
                        default=[0.0, 0.1, 0.2],
                        help="malicious-stake axis (adversarial grid)")
    parser.add_argument("--sizes", type=_csv_ints,
                        default=[1_000, 10_000, 50_000],
                        help="block-size axis (blocksize grid)")
    parser.add_argument("--waits", type=_csv_floats, default=[0.5, 2.0],
                        help="wait-window axis (waiting grid)")
    parser.add_argument("--rounds", type=int, default=0,
                        help="rounds per point (0 = grid default)")
    parser.add_argument("--population", default="full",
                        choices=["full", "aggregated"],
                        help="latency grid: agent representation "
                             "(aggregated = stake pool + materialized "
                             "sortition winners; reaches 10k+ users)")
    parser.add_argument("--core", type=int, default=16,
                        help="aggregated population: always-on agents")
    parser.add_argument("--steps-ahead", type=int, default=4,
                        dest="steps_ahead",
                        help="aggregated population: BinaryBA* steps "
                             "covered by the per-round pool pass")
    parser.add_argument("--payload-bytes", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = in-process serial)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point timeout in wall seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="relaunches after a crash/timeout per point")
    parser.add_argument("--checkpoint", default=None,
                        help="JSONL checkpoint; finished points are "
                             "skipped on resume")
    parser.add_argument("--out", default=None,
                        help="write the merged JSON artifact here "
                             "(default: stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    args = parser.parse_args(argv)

    specs = build_grid(args)
    if not specs:
        print("empty grid", file=sys.stderr)
        return 2

    def progress(outcome: PointOutcome, total: int) -> None:
        status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
        origin = " [checkpoint]" if outcome.resumed else ""
        print(f"[{outcome.index + 1:>3}/{total}] "
              f"{outcome.spec.kind} seed={outcome.spec.seed} "
              f"{status} in {outcome.wall_time:.2f}s"
              f"{origin}", file=sys.stderr)

    report: SweepReport = run_sweep(
        specs, jobs=args.jobs, timeout=args.timeout, retries=args.retries,
        checkpoint=args.checkpoint,
        progress=None if args.quiet else progress)

    merged = report.merged_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(merged)
        print(f"wrote {len(report.outcomes)} points "
              f"({len(report.failures)} failed) to {args.out} "
              f"in {report.wall_time:.2f}s with --jobs {args.jobs}",
              file=sys.stderr)
    else:
        sys.stdout.write(merged)
    return 1 if report.failures else 0


# ---------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------


def main(argv: list[str]) -> int:
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    jobs = 1
    if "--jobs" in argv:
        at = argv.index("--jobs")
        try:
            jobs = int(argv[at + 1])
        except (IndexError, ValueError):
            print("--jobs requires an integer argument")
            return 2
        argv = argv[:at] + argv[at + 2:]
    if "--conformance" in argv:
        global _PRINT_CONFORMANCE
        _PRINT_CONFORMANCE = True
        argv = [arg for arg in argv if arg != "--conformance"]
    requested = argv or list(ARTIFACTS)
    unknown = [name for name in requested if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}")
        print(f"available: {', '.join(ARTIFACTS)} "
              f"(plus the 'sweep' subcommand; see "
              f"'python -m repro.experiments sweep --help')")
        return 2
    for name in requested:
        ARTIFACTS[name].run(jobs=jobs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
