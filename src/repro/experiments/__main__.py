"""Regenerate every reproduced figure/table from the command line.

Usage::

    python -m repro.experiments              # everything (~10 min)
    python -m repro.experiments fig5 tab_costs   # a subset

Artifacts: fig3, fig5, fig6, fig7, fig8, tab_throughput, tab_costs,
tab_timeouts, tab_params, obs. Output is printed as ASCII tables; the same
code paths run under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys

from repro.analysis.committee import (
    certificate_forgery_log2,
    check_paper_step_parameters,
    figure3_curve,
    final_step_safety,
)
from repro.baselines.nakamoto import NakamotoConfig, throughput_bytes_per_hour
from repro.common.params import PAPER_PARAMS
from repro.experiments.adversarial import figure8
from repro.experiments.costs import expected_certificate_bytes, measure_costs
from repro.experiments.latency import figure5, figure6, flatness
from repro.experiments.metrics import format_table
from repro.experiments.throughput import (
    figure7,
    paper_scale_projection,
    throughput_table,
)
from repro.experiments.timeouts import measure_priority_gossip, measure_timeouts


def _banner(title: str) -> None:
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def run_fig3() -> None:
    _banner("Figure 3: committee size vs honest fraction (eps = 5e-9)")
    points = figure3_curve([0.78, 0.80, 0.84, 0.88])
    print(format_table(
        ["h", "tau", "T"],
        [[f"{p.honest_fraction:.0%}", p.committee_size,
          f"{p.threshold:.3f}"] for p in points]))
    print(f"paper's starred point: tau=2000, T=0.685 at h=80% "
          f"(violation {check_paper_step_parameters():.1e})")


def run_fig5() -> None:
    _banner("Figure 5: round latency vs #users (simulated seconds)")
    points = figure5([30, 60, 120], seed=100, payload_bytes=40_000)
    print(format_table(
        ["users", "min", "p25", "median", "p75", "max"],
        [[p.num_users] + list(p.summary.row().values()) for p in points]))
    print(f"flatness (max/min median): {flatness(points):.2f} "
          f"(paper: near-constant)")


def run_fig6() -> None:
    _banner("Figure 6: latency under 10x bandwidth contention")
    points = figure6([60, 120], seed=200)
    print(format_table(
        ["users", "min", "p25", "median", "p75", "max"],
        [[p.num_users] + list(p.summary.row().values()) for p in points]))
    print(f"flatness: {flatness(points):.2f}")


def run_fig7() -> None:
    _banner("Figure 7: round segments vs block size")
    points = figure7([1_000, 50_000, 200_000], seed=300, num_users=30)
    print(format_table(
        ["block B", "proposal", "BA*", "final", "total"],
        [[p.block_size, f"{p.proposal_time:.2f}", f"{p.ba_time:.2f}",
          f"{p.final_step_time:.2f}", f"{p.total:.2f}"] for p in points]))


def run_fig8() -> None:
    _banner("Figure 8: latency vs fraction of malicious users")
    points = figure8([0.0, 0.10, 0.20], num_users=20, seed=700)
    print(format_table(
        ["malicious", "min", "median", "max", "agreed", "empty rounds"],
        [[f"{p.malicious_fraction:.0%}", p.summary.row()["min"],
          p.summary.row()["median"], p.summary.row()["max"], p.agreed,
          p.empty_rounds] for p in points]))


def run_tab_throughput() -> None:
    _banner("Section 10.2: throughput vs Bitcoin")
    points = figure7([50_000, 200_000], seed=400, num_users=30)
    rows = throughput_table(points)
    print(format_table(
        ["system", "block B", "round s", "MB/hour", "vs bitcoin"],
        [[r.system, r.block_size, f"{r.round_time:.1f}",
          f"{r.bytes_per_hour / 1e6:.1f}", f"{r.ratio_vs_bitcoin:.1f}x"]
         for r in rows]))
    projection = paper_scale_projection()
    bitcoin = throughput_bytes_per_hour(NakamotoConfig())
    print(f"paper-scale projection (10 MB blocks): "
          f"{projection / 1e6:.0f} MB/h = {projection / bitcoin:.0f}x "
          f"Bitcoin (paper: ~750 MB/h, 125x)")


def run_tab_costs() -> None:
    _banner("Section 10.3: per-user costs")
    report = measure_costs(40, rounds=3, seed=500, payload_bytes=40_000)
    print(format_table(["metric", "measured"], [
        ["bandwidth / user",
         f"{report.mean_bandwidth_bits_per_sec / 1e6:.2f} Mbit/s"],
        ["certificate", f"{report.certificate_bytes / 1e3:.1f} KB "
                        f"({report.certificate_votes:.0f} votes)"],
        ["certificate overhead", f"{report.certificate_overhead:.0%}"],
        ["storage/round (10 shards)",
         f"{report.storage_per_round_sharded_10 / 1e3:.1f} KB"],
    ]))
    print(f"paper-scale certificate (tau=2000): "
          f"{expected_certificate_bytes(PAPER_PARAMS) / 1e3:.0f} KB "
          f"(paper: ~300 KB)")


def run_tab_timeouts() -> None:
    _banner("Section 10.5: timeout validation")
    report = measure_timeouts(40, rounds=3, seed=800)
    print(format_table(["quantity", "measured", "budget"], [
        ["BA* step p99", f"{report.step_p99:.2f} s",
         f"{report.lambda_step:.0f} s"],
        ["BA* completion IQR", f"{report.ba_iqr:.2f} s",
         f"{report.lambda_stepvar:.0f} s"],
        ["block obtained p99", f"{report.proposal_p99:.2f} s",
         f"{report.lambda_block_budget:.0f} s"],
    ]))
    print(f"priority gossip to 60 users: "
          f"{measure_priority_gossip(60, seed=801):.2f} s "
          f"(budget 5 s; paper measures ~1 s)")


def run_tab_params() -> None:
    _banner("Figure 4: implementation parameters")
    p = PAPER_PARAMS
    print(format_table(["parameter", "value"], [
        ["h", f"{p.honest_fraction:.0%}"],
        ["R", p.seed_refresh_interval],
        ["tau_proposer / tau_step / tau_final",
         f"{p.tau_proposer} / {p.tau_step} / {p.tau_final}"],
        ["T_step / T_final", f"{p.t_step} / {p.t_final}"],
        ["MaxSteps", p.max_steps],
        ["lambdas (priority/block/step/stepvar)",
         f"{p.lambda_priority:.0f} / {p.lambda_block:.0f} / "
         f"{p.lambda_step:.0f} / {p.lambda_stepvar:.0f} s"],
    ]))
    print(f"final-step violation: {final_step_safety():.1e}; "
          f"certificate forgery: 2^{certificate_forgery_log2():.0f}")


def run_tab_related() -> None:
    _banner("Sections 1-2: double-spend wait and related systems")
    from repro.baselines.doublespend import speedup_table
    from repro.baselines.related import comparison_rows
    print(format_table(
        ["attacker q", "blocks", "bitcoin wait", "speedup"],
        [[f"{row['q']:.0%}", row["z"],
          f"{row['bitcoin_wait_s'] / 60:.0f} min",
          f"{row['speedup']:.0f}x"] for row in speedup_table()]))
    print(format_table(
        ["system", "latency", "open", "fork-free", "adaptive-adv"],
        [[p.name, f"{p.latency_seconds:.0f} s", p.decentralized,
          not p.forks_possible, p.adaptive_adversary]
         for p in comparison_rows()]))


def run_tab_waiting() -> None:
    _banner("Section 6: proposal-wait trade-off")
    from repro.experiments.waiting import waiting_tradeoff
    points = waiting_tradeoff([0.02, 0.5, 2.0], seed=10)
    print(format_table(
        ["wait", "empty rounds", "median latency"],
        [[f"{p.wait_seconds:.2f} s", f"{p.empty_fraction:.0%}",
          f"{p.median_latency:.2f} s"] for p in points]))


def run_obs() -> None:
    _banner("Observability: traced 2-round deployment + report")
    from repro.experiments.harness import Simulation, SimulationConfig
    from repro.obs import TraceBus
    from repro.obs.report import render_report

    bus = TraceBus()
    sim = Simulation(SimulationConfig(num_users=12, seed=42), obs=bus)
    sim.submit_payments(24)
    sim.run_rounds(2)
    print(render_report(bus.events, bus.snapshot()))
    summary = sim.summary()
    cache = summary["verification_cache"]
    print(f"\nharness summary: {summary['events_processed']:,} events "
          f"({summary['immediates_processed']:,} immediate), "
          f"{summary['messages_delivered']:,} messages delivered")
    print(f"verification cache: {cache['hits']:,} hits / "
          f"{cache['misses']:,} misses "
          f"(hit rate {cache['hit_rate']:.3f}, "
          f"{cache['negative_hits']} negative); "
          f"router unknown-kind drops: {summary['router_unknown_kinds']}")


def run_tab_scalability() -> None:
    _banner("Section 8.4 topology + section 7 step counts")
    from repro.analysis.graph import diameter_scaling
    from repro.analysis.steps import (
        COMMON_CASE_STEPS,
        expected_total_steps_worst_case,
    )
    print(format_table(
        ["users", "giant component", "diameter"],
        [[r.num_nodes, f"{r.giant_component_fraction:.3f}", r.diameter]
         for r in diameter_scaling([50, 400, 3200])]))
    print(f"BA* steps: {COMMON_CASE_STEPS} common case, "
          f"{expected_total_steps_worst_case():.0f} expected worst case "
          f"(paper: 4 and 13)")


ARTIFACTS = {
    "fig3": run_fig3,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "tab_throughput": run_tab_throughput,
    "tab_costs": run_tab_costs,
    "tab_timeouts": run_tab_timeouts,
    "tab_params": run_tab_params,
    "tab_related": run_tab_related,
    "tab_waiting": run_tab_waiting,
    "tab_scalability": run_tab_scalability,
    "obs": run_obs,
}


def main(argv: list[str]) -> int:
    requested = argv or list(ARTIFACTS)
    unknown = [name for name in requested if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}")
        print(f"available: {', '.join(ARTIFACTS)}")
        return 2
    for name in requested:
        ARTIFACTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
