"""Statistical helpers shared by the figure/table runners."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import NoSamplesError


@dataclass(frozen=True)
class LatencySummary:
    """The five-number summary the paper's latency graphs plot
    (min / 25th / median / 75th / max across users)."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            raise NoSamplesError("cannot summarize an empty sample set")
        data = np.asarray(samples, dtype=float)
        return cls(
            minimum=float(data.min()),
            p25=float(np.percentile(data, 25)),
            median=float(np.percentile(data, 50)),
            p75=float(np.percentile(data, 75)),
            maximum=float(data.max()),
            mean=float(data.mean()),
            count=len(samples),
        )

    @classmethod
    def empty(cls) -> "LatencySummary":
        """Placeholder for a measurement point that produced no samples
        (e.g. every round went empty under a heavy adversary). NaN values
        render as ``nan`` in tables instead of aborting the sweep."""
        nan = math.nan
        return cls(minimum=nan, p25=nan, median=nan, p75=nan,
                   maximum=nan, mean=nan, count=0)

    def row(self) -> dict[str, float]:
        return {
            "min": round(self.minimum, 2),
            "p25": round(self.p25, 2),
            "median": round(self.median, 2),
            "p75": round(self.p75, 2),
            "max": round(self.maximum, 2),
        }


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Fixed-width ASCII table (benchmarks print these next to the
    paper's numbers)."""
    columns = [[str(h)] + [str(row[i]) for row in rows]
               for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)
