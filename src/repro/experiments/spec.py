"""The unified experiment-point API.

The paper's evaluation (section 10) is a *grid of sweeps* — latency vs.
user count (Fig. 5), contention (Fig. 6), block size (Fig. 7), malicious
fraction (Fig. 8), proposal-wait window (section 6) — and every point of
every grid used to be run through a differently-shaped ``run_*_point``
function. This module replaces those four ad-hoc signatures with one
contract:

* an :class:`ExperimentSpec` — a **frozen, picklable, JSON-serializable**
  dataclass that completely determines one measurement point (including
  its seed, so a spec is also a reproducibility token);
* ``run_point(spec) -> PointResult`` — the single dispatcher that
  validates the spec, runs the deployment, and wraps the typed point
  next to the spec that produced it.

Because specs are picklable and self-contained, the sweep engine
(:mod:`repro.experiments.sweep`) can ship them to shared-nothing worker
processes and merge results deterministically; because they serialize to
canonical JSON, finished points can be checkpointed and resumed.

The legacy ``run_latency_point`` / ``run_adversarial_point`` /
``run_block_size_point`` / ``run_waiting_point`` entry points survive as
thin keyword-compatible wrappers that emit :class:`DeprecationWarning`
and forward here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Callable, ClassVar

from repro.common.errors import SpecError
from repro.common.params import ProtocolParams

#: Spec kind -> spec class. Populated by :func:`register_spec`.
SPEC_KINDS: dict[str, type["ExperimentSpec"]] = {}

#: Spec kind -> measurement function (spec -> typed point dataclass).
#: Populated by :func:`register_runner` in the per-figure modules.
_RUNNERS: dict[str, Callable[["ExperimentSpec"], Any]] = {}


def register_spec(cls: type["ExperimentSpec"]) -> type["ExperimentSpec"]:
    """Class decorator: make ``cls`` discoverable by ``kind`` string."""
    if not cls.kind:
        raise SpecError(f"{cls.__name__} must define a non-empty kind")
    SPEC_KINDS[cls.kind] = cls
    return cls


def register_runner(kind: str) -> Callable:
    """Decorator: bind the measurement function for one spec kind."""
    def bind(function: Callable) -> Callable:
        _RUNNERS[kind] = function
        return function
    return bind


def _ensure_runners() -> None:
    """Import the per-figure modules so their runners self-register.

    Lazy to break the cycle: ``latency.py`` et al. import this module
    for the spec classes, so this module cannot import them at load
    time.
    """
    if len(_RUNNERS) >= len(SPEC_KINDS) and SPEC_KINDS:
        return
    from repro.experiments import (  # noqa: F401
        adversarial,
        latency,
        throughput,
        traffic,
        waiting,
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """Base class: one fully-specified measurement point.

    Subclasses add the per-figure axes; the base carries what every
    deployment needs. All fields have defaults so subclasses can append
    fields freely, and everything is plain data so instances pickle
    across process boundaries and round-trip through JSON.
    """

    #: Registry tag; each concrete subclass sets a unique string.
    kind: ClassVar[str] = ""

    seed: int = 0
    params: ProtocolParams | None = None

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`~repro.common.errors.SpecError` on bad values."""
        if self.seed < 0:
            raise SpecError(f"seed must be >= 0, got {self.seed}")
        self._validate()

    def _validate(self) -> None:
        """Subclass hook; base :meth:`validate` already ran."""

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict:
        """Plain-dict form: ``{"kind": ..., <fields>}``, params nested."""
        record: dict[str, Any] = {"kind": self.kind}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, ProtocolParams):
                value = dataclasses.asdict(value)
            record[spec_field.name] = value
        return record

    def canonical_json(self) -> str:
        """Deterministic one-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """Stable identity of this point, used as the checkpoint key."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- execution -----------------------------------------------------

    def run(self) -> Any:
        """Validate, then run this point; returns the typed point."""
        self.validate()
        _ensure_runners()
        try:
            runner = _RUNNERS[self.kind]
        except KeyError:
            raise SpecError(
                f"no runner registered for spec kind {self.kind!r} "
                f"(known: {sorted(_RUNNERS)})") from None
        return runner(self)


def spec_from_json(record: dict) -> ExperimentSpec:
    """Rebuild a spec from :meth:`ExperimentSpec.to_json` output."""
    _ensure_runners()  # importing the figure modules registers the kinds
    data = dict(record)
    try:
        kind = data.pop("kind")
    except KeyError:
        raise SpecError("spec record lacks a 'kind' field") from None
    try:
        cls = SPEC_KINDS[kind]
    except KeyError:
        raise SpecError(
            f"unknown spec kind {kind!r} (known: {sorted(SPEC_KINDS)})"
        ) from None
    known = {spec_field.name for spec_field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(
            f"unknown field(s) {sorted(unknown)} for spec kind {kind!r}")
    params = data.get("params")
    if isinstance(params, dict):
        data["params"] = ProtocolParams(**params)
    return cls(**data)


# ---------------------------------------------------------------------
# Concrete spec family (one subclass per paper sweep axis)
# ---------------------------------------------------------------------


@register_spec
@dataclass(frozen=True)
class LatencySpec(ExperimentSpec):
    """One Figure 5/6 point: round-completion latency at a population."""

    kind: ClassVar[str] = "latency"

    num_users: int = 20
    rounds: int = 2
    payload_bytes: int = 0
    bandwidth_bps: float | None = 20e6
    measure_round: int = 2
    #: "full" or "aggregated" — see SimulationConfig.population. The
    #: aggregated stake pool is what lets the latency axis reach the
    #: paper's population scales (Figure 5) on one machine.
    population: str = "full"
    always_on_core: int = 16
    steps_ahead: int = 4

    def _validate(self) -> None:
        if self.num_users < 1:
            raise SpecError(f"num_users must be >= 1, got {self.num_users}")
        if self.population not in ("full", "aggregated"):
            raise SpecError(
                f"population must be 'full' or 'aggregated', "
                f"got {self.population!r}")
        if self.always_on_core < 1:
            raise SpecError(
                f"always_on_core must be >= 1, got {self.always_on_core}")
        if self.steps_ahead < 1:
            raise SpecError(
                f"steps_ahead must be >= 1, got {self.steps_ahead}")
        if self.rounds < 1:
            raise SpecError(f"rounds must be >= 1, got {self.rounds}")
        if not 1 <= self.measure_round <= self.rounds:
            raise SpecError(
                f"measure_round ({self.measure_round}) must be in "
                f"[1, rounds={self.rounds}]")
        if self.payload_bytes < 0:
            raise SpecError("payload_bytes must be >= 0")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise SpecError("bandwidth_bps must be positive or None")


@register_spec
@dataclass(frozen=True)
class AdversarialSpec(ExperimentSpec):
    """One Figure 8 point: honest latency under malicious stake."""

    kind: ClassVar[str] = "adversarial"

    fraction: float = 0.0
    num_users: int = 20
    rounds: int = 2

    def _validate(self) -> None:
        if not 0 <= self.fraction < 0.34:
            raise SpecError(
                f"malicious fraction must be in [0, 1/3), "
                f"got {self.fraction}")
        if self.num_users < 2:
            raise SpecError(f"num_users must be >= 2, got {self.num_users}")
        if self.rounds < 1:
            raise SpecError(f"rounds must be >= 1, got {self.rounds}")


@register_spec
@dataclass(frozen=True)
class BlockSizeSpec(ExperimentSpec):
    """One Figure 7 bar: round-segment breakdown at a block size."""

    kind: ClassVar[str] = "block_size"

    block_size: int = 10_000
    num_users: int = 40
    bandwidth_bps: float = 5e6

    def _validate(self) -> None:
        if self.block_size < 1:
            raise SpecError(
                f"block_size must be >= 1, got {self.block_size}")
        if self.num_users < 2:
            raise SpecError(f"num_users must be >= 2, got {self.num_users}")
        if self.bandwidth_bps <= 0:
            raise SpecError("bandwidth_bps must be positive")


@register_spec
@dataclass(frozen=True)
class WaitingSpec(ExperimentSpec):
    """One section 6 point: proposal-wait window vs what it buys."""

    kind: ClassVar[str] = "waiting"

    wait_seconds: float = 1.0
    num_users: int = 20
    rounds: int = 3

    def _validate(self) -> None:
        if self.wait_seconds <= 0:
            raise SpecError(
                f"wait_seconds must be positive, got {self.wait_seconds}")
        if self.num_users < 2:
            raise SpecError(f"num_users must be >= 2, got {self.num_users}")
        if self.rounds < 1:
            raise SpecError(f"rounds must be >= 1, got {self.rounds}")


@register_spec
@dataclass(frozen=True)
class TrafficSpec(ExperimentSpec):
    """One traffic-census deployment: a stake shape, damped or not.

    The runner (:mod:`repro.experiments.traffic`) measures per-round
    gossip counters next to the closed-form committee-traffic model;
    ``params=None`` selects the census deployment
    (:data:`~repro.experiments.traffic.CENSUS_PARAMS`).
    """

    kind: ClassVar[str] = "traffic"

    stake_shape: str = "uniform"
    num_users: int = 40
    rounds: int = 2
    relay_damping: bool = True

    def _validate(self) -> None:
        if self.stake_shape not in ("uniform", "whale", "midtier"):
            raise SpecError(
                f"stake_shape must be uniform, whale or midtier, "
                f"got {self.stake_shape!r}")
        if self.num_users < 2:
            raise SpecError(f"num_users must be >= 2, got {self.num_users}")
        if self.rounds < 1:
            raise SpecError(f"rounds must be >= 1, got {self.rounds}")


# ---------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Recursively convert a typed point into JSON-safe plain data.

    ``NaN`` (from :meth:`LatencySummary.empty`) is mapped to ``None`` so
    the payload is *strict* JSON — byte-identical across writers and
    readable by non-Python tools.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, float):
        return None if math.isnan(value) else value
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class PointResult:
    """What ``run_point`` hands back: the spec and its measurement."""

    spec: ExperimentSpec
    point: Any  # the per-kind typed dataclass (LatencyPoint, ...)

    def data(self) -> dict:
        """The measurement as JSON-safe plain data."""
        return _jsonable(self.point)

    def to_json(self) -> dict:
        return {"spec": self.spec.to_json(), "result": self.data()}


def run_point(spec: ExperimentSpec) -> PointResult:
    """The one entry point: validate + run one experiment spec."""
    return PointResult(spec=spec, point=spec.run())


def run_point_json(spec_record: dict) -> dict:
    """JSON-in/JSON-out variant used by sweep worker processes."""
    return run_point(spec_from_json(spec_record)).to_json()
