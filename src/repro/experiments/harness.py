"""Simulation harness: build and run whole Algorand deployments.

One :class:`Simulation` owns an event loop, a gossip network, and ``n``
nodes sharing a genesis; experiments configure it through
:class:`SimulationConfig` (see :mod:`repro.experiments.config` for the
nested groups) and read results from node metrics and the network's
cost counters. Everything is deterministic in ``config.seed``.

The harness is the *sim-substrate* runner: one process, virtual time.
Its live-substrate twin is :class:`repro.live.cluster.LiveCluster`;
:func:`repro.experiments.config.deploy` picks between them by config.
"""

from __future__ import annotations

import numpy as np

from repro.common.encoding import encode
from repro.common.errors import ConfigError, LatencyModelError
from repro.crypto.backend import CachedBackend, CryptoBackend, FastBackend
from repro.crypto.hashing import H
from repro.ledger.blockchain import Blockchain
from repro.ledger.transaction import make_transaction
from repro.network.gossip import GossipNetwork
from repro.network.latency import LatencyModel, UniformLatencyModel
from repro.conformance.monitor import ConformanceMonitor
from repro.experiments.config import (  # noqa: F401  (re-exported API)
    NetworkConfig,
    PopulationConfig,
    RuntimeConfig,
    SimulationConfig,
    SubstrateConfig,
    deploy,
)
from repro.node.agent import Node
from repro.node.population import Population
from repro.node.registry import BlockRegistry
from repro.obs.bus import TraceBus
from repro.runtime.admission import (
    AdmissionConfig,
    BatchVerifier,
    QuarantineDirectory,
    attach_admission,
)
from repro.runtime.cache import VerificationCache
from repro.runtime.damping import attach_damping
from repro.sim.loop import Environment
from repro.sortition.selection import SELECTION_STATS
from repro.substrate.sim import SimSubstrate


class Simulation:
    """A fully wired deployment: env + network + nodes."""

    def __init__(self, config: SimulationConfig,
                 backend: CryptoBackend | None = None,
                 node_class: type[Node] = Node,
                 malicious_class: type[Node] | None = None,
                 obs: TraceBus | None = None) -> None:
        config.validate()
        self.config = config
        self.env = Environment()
        #: Optional trace bus (see :mod:`repro.obs`). When supplied, its
        #: clock is bound to this simulation's virtual time, every layer
        #: (network, nodes, BA*, router) records into it, and
        #: :meth:`summary` embeds its registry snapshot. ``None`` (the
        #: default) leaves all instrumentation as dormant no-op guards.
        self.obs = obs
        if obs is not None:
            obs.bind_clock(lambda: self.env.now)
            obs.add_harvester(self._harvest_obs)
        #: Online reference-machine checker (:mod:`repro.conformance`);
        #: ``None`` when conformance is off for this run.
        self.conformance: ConformanceMonitor | None = None
        want_conformance = (config.conformance
                            if isinstance(config.conformance, bool)
                            else obs is not None)
        if want_conformance:
            if obs is None:
                # conformance=True without a caller bus: instrument the
                # stack through a private bus that stores no events
                # (max_events=0) — the monitor sees the stream, memory
                # does not grow, and chains are unaffected.
                obs = TraceBus(max_events=0)
                obs.bind_clock(lambda: self.env.now)
                obs.add_harvester(self._harvest_obs)
                self.obs = obs
            self.conformance = ConformanceMonitor(registry=obs.metrics)
            obs.add_sink(self.conformance)
        self._selection_baseline = SELECTION_STATS.as_dict()
        # Captured at the end of each run_rounds: the process-global
        # sortition tallies keep growing across simulations, so the
        # per-run delta must be frozen while this sim is the only one
        # that has touched them (snapshot determinism depends on it).
        self._selection_delta = SELECTION_STATS.delta_since(
            self._selection_baseline)
        inner_backend = backend if backend is not None else FastBackend()
        if config.use_verification_cache:
            # Wrap outermost: a cache hit never reaches an inner
            # CountingBackend's tally, only its cache_hits mirror.
            self.verification_cache: VerificationCache | None = (
                VerificationCache(counts=getattr(inner_backend, "counts",
                                                 None)))
            self.backend = CachedBackend(inner_backend,
                                         self.verification_cache)
        else:
            self.verification_cache = None
            self.backend = inner_backend
        self.rng = np.random.default_rng(config.seed)
        self.genesis_seed = H(b"genesis", encode(config.seed))
        self.registry = BlockRegistry()

        total_nodes = config.num_users + config.num_observers
        if config.latency_model == "city":
            latency = LatencyModel(total_nodes, self.rng)
        elif config.latency_model == "uniform":
            latency = UniformLatencyModel(config.uniform_latency)
        else:  # unreachable after validate(); guard for direct callers
            raise LatencyModelError(
                f"unknown latency model {config.latency_model}")
        admission_cfg = ((config.admission or AdmissionConfig())
                         if config.use_admission else None)
        aggregated = config.population.mode == "aggregated"
        core_size = min(config.population.always_on_core, config.num_users)
        # When the core covers everyone there is no dormant stake; the
        # classic (active=None) construction path keeps the aggregated
        # deployment on the exact same RNG/event sequence as "full" —
        # the basis of the byte-identical equivalence suite.
        dormant = aggregated and core_size < config.num_users
        self.network = GossipNetwork(
            self.env, total_nodes, self.rng, latency,
            peers_per_node=config.peers_per_node,
            bandwidth_bps=config.bandwidth_bps,
            seen_horizon_rounds=config.seen_horizon_rounds,
            lane_budget_msgs=(admission_cfg.egress_lane_budget
                              if admission_cfg is not None else None),
            obs=obs,
            active_indices=list(range(core_size)) if dormant else None,
        )
        #: Per-node execution context: the explicit
        #: :class:`repro.substrate.Substrate` pairing of this run's
        #: virtual clock with each node's gossip interface. Purely
        #: descriptive for the sim substrate (no behavior change);
        #: :class:`~repro.live.cluster.LiveCluster` builds the live
        #: equivalent per process.
        self.substrates = [
            SimSubstrate(clock=self.env, transport=interface)
            for interface in self.network.interfaces
        ]

        # Observers get keys but zero stake (appended after the users).
        balances = config.make_balances() + [0] * config.num_observers
        self.keypairs = [
            self.backend.keypair(H(b"user-key", encode([config.seed, i])))
            for i in range(total_nodes)
        ]
        initial_balances = {
            kp.public: balance
            for kp, balance in zip(self.keypairs, balances)
            if balance > 0
        }
        if config.num_malicious and malicious_class is None:
            raise ConfigError(
                "num_malicious > 0 requires a malicious_class")
        first_malicious = config.num_users - config.num_malicious

        #: Network-wide quarantine state (None when admission is off).
        self.quarantine_directory: QuarantineDirectory | None = None
        attach: "callable | None" = None
        if admission_cfg is not None or config.relay_damping:
            index_of = {kp.public: i
                        for i, kp in enumerate(self.keypairs)}
            if admission_cfg is not None:
                self.quarantine_directory = QuarantineDirectory(
                    self.network, admission_cfg, obs=obs)

            def attach(node: Node) -> None:
                if admission_cfg is not None:
                    attach_admission(node, admission_cfg,
                                     directory=self.quarantine_directory,
                                     index_of=index_of)
                if config.relay_damping:
                    attach_damping(node)

        if config.batch_verify_enabled():
            # The verifier primes with the *inner* backend: a cache miss
            # must do real work exactly once, not recurse into the
            # CachedBackend wrapper it is warming.
            self.batch_verifier: BatchVerifier | None = BatchVerifier(
                inner_backend, self.verification_cache)
            self.network.batch_verifier = self.batch_verifier
        else:
            self.batch_verifier = None

        def on_commit(round_number: int) -> None:
            self.network.end_round()
            if self.quarantine_directory is not None:
                self.quarantine_directory.end_round(round_number)
            if config.reshuffle_peers_each_round:
                self.network.reshuffle_peers()

        #: Aggregated stake pool (None in classic full-agent mode).
        self.population: Population | None = None
        if aggregated:
            self.population = Population(
                env=self.env, backend=self.backend, params=config.params,
                network=self.network, registry=self.registry,
                keypairs=self.keypairs, balances=balances,
                genesis_seed=self.genesis_seed, core_size=core_size,
                steps_ahead=config.steps_ahead, node_class=node_class,
                obs=obs, attach_admission=attach, round_hook=on_commit,
            )
            #: In aggregated mode ``nodes`` is the always-on core; the
            #: per-round transients live in ``population.live``.
            self.nodes: list[Node] = list(self.population.core_nodes)
        else:
            self.nodes = []
            for i in range(total_nodes):
                chain = Blockchain(initial_balances, self.genesis_seed,
                                   config.params.seed_refresh_interval)
                is_malicious = first_malicious <= i < config.num_users
                cls = malicious_class if is_malicious else node_class
                node = cls(
                    index=i, env=self.env, keypair=self.keypairs[i],
                    backend=self.backend, params=config.params,
                    chain=chain, interface=self.network.interfaces[i],
                    registry=self.registry, obs=obs,
                )
                self.nodes.append(node)
            if attach is not None:
                for node in self.nodes:
                    attach(node)
            self.nodes[0].on_commit = on_commit

    @property
    def observers(self) -> list[Node]:
        """The zero-stake passive participants (may be empty)."""
        if self.config.num_observers == 0:
            return []
        return self.nodes[-self.config.num_observers:]

    # ------------------------------------------------------------------

    def submit_payments(self, count: int, note_bytes: int = 0) -> None:
        """Inject ``count`` random valid payments at round start.

        Senders are drawn round-robin so nonces stay sequential; each
        payment is gossiped from its sender's node.
        """
        nonces: dict[int, int] = {}
        # Observers neither pay nor earn; in aggregated mode payments
        # circulate among the always-on core (the only agents guaranteed
        # live to sign and gossip at injection time — dormant stake
        # still votes with its balance, it just doesn't transact).
        weighted = (len(self.nodes) if self.population is not None
                    else self.config.num_users)
        if weighted < 2:
            return  # a lone user has nobody to pay (no self-payments)
        for k in range(count):
            sender_index = k % weighted
            sender = self.nodes[sender_index]
            balance = sender.chain.state.balance(sender.keypair.public)
            if balance < 1:
                continue
            recipient_index = int(self.rng.integers(weighted - 1))
            if recipient_index >= sender_index:
                recipient_index += 1
            nonce = nonces.get(sender_index,
                               sender.mempool.next_nonce_for(
                                   sender.chain.state,
                                   sender.keypair.public))
            tx = make_transaction(
                self.backend, sender.keypair.secret, sender.keypair.public,
                self.nodes[recipient_index].keypair.public, 1, nonce,
                note=bytes(note_bytes),
            )
            nonces[sender_index] = nonce + 1
            sender.submit_transaction(tx)

    def run_rounds(self, rounds: int, time_limit: float | None = None,
                   max_events: int | None = None) -> None:
        """Start every node and run until all reach ``rounds`` blocks.

        Aggregated mode starts (and awaits) the always-on core; the
        population materializes and retires transient winners on its
        own at round boundaries.
        """
        if self.population is not None:
            processes = self.population.start(rounds)
        else:
            processes = [node.start(rounds) for node in self.nodes]
        # O(1) stop check: scanning every process per event dominated the
        # loop at hundreds of nodes. Done-callbacks fire synchronously
        # inside the finishing event, so the counter is always current.
        pending = len(processes)

        def note_done(_process: object) -> None:
            nonlocal pending
            pending -= 1

        for process in processes:
            process.add_done_callback(note_done)
        limit = time_limit
        if limit is None:
            # Generous per-round ceiling; hitting it is a test failure,
            # not silent truncation.
            per_round = (self.config.params.lambda_block
                         + self.config.params.lambda_step
                         * self.config.params.max_steps)
            limit = per_round * (rounds + 1)
        self.env.run(until=limit, max_events=max_events,
                     stop_when=lambda: pending == 0)
        self._selection_delta = SELECTION_STATS.delta_since(
            self._selection_baseline)
        if self.population is not None:
            # A round that runs deeper than steps_ahead has dormant
            # later-step committees; the core then exhausts MaxSteps and
            # halts. Surface that loudly instead of returning a short
            # chain (full mode keeps its silent-halt semantics — the
            # weak-synchrony and recovery suites depend on them).
            stalled = [node.index for node in self.nodes
                       if node.halted and node.chain.height < rounds]
            if stalled:
                raise TimeoutError(
                    f"aggregated run stalled: core nodes {stalled[:5]} "
                    f"halted below round {rounds} — a round ran deeper "
                    f"than steps_ahead={self.config.steps_ahead}, whose "
                    f"later committees are dormant; raise steps_ahead "
                    f"(or the committee sizes) and rerun")
        unfinished = [node.index for node, process in zip(self.nodes,
                                                          processes)
                      if not process.done]
        if unfinished:
            ellipsis = "..." if len(unfinished) > 5 else ""
            raise TimeoutError(
                f"nodes {unfinished[:5]}{ellipsis} did not finish {rounds} "
                f"rounds by t={limit}"
            )

    # ------------------------------------------------------------------
    # Result accessors
    # ------------------------------------------------------------------

    def round_latencies(self, round_number: int) -> list[float]:
        """Per-node completion time of ``round_number`` (seconds)."""
        latencies = []
        for node in self.nodes:
            record = node.metrics.round_record(round_number)
            if record is not None:
                latencies.append(record.duration)
        return latencies

    def agreed_hashes(self, round_number: int) -> set[bytes]:
        """Distinct block hashes committed at ``round_number`` (safety: 1)."""
        return {
            node.chain.block_at(round_number).block_hash
            for node in self.nodes
            if node.chain.height >= round_number
        }

    def all_chains_equal(self) -> bool:
        reference = self.nodes[0].chain
        return all(
            node.chain.height == reference.height
            and node.chain.tip_hash == reference.tip_hash
            for node in self.nodes
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _harvest_obs(self, bus: TraceBus) -> None:
        """Pull the lazy runtime counters into the obs registry.

        Hot components (event loop, verification cache, routers) keep
        plain instance counters; this harvester copies them into the
        bus's registry so snapshots/JSONL traces carry them without the
        hot paths ever touching the registry.
        """
        metrics = bus.metrics
        env = self.env
        metrics.set_gauge("simloop.events_processed", env.events_processed)
        metrics.set_gauge("simloop.immediates_processed",
                          env.immediates_processed)
        metrics.set_gauge("simloop.batch_walks", env.batch_walks)
        metrics.set_gauge("simloop.batch_deliveries", env.batch_deliveries)
        metrics.set_gauge("simloop.now", env.now)
        metrics.set_gauge("network.messages_delivered",
                          self.network.messages_delivered)
        metrics.set_gauge("network.total_bytes_sent",
                          self.network.total_bytes_sent)
        if self.verification_cache is not None:
            cache = self.verification_cache
            metrics.set_counter("cache.hits", cache.hits)
            metrics.set_counter("cache.misses", cache.misses)
            metrics.set_counter("cache.negative_hits", cache.negative_hits)
            metrics.set_counter("cache.batch_primed", cache.batch_primed)
            metrics.set_gauge("cache.entries", len(cache))
        if self.population is not None:
            for name, value in self.population.stats().items():
                metrics.set_gauge("population." + name, value)
        if self.conformance is not None:
            self.conformance.harvest(metrics)
        metrics.set_counter("router.unknown_kind", sum(
            node.router.unknown_kinds for node in self.nodes))
        for name, value in self._selection_delta.items():
            metrics.set_counter("sortition." + name, value)
        dampers = [node.damper for node in self.nodes
                   if node.damper is not None]
        if dampers:
            # Core/live agents only — the authoritative network-wide
            # count (transients included) is the live "gossip.damped.
            # vote" counter the dampers increment themselves.
            metrics.set_counter("damping.suppressed",
                                sum(d.suppressed for d in dampers))
            metrics.set_counter("damping.observed",
                                sum(d.observed for d in dampers))
        if self.quarantine_directory is not None:
            admissions = [node.admission for node in self.nodes
                          if node.admission is not None]
            metrics.set_counter("admission.admitted", sum(
                admission.admitted for admission in admissions))
            rejected: dict[str, int] = {}
            for admission in admissions:
                for reason, count in admission.rejected.items():
                    rejected[reason] = rejected.get(reason, 0) + count
            for reason, count in sorted(rejected.items()):
                metrics.set_counter("admission.rejected." + reason, count)
            metrics.set_gauge("admission.buffer_high_water", max(
                node.buffer.high_water for node in self.nodes))
            metrics.set_counter("admission.buffer_evicted", sum(
                node.buffer.evicted for node in self.nodes))
            metrics.set_counter("admission.buffer_rejected", sum(
                node.buffer.rejected for node in self.nodes))
            metrics.set_counter("admission.egress_dropped", sum(
                interface.egress_dropped
                for interface in self.network.interfaces))
            metrics.set_gauge("admission.egress_high_water", max(
                interface.egress_high_water
                for interface in self.network.interfaces))
            metrics.set_gauge("admission.quarantined_peers",
                              len(self.quarantine_directory.quarantined))
            metrics.set_counter("admission.quarantines",
                                self.quarantine_directory.quarantines)

    def summary(self) -> dict:
        """One dict with every runtime counter an experiment may report.

        This is where the shared :class:`VerificationCache` hit/miss
        numbers and the routers' unknown-kind drop counts surface —
        previously they were collected but never included in any result.
        When a :class:`TraceBus` is attached, the full registry snapshot
        rides along under ``"obs"``.
        """
        result: dict = {
            "events_processed": self.env.events_processed,
            "immediates_processed": self.env.immediates_processed,
            "batch_walks": self.env.batch_walks,
            "batch_deliveries": self.env.batch_deliveries,
            "simulated_seconds": self.env.now,
            "messages_delivered": self.network.messages_delivered,
            "total_bytes_sent": self.network.total_bytes_sent,
            "router_unknown_kinds": sum(node.router.unknown_kinds
                                        for node in self.nodes),
            "sortition": dict(self._selection_delta),
        }
        if self.verification_cache is not None:
            result["verification_cache"] = self.verification_cache.stats()
        if self.population is not None:
            result["population"] = self.population.stats()
        if self.batch_verifier is not None:
            result["batch_verify"] = {
                "groups": self.batch_verifier.groups,
                "votes_primed": self.batch_verifier.votes_primed,
            }
        if self.quarantine_directory is not None:
            admissions = [node.admission for node in self.nodes
                          if node.admission is not None]
            rejected: dict[str, int] = {}
            for admission in admissions:
                for reason, count in admission.rejected.items():
                    rejected[reason] = rejected.get(reason, 0) + count
            result["admission"] = {
                "admitted": sum(a.admitted for a in admissions),
                "rejected": rejected,
                "buffer_high_water": max(node.buffer.high_water
                                         for node in self.nodes),
                "buffer_evicted": sum(node.buffer.evicted
                                      for node in self.nodes),
                "egress_dropped": sum(i.egress_dropped
                                      for i in self.network.interfaces),
                "egress_high_water": max(i.egress_high_water
                                         for i in self.network.interfaces),
                "quarantined": sorted(
                    self.quarantine_directory.quarantined),
                "banned": sorted(self.quarantine_directory.banned),
                "quarantines": self.quarantine_directory.quarantines,
            }
        dampers = [node.damper for node in self.nodes
                   if node.damper is not None]
        if dampers:
            result["damping"] = {
                "suppressed": sum(d.suppressed for d in dampers),
                "observed": sum(d.observed for d in dampers),
            }
        if self.conformance is not None:
            verdict = self.conformance.verdict()
            result["conformance"] = {
                "ok": verdict.ok,
                "events_checked": verdict.events_checked,
                "violations": len(verdict.violations),
            }
        if self.obs is not None:
            result["obs"] = self.obs.snapshot()
        return result
