"""Bootstrapping new users (section 8.3).

A joining user downloads the block history with its certificates and
validates everything *in order* starting from the genesis block: the
weights used to check round ``r``'s certificate come from the state after
round ``r - 1``, and the sortition seed comes from the replayed seed
chain. Final blocks are totally ordered, so checking safety needs only
the most recent final certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.baplus.certificate import Certificate, verify_certificate
from repro.baplus.context import BAContext
from repro.common.errors import InvalidCertificate, LedgerError
from repro.common.params import ProtocolParams
from repro.crypto.backend import CryptoBackend
from repro.ledger.block import Block
from repro.ledger.blockchain import Blockchain
from repro.network.message import Envelope
from repro.sortition.seed import fallback_seed, verify_seed

if TYPE_CHECKING:
    from repro.node.agent import Node


def replay_chain(blocks: Iterable[Block],
                 certificates: Mapping[int, Certificate],
                 *, initial_balances: Mapping[bytes, int],
                 genesis_seed: bytes, params: ProtocolParams,
                 backend: CryptoBackend) -> Blockchain:
    """Validate a downloaded history and return the reconstructed chain.

    Args:
        blocks: the chain's blocks for rounds ``1..n``, in order.
        certificates: one certificate per round (at minimum for every
            round being trusted; a missing certificate fails validation).

    Raises:
        InvalidCertificate: if any round's certificate does not verify
            against the replayed context.
        LedgerError: if blocks do not link or transactions do not apply.
    """
    chain = Blockchain(initial_balances, genesis_seed,
                       params.seed_refresh_interval)
    for block in blocks:
        round_number = chain.next_round
        if block.round_number != round_number:
            raise LedgerError(
                f"history out of order: got round {block.round_number}, "
                f"expected {round_number}"
            )
        certificate = certificates.get(round_number)
        if certificate is None:
            raise InvalidCertificate(f"no certificate for round "
                                     f"{round_number}")
        if certificate.value != block.block_hash:
            raise InvalidCertificate(
                f"round {round_number}: certificate certifies a different "
                f"block"
            )
        ctx = BAContext.from_weights(
            chain.selection_seed(round_number),
            chain.state.weights(), chain.tip_hash,
        )
        verify_certificate(certificate, ctx, backend, params)
        chain.append(block, certificate,
                     seed_override=_round_seed(backend, chain, block,
                                               round_number))
    return chain


def _round_seed(backend: CryptoBackend, chain: Blockchain, block: Block,
                round_number: int) -> bytes | None:
    """Seed for the appended round, re-deriving the fallback when needed."""
    previous_seed = chain.seed_of_round(round_number - 1)
    if block.is_empty:
        return fallback_seed(previous_seed, round_number)
    if not verify_seed(backend, block.proposer, block.seed,
                       block.seed_proof, previous_seed, round_number):
        return fallback_seed(previous_seed, round_number)
    return None  # block.seed is valid; Blockchain.append uses it


def verify_final_safety(chain: Blockchain, *, backend: CryptoBackend,
                        params: ProtocolParams) -> int | None:
    """Verify the most recent final certificate on ``chain``.

    Section 8.3: "Since final blocks are totally ordered, users need to
    check the safety of only the most recent block." This helper finds
    the newest round carrying a final certificate, reconstructs that
    round's context from the chain's own snapshots (weights of the
    previous round, the selection seed, the previous tip), verifies the
    certificate, and returns the round number — every block at or before
    it is then final. Returns ``None`` when no final certificate is held.

    Raises:
        InvalidCertificate: if the stored certificate does not verify —
            the chain's finality claim is bogus.
    """
    round_number = chain.latest_final_round()
    if round_number is None:
        return None
    certificate = chain.final_certificate_at(round_number)
    if not isinstance(certificate, Certificate) or not certificate.is_final:
        raise InvalidCertificate("stored final certificate is malformed")
    if certificate.value != chain.block_at(round_number).block_hash:
        raise InvalidCertificate(
            "final certificate certifies a different block")
    ctx = BAContext.from_weights(
        chain.selection_seed(round_number),
        chain.weights_at(round_number - 1),
        chain.block_at(round_number - 1).block_hash,
    )
    verify_certificate(certificate, ctx, backend, params)
    return round_number


@dataclass(frozen=True)
class ChainAnnouncement:
    """A peer's advertised history: blocks plus their certificates."""

    blocks: tuple[Block, ...]  # rounds 1..n, in order
    certificates: Mapping[int, Certificate]

    @property
    def length(self) -> int:
        return len(self.blocks)

    @property
    def size(self) -> int:
        return 200 + sum(block.size for block in self.blocks)


@dataclass(frozen=True)
class ChainRequest:
    """A lagging peer's plea: anyone strictly ahead of ``height``, announce.

    The request/response half of live catch-up: a node that detects it
    has fallen behind (buffered future-round votes, a healed partition,
    a fresh rejoin) floods a ``"chainreq"``; any peer whose chain is
    longer answers with a ``"chain"`` announcement. Requests relay, so
    they reach helpers beyond the requester's direct neighbors on a
    partial mesh.
    """

    height: int

    @property
    def size(self) -> int:
        return 64  # fixed header-sized control message


def build_announcement(chain: Blockchain) -> ChainAnnouncement:
    """Extract a :class:`ChainAnnouncement` from a replica's own chain."""
    certificates: dict[int, Certificate] = {}
    for block in chain.blocks[1:]:
        certificate = chain.certificate_at(block.round_number)
        if isinstance(certificate, Certificate):
            certificates[block.round_number] = certificate
    return ChainAnnouncement(blocks=chain.blocks[1:],
                             certificates=certificates)


class ChainSync:
    """Gossip-driven catch-up: section 8.3 as a routed message handler.

    Registers a ``"chain"`` handler on the node's
    :class:`repro.runtime.MessageRouter`. Peers announce their history
    with :meth:`announce`; a receiver replays any strictly longer
    announcement from genesis (:func:`replay_chain`, certificate checks
    included) and adopts it only if every round validates. Invalid or
    not-longer announcements are not relayed — the validate-before-relay
    rule of section 8.4 applied to bootstrap traffic.
    """

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.adopted = 0
        self.rejected = 0
        node.router.register("chain", self._handle_announcement)

    def announce(self) -> None:
        """Broadcast this node's chain for lagging peers to replay."""
        announcement = build_announcement(self.node.chain)
        self.node.interface.broadcast(Envelope(
            origin=self.node.keypair.public, kind="chain",
            payload=announcement, size=announcement.size,
        ))

    def _handle_announcement(self, announcement: ChainAnnouncement) -> bool:
        node = self.node
        if announcement.length <= node.chain.height:
            # Nothing to learn, but keep the flood alive for lagging
            # peers beyond the announcer's neighborhood — provided the
            # history checks out. Hash chaining makes that cheap: an
            # announced tip equal to our own block at that height means
            # the whole announced prefix is ours.
            return bool(
                announcement.blocks
                and (announcement.blocks[-1].block_hash
                     == node.chain.block_at(announcement.length).block_hash)
            )
        try:
            replayed = replay_chain(
                announcement.blocks, announcement.certificates,
                initial_balances=node.chain.initial_balances,
                genesis_seed=node.chain.genesis_seed,
                params=node.params, backend=node.backend,
            )
        except (InvalidCertificate, LedgerError):
            self.rejected += 1
            return False  # never relay a history that failed validation
        node.chain = replayed
        self.adopted += 1
        return True

    def close(self) -> None:
        self.node.router.unregister("chain")


def resync_from_peers(node: "Node",
                      peers: Iterable["Node"]) -> Blockchain | None:
    """Crash-rejoin catch-up: replay the longest valid peer chain.

    Scans ``peers`` for the longest chain strictly ahead of ``node``'s,
    then replays it from genesis with full certificate verification
    (:func:`replay_chain` via :func:`catch_up_from`) — a rejoining user
    trusts nothing it did not check. Returns the validated replica, or
    ``None`` when no peer is ahead or the best candidate fails
    validation. Designed to be bound as ``node.resync`` (consulted by
    the round loop at round boundaries and after a stalled round).
    """
    best: Blockchain | None = None
    for peer in peers:
        if peer is node or getattr(peer, "crashed", False):
            continue
        chain = peer.chain
        if chain.height > node.chain.height and (
                best is None or chain.height > best.height):
            best = chain
    if best is None:
        return None
    try:
        return catch_up_from(
            best, params=node.params, backend=node.backend,
            initial_balances=node.chain.initial_balances,
            genesis_seed=node.chain.genesis_seed,
        )
    except (InvalidCertificate, LedgerError):
        return None


def catch_up_from(node_chain: Blockchain, *, params: ProtocolParams,
                  backend: CryptoBackend,
                  initial_balances: Mapping[bytes, int],
                  genesis_seed: bytes) -> Blockchain:
    """Bootstrap a fresh replica from another node's chain + certificates.

    Convenience wrapper used in tests and examples: extracts blocks and
    certificates from an existing replica and replays them as a new user
    would.
    """
    blocks = node_chain.blocks[1:]
    certificates = {}
    for block in blocks:
        certificate = node_chain.certificate_at(block.round_number)
        if certificate is not None:
            certificates[block.round_number] = certificate
    return replay_chain(
        blocks, certificates, initial_balances=initial_balances,
        genesis_seed=genesis_seed, params=params, backend=backend,
    )
