"""Block proposal (section 6).

Sortition selects an expected ``tau_proposer`` proposers per round. Each
selected sub-user ``1..j`` yields a priority ``H(vrf_hash || sub_user)``;
the block's priority is the highest of them. Proposers gossip two
messages: a tiny priority/proof announcement (~200 bytes) that races ahead
of the block, and the block itself. Users track the highest priority seen,
discard lower-priority blocks, and time out to the empty block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.encoding import encode
from repro.crypto.backend import CryptoBackend
from repro.crypto.hashing import H
from repro.ledger.block import Block
from repro.sim.loop import Environment, Signal
from repro.sortition.roles import proposer_role
from repro.sortition.selection import SortitionProof, verify_sort


def priority_of_subuser(vrf_hash: bytes, sub_user: int) -> bytes:
    """Priority of one selected sub-user (bigger bytes == higher)."""
    return H(vrf_hash, encode(sub_user))


def block_priority(vrf_hash: bytes, j: int) -> bytes:
    """The block's priority: the best among its ``j`` selected sub-users."""
    if j < 1:
        raise ValueError("proposer must have at least one selected sub-user")
    return max(priority_of_subuser(vrf_hash, sub_user)
               for sub_user in range(1, j + 1))


@dataclass(frozen=True)
class PriorityMessage:
    """The small, fast proposal announcement (priority + sortition proof)."""

    proposer: bytes
    round_number: int
    vrf_hash: bytes
    vrf_proof: bytes
    sub_users: int
    priority: bytes

    def verify(self, backend: CryptoBackend, seed: bytes, tau: float,
               weight: int, total_weight: int) -> bool:
        """Check the sortition proof and the claimed priority."""
        j = verify_sort(
            backend, self.proposer, self.vrf_hash, self.vrf_proof, seed,
            tau, proposer_role(self.round_number), weight, total_weight,
        )
        if j == 0 or self.sub_users != j:
            return False
        return self.priority == block_priority(self.vrf_hash, j)


def make_priority_message(proposer: bytes, round_number: int,
                          proof: SortitionProof) -> PriorityMessage:
    return PriorityMessage(
        proposer=proposer,
        round_number=round_number,
        vrf_hash=proof.vrf_hash,
        vrf_proof=proof.vrf_proof,
        sub_users=proof.j,
        priority=block_priority(proof.vrf_hash, proof.j),
    )


@dataclass
class ProposalTracker:
    """Per-round bookkeeping of proposals a node has heard about."""

    round_number: int
    best_priority: PriorityMessage | None = None
    blocks: dict[bytes, Block] = field(default_factory=dict)
    #: Proposers seen equivocating (two different blocks, same round);
    #: their proposals are discarded per the section 10.4 optimization.
    equivocators: set[bytes] = field(default_factory=set)
    #: Block hash announced by each proposer (equivocation detection).
    announced: dict[bytes, bytes] = field(default_factory=dict)
    block_signal: Signal | None = None
    priority_signal: Signal | None = None

    def signals(self, env: Environment) -> tuple[Signal, Signal]:
        if self.block_signal is None:
            self.block_signal = env.signal()
        if self.priority_signal is None:
            self.priority_signal = env.signal()
        return self.priority_signal, self.block_signal

    def observe_priority(self, message: PriorityMessage,
                         env: Environment) -> bool:
        """Record an announcement; True if it is the new best priority."""
        if message.proposer in self.equivocators:
            return False
        if (self.best_priority is None
                or message.priority > self.best_priority.priority):
            self.best_priority = message
            priority_signal, _ = self.signals(env)
            priority_signal.pulse()
            return True
        return False

    def observe_block(self, block: Block, env: Environment) -> bool:
        """Record a proposed block; True if it should be relayed.

        Detects equivocation: a proposer announcing two different blocks
        for the same round is discarded entirely (both versions), matching
        the optimization described in section 10.4.
        """
        proposer = block.proposer
        if proposer is None or proposer in self.equivocators:
            return False
        previous = self.announced.get(proposer)
        if previous is not None and previous != block.block_hash:
            self.equivocators.add(proposer)
            self.blocks = {h: b for h, b in self.blocks.items()
                           if b.proposer != proposer}
            return False
        self.announced[proposer] = block.block_hash
        self.blocks[block.block_hash] = block
        _, block_signal = self.signals(env)
        block_signal.pulse()
        # Relay only blocks from the best-priority proposer seen so far.
        return (self.best_priority is None
                or proposer == self.best_priority.proposer)

    def best_block(self) -> Block | None:
        """The block of the highest-priority non-equivocating proposer."""
        if self.best_priority is None:
            return None
        for block in self.blocks.values():
            if block.proposer == self.best_priority.proposer:
                return block
        return None
