"""The Algorand user agent: proposal, round loop, recovery, catch-up."""

from repro.node.agent import Node
from repro.node.catchup import (
    ChainAnnouncement,
    ChainSync,
    catch_up_from,
    replay_chain,
    verify_final_safety,
)
from repro.node.recovery import (
    ForkProposal,
    RecoveryDaemon,
    RecoverySession,
    attach_recovery_daemons,
    run_recovery,
)
from repro.node.metrics import NodeMetrics, RoundRecord
from repro.node.proposal import (
    PriorityMessage,
    ProposalTracker,
    block_priority,
    make_priority_message,
    priority_of_subuser,
)
from repro.node.registry import BlockRegistry

__all__ = [
    "Node",
    "NodeMetrics",
    "RoundRecord",
    "PriorityMessage",
    "ProposalTracker",
    "block_priority",
    "priority_of_subuser",
    "make_priority_message",
    "BlockRegistry",
    "ChainAnnouncement",
    "ChainSync",
    "replay_chain",
    "catch_up_from",
    "verify_final_safety",
    "ForkProposal",
    "RecoverySession",
    "RecoveryDaemon",
    "attach_recovery_daemons",
    "run_recovery",
]
