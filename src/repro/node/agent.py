"""The Algorand user agent (sections 4, 6 and 8).

A :class:`Node` owns one user's key pair, chain replica, mempool, and
gossip attachment, and runs the round loop:

1. **Proposal** — run proposer sortition; if selected, assemble a block
   from the mempool and gossip the priority announcement plus the block.
2. **Wait** — sleep ``lambda_priority + lambda_stepvar`` to learn the
   highest-priority proposer, then wait (up to ``lambda_block``) for that
   proposer's block; fall back to the empty block.
3. **Agree** — run BA* (reduction, BinaryBA*, final-vote count) on the
   chosen block hash.
4. **Commit** — resolve the agreed hash to a block, build a certificate,
   append to the chain, prune the mempool.

All incoming gossip is handled synchronously in the relay-policy callback
(validate-before-relay, section 8.4); BA* consumes votes from the node's
:class:`~repro.baplus.buffer.VoteBuffer`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.baplus.buffer import VoteBuffer
from repro.baplus.certificate import Certificate, build_certificate
from repro.baplus.context import BAContext
from repro.baplus.messages import VoteMessage
from repro.baplus.protocol import (
    FINAL,
    TENTATIVE,
    binary_ba_star,
    reduction,
)
from repro.baplus.voting import (
    BAParticipant,
    TIMEOUT,
    count_votes,
    interrupt_open_steps,
)
from repro.common.errors import (ConsensusHalted, InvalidBlock, LedgerError,
                                 SimulationError)
from repro.common.params import ProtocolParams
from repro.crypto.backend import CryptoBackend, KeyPair
from repro.ledger.block import Block, empty_block, empty_block_hash, validate_block
from repro.ledger.blockchain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import Transaction
from repro.network.gossip import NetworkInterface
from repro.network.message import (
    Envelope,
    block_envelope,
    priority_envelope,
    transaction_envelope,
    vote_envelope,
)
from repro.node.metrics import NodeMetrics, RoundRecord
from repro.node.proposal import (
    PriorityMessage,
    ProposalTracker,
    block_priority,
    make_priority_message,
)
from repro.node.registry import BlockRegistry
from repro.runtime.router import MessageRouter
from repro.sim.loop import Environment, Process
from repro.sortition.roles import FINAL_STEP, proposer_role
from repro.sortition.seed import fallback_seed, propose_seed, verify_seed
from repro.sortition.selection import sortition


class Node:
    """One Algorand user: chain replica + gossip peer + BA* participant."""

    def __init__(self, *, index: int, env: Environment, keypair: KeyPair,
                 backend: CryptoBackend, params: ProtocolParams,
                 chain: Blockchain, interface: NetworkInterface,
                 registry: BlockRegistry, obs=None) -> None:
        self.index = index
        self.env = env
        self.keypair = keypair
        self.backend = backend
        self.params = params
        self.chain = chain
        self.interface = interface
        self.registry = registry
        self.buffer = VoteBuffer(env)
        self.mempool = Mempool()
        self.metrics = NodeMetrics()
        self.halted = False
        #: Fail-stop state (see :meth:`crash` / :meth:`restart`). A
        #: crashed node keeps its chain (persistent storage) but loses
        #: every volatile structure and stops speaking on the network.
        self.crashed = False
        #: Optional catch-up hook consulted at each round boundary and
        #: after a ConsensusHalted: return a strictly longer validated
        #: :class:`~repro.ledger.blockchain.Blockchain` to adopt (built
        #: e.g. by :func:`repro.node.catchup.resync_from_peers`), or
        #: ``None`` to keep the current chain.
        self.resync: Callable[[], Blockchain | None] | None = None
        #: Live-mode patience: after a ConsensusHalted, poll the
        #: :attr:`resync` hook every ``resync_patience`` seconds up to
        #: ``resync_retries`` times before halting for good. A killed or
        #: partitioned process asks the network for history and the
        #: answer takes real wall-clock time to arrive; the sim's
        #: defaults (``None``/``0``) keep its immediate-halt behavior
        #: bit-for-bit.
        self.resync_patience: float | None = None
        self.resync_retries: int = 0
        #: Optional :class:`repro.obs.TraceBus`; ``None`` keeps every
        #: instrumentation site at a single attribute check.
        self.obs = obs
        #: Optional :class:`repro.runtime.admission.AdmissionControl`
        #: installed by :func:`repro.runtime.admission.attach_admission`;
        #: the round loop notifies it at each commit so its per-round
        #: state and peer-health decay stay in step.
        self.admission = None
        #: Optional :class:`repro.runtime.damping.RelayDamper` installed
        #: by :func:`repro.runtime.damping.attach_damping`: consulted on
        #: every accepted vote to skip forwarding once the local tally
        #: for its (round, step, value) has crossed the step threshold.
        self.damper = None
        # Single-slot memo for _current_context: vote admission asks for
        # the same round's context once per delivered envelope, and the
        # weight-table rebuild dominates that path.
        self._ctx_memo: tuple[tuple[int, int, bytes], BAContext] | None = None
        # Memo for _sortition_weights keyed (round, lookback): the
        # look-back min-merge rebuilds an N-entry dict per call
        # otherwise. Commit invalidates it (the table may shift with the
        # new block), as do resync/crash (the whole chain may).
        self._weights_memo: dict[tuple[int, int], Mapping[bytes, int]] = {}
        self.participant = BAParticipant(
            env=env, params=params, backend=backend, buffer=self.buffer,
            keypair=keypair, gossip_vote=self._gossip_vote,
            step_observer=self._observe_step,
            obs=obs, node_id=index,
        )
        self._trackers: dict[int, ProposalTracker] = {}
        self._seen_votes: set[tuple[bytes, int, str]] = set()
        self._seen_priorities: set[tuple[bytes, int]] = set()
        self._round_process: Process | None = None
        #: Background processes spawned by the round loop (pipelined
        #: final-vote counts); tracked so :meth:`crash` can kill them.
        self._background: list[Process] = []
        #: Declarative gossip dispatch. Core kinds are registered below;
        #: protocol extensions (fork recovery, chain sync) register their
        #: own kinds instead of monkey-patching the dispatch chain.
        self.router = MessageRouter()
        if obs is not None:
            self.router.metrics = obs.metrics
        self.router.register("vote", self._handle_vote)
        self.router.register("priority", self._handle_priority)
        self.router.register("block", self._handle_block)
        self.router.register("tx", self._handle_transaction)
        #: Optional hook called with the round number after each commit
        #: (used e.g. to reshuffle gossip peers each round, section 8.4).
        self.on_commit: Callable[[int], None] | None = None
        #: Fork monitor (section 8.2): votes binding to a previous-block
        #: hash we do not recognize reveal that their sender follows a
        #: different chain. Maps foreign prev_hash -> count seen.
        self.fork_monitor: dict[bytes, int] = {}
        # Bound to the node (not router.dispatch directly): adversarial
        # observers identify a victim node via relay_policy.__self__.
        interface.relay_policy = self.handle_envelope

    # ------------------------------------------------------------------
    # Gossip handling (synchronous, validate-before-relay)
    # ------------------------------------------------------------------

    def handle_envelope(self, envelope: Envelope) -> bool:
        """Process one received message; return True to relay it."""
        return self.router.dispatch(envelope)

    def _handle_vote(self, vote: VoteMessage) -> bool:
        key = (vote.voter, vote.round_number, vote.step)
        if key in self._seen_votes:
            # At most one relayed message per key per (round, step), §8.4.
            return False
        # With pipelining, the previous round's final-vote count is still
        # live after commit; keep accepting its votes (one-round grace).
        stale_horizon = self.chain.next_round
        if self.params.pipeline_final_step:
            stale_horizon -= 1
        if vote.round_number < stale_horizon:
            return False  # stale round
        if not vote.verify_signature(self.backend):
            return False
        if (vote.prev_hash != self.chain.tip_hash
                and vote.round_number == self.chain.next_round):
            # A current-round vote extending a chain we don't hold:
            # evidence of a fork (section 8.2's passive monitoring).
            self.fork_monitor[vote.prev_hash] = (
                self.fork_monitor.get(vote.prev_hash, 0) + 1)
        self._seen_votes.add(key)
        self.buffer.add(vote)
        if self.damper is not None:
            # Quorum-trimmed relay: the vote is buffered and counted
            # locally either way; only the forward is skipped once this
            # key's tally has crossed its threshold.
            return self.damper.should_relay(vote)
        return True

    def _handle_priority(self, message: PriorityMessage) -> bool:
        if message.round_number < self.chain.next_round:
            return False
        key = (message.proposer, message.round_number)
        if key in self._seen_priorities:
            return False
        if message.round_number == self.chain.next_round:
            # We can fully validate against the current context.
            ctx = self._current_context(message.round_number)
            if not message.verify(
                    self.backend, ctx.seed, self.params.tau_proposer,
                    ctx.weight_of(message.proposer), ctx.total_weight):
                return False
        self._seen_priorities.add(key)
        tracker = self._tracker(message.round_number)
        tracker.observe_priority(message, self.env)
        return True

    def _handle_block(self, block: Block) -> bool:
        if block.round_number < self.chain.next_round:
            return False
        tracker = self._tracker(block.round_number)
        return tracker.observe_block(block, self.env)

    def _handle_transaction(self, tx: Transaction) -> bool:
        try:
            tx.check_shape()
            tx.verify_signature(self.backend)
        except Exception:
            return False
        return self.mempool.add(tx)

    def _gossip_vote(self, vote: VoteMessage) -> None:
        self._seen_votes.add((vote.voter, vote.round_number, vote.step))
        self.buffer.add(vote)  # count our own vote
        if self.damper is not None:
            self.damper.observe_own(vote)
        self.interface.broadcast(vote_envelope(self.keypair.public, vote))

    def _observe_step(self, round_number: int, step: str, seconds: float,
                      timed_out: bool) -> None:
        if not timed_out:
            self.metrics.record_step(round_number, step, seconds)

    # ------------------------------------------------------------------
    # Local API
    # ------------------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        """Inject a locally originated transaction and gossip it."""
        if self.mempool.add(tx):
            self.interface.broadcast(
                transaction_envelope(self.keypair.public, tx, tx.size))

    def start(self, target_height: int) -> Process:
        """Run rounds until the chain reaches ``target_height`` blocks."""
        self._round_process = self.env.process(
            self._round_loop(target_height), f"node-{self.index}")
        return self._round_process

    # ------------------------------------------------------------------
    # Fail-stop crash and rejoin (the chaos engine's fault model)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this node mid-whatever-it-was-doing.

        The round loop and any pipelined final-vote counts are killed at
        their current wait points, the gossip attachment goes silent,
        and every volatile structure (vote buffer, proposal trackers,
        mempool, dedup sets) is lost. The chain itself survives — it
        models persistent storage, which is exactly what a restarted
        node replays its peers' history on top of (section 8.3).
        """
        if self.crashed:
            return
        self.crashed = True
        if self._round_process is not None and not self._round_process.done:
            self._round_process.interrupt()
        for process in self._background:
            if not process.done:
                process.interrupt()
        self._background.clear()
        self.interface.disconnected = True
        self.buffer.clear()
        self.mempool = Mempool()
        self._trackers.clear()
        self._seen_votes.clear()
        self._seen_priorities.clear()
        self.fork_monitor.clear()
        self._ctx_memo = None
        self._weights_memo.clear()
        if self.admission is not None:
            self.admission.reset()
        if self.damper is not None:
            self.damper.reset()
        if self.obs is not None:
            # Close the intervals the killed generators held (recovery
            # lanes excepted — their sessions outlive a crash) before
            # announcing the crash, so the trace shows every step
            # closed at the instant its process died.
            interrupt_open_steps(self.participant)
            self.obs.emit("node_crashed", node=self.index,
                          round=self.chain.next_round)

    def restart(self, target_height: int) -> Process:
        """Rejoin after a :meth:`crash`: reconnect and resume the loop.

        The restarted node first consults its :attr:`resync` hook (at
        the loop top), replaying any longer peer history certificate by
        certificate via :mod:`repro.node.catchup`, then participates in
        the current round like a bootstrapping user.
        """
        if not self.crashed:
            raise SimulationError(
                f"node {self.index} is not crashed; cannot restart")
        self.crashed = False
        self.halted = False
        self.interface.disconnected = False
        if self.obs is not None:
            self.obs.emit("node_restarted", node=self.index,
                          round=self.chain.next_round)
        self._round_process = self.env.process(
            self._round_loop(target_height),
            f"node-{self.index}-restart")
        return self._round_process

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------

    def _tracker(self, round_number: int) -> ProposalTracker:
        if round_number not in self._trackers:
            self._trackers[round_number] = ProposalTracker(round_number)
        return self._trackers[round_number]

    def _current_context(self, round_number: int) -> BAContext:
        memo_key = (round_number, self.chain.height, self.chain.tip_hash)
        if self._ctx_memo is not None and self._ctx_memo[0] == memo_key:
            return self._ctx_memo[1]
        ctx = BAContext.from_weights(
            seed=self.chain.selection_seed(round_number),
            weights=self._sortition_weights(round_number),
            last_block_hash=self.chain.tip_hash,
        )
        self._ctx_memo = (memo_key, ctx)
        return ctx

    def _sortition_weights(self, round_number: int) -> Mapping[bytes, int]:
        """Weight table for sortition at ``round_number`` (section 5.3).

        With ``weight_lookback_rounds == 0`` this is the current table;
        otherwise the snapshot from ``lookback`` rounds ago, optionally
        floored by current balances (``lookback_take_min``, the paper's
        nothing-at-stake mitigation). Memoized per (round, lookback)
        until the next commit — admission asks for the same round's
        table once per delivered envelope.
        """
        lookback = self.params.weight_lookback_rounds
        memo_key = (round_number, lookback)
        cached = self._weights_memo.get(memo_key)
        if cached is not None:
            return cached
        if lookback == 0:
            weights: Mapping[bytes, int] = self.chain.state.weights()
        else:
            reference = max(0, round_number - 1 - lookback)
            weights = self.chain.weights_at(reference)
            if self.params.lookback_take_min:
                current = self.chain.state.weights()
                weights = {
                    public: min(balance, current.get(public, 0))
                    for public, balance in weights.items()
                }
                weights = {public: balance
                           for public, balance in weights.items() if balance}
        self._weights_memo[memo_key] = weights
        return weights

    def _round_loop(self, target_height: int):
        while self.chain.height < target_height and not self.halted:
            if self._try_resync():
                continue
            try:
                yield from self.run_one_round()
            except ConsensusHalted:
                # Exhausting MaxSteps usually means the rest of the
                # network moved on without us (we were crashed, late, or
                # partitioned); catching up from peers is the section
                # 8.3 answer before giving up for good.
                if self._try_resync():
                    continue
                recovered = yield from self._resync_wait()
                if recovered:
                    continue
                self.halted = True
                if self.obs is not None:
                    self.obs.emit("consensus_halted", node=self.index,
                                  round=self.chain.next_round)

    def _resync_wait(self):
        """Poll the resync hook with patience; True once a chain adopts.

        Between retries the node stays silent (the reference machine
        remains in BA, where ``catchup_adopted`` is legal after a
        ConsensusHalted closed every step), so a successful late answer
        resumes the loop without ever declaring the halt.
        """
        if self.resync_patience is None:
            return False
        for _ in range(self.resync_retries):
            yield self.env.timeout(self.resync_patience)
            if self.halted or self.crashed:
                return False
            if self._try_resync():
                return True
        return False

    def _try_resync(self) -> bool:
        """Adopt a strictly longer validated chain from the resync hook."""
        if self.resync is None:
            return False
        adopted = self.resync()
        if adopted is None or adopted.height <= self.chain.height:
            return False
        from_height = self.chain.height
        self.chain = adopted
        self._ctx_memo = None
        self._weights_memo.clear()
        if self.obs is not None:
            self.obs.emit("catchup_adopted", node=self.index,
                          round=self.chain.next_round,
                          from_height=from_height,
                          to_height=self.chain.height)
        return True

    def run_one_round(self):
        """Execute one full round; generator driven by the event loop."""
        round_number = self.chain.next_round
        self.buffer.anchor_round = round_number
        start = self.env.now
        obs = self.obs
        if obs is not None:
            obs.emit("round_start", node=self.index, round=round_number)
        ctx = self._current_context(round_number)
        tracker = self._tracker(round_number)

        proof = sortition(
            self.backend, self.keypair.secret, ctx.seed,
            self.params.tau_proposer, proposer_role(round_number),
            ctx.weight_of(self.keypair.public), ctx.total_weight,
        )
        if proof.j > 0:
            if obs is not None:
                obs.emit("block_proposed", node=self.index,
                         round=round_number, j=proof.j,
                         weight=ctx.weight_of(self.keypair.public))
            self.propose_block(round_number, ctx, proof, tracker)

        hblock = yield from self._wait_for_proposal(round_number, ctx,
                                                    tracker)
        proposal_done = self.env.now
        if obs is not None:
            obs.emit("proposal_resolved", node=self.index,
                     round=round_number,
                     empty=hblock == empty_block_hash(
                         round_number, ctx.last_block_hash),
                     waited_s=proposal_done - start)

        reduced = yield from reduction(self.participant, ctx, round_number,
                                       hblock)
        binary = yield from binary_ba_star(self.participant, ctx,
                                           round_number, reduced)
        ba_done = self.env.now
        if self.params.pipeline_final_step:
            # Section 10.2 optimization: commit now, count final votes
            # concurrently with the next round; the kind is patched into
            # the metrics record when the count lands.
            self._background = [p for p in self._background if not p.done]
            self._background.append(self.env.process(
                self._pipelined_final(ctx, round_number, binary.value),
                f"final-{self.index}-{round_number}"))
            kind = TENTATIVE
        else:
            final_vote = yield from count_votes(
                self.participant, ctx, round_number, FINAL_STEP,
                self.params.t_final, self.params.tau_final,
                self.params.lambda_step,
            )
            kind = (FINAL if final_vote is not TIMEOUT
                    and final_vote == binary.value else TENTATIVE)
        end = self.env.now

        try:
            block = self._resolve_block(round_number, ctx, binary.value,
                                        tracker)
        except LedgerError as exc:
            # Consensus concluded on a block whose body never reached us
            # — possible when this node joined the round mid-flight (a
            # chaos respawn, a healed partition) and the proposal was
            # gossiped before its links came up. The network holds the
            # block and its certificate, so recovering it over catch-up
            # (section 8.3) is the same answer as a halted round.
            raise ConsensusHalted(
                f"round {round_number} decided block "
                f"{binary.value.hex()[:16]} but its body never arrived"
            ) from exc
        certificate = build_certificate(
            self.buffer, ctx, self.backend, self.params, round_number,
            str(binary.deciding_step), binary.value,
        )
        self._commit(round_number, ctx, block, certificate)
        if kind == FINAL:
            # Safety certificate (section 8.3): the final-step votes
            # alone prove this block (and its whole prefix) is final.
            final_certificate = build_certificate(
                self.buffer, ctx, self.backend, self.params, round_number,
                FINAL_STEP, binary.value,
            )
            if final_certificate is not None:
                self.chain.set_final_certificate(round_number,
                                                 final_certificate)
        self.metrics.record_round(RoundRecord(
            round_number=round_number,
            start_time=start,
            proposal_done_time=proposal_done,
            ba_done_time=ba_done,
            end_time=end,
            kind=kind,
            block_hash=block.block_hash,
            is_empty=block.is_empty,
            payload_bytes=block.payload_size,
            binary_steps=binary.deciding_step,
        ))
        if obs is not None:
            # The report CLI's per-round segment table (Figure 7 shape)
            # is built from exactly these fields.
            obs.emit("round_commit", node=self.index, round=round_number,
                     consensus=kind, empty=block.is_empty,
                     block_hash=block.block_hash.hex(),
                     payload_bytes=block.payload_size,
                     binary_steps=binary.deciding_step,
                     proposal_s=proposal_done - start,
                     ba_s=ba_done - proposal_done,
                     final_s=end - ba_done,
                     total_s=end - start)
        self._prune(round_number)

    def _pipelined_final(self, ctx: BAContext, round_number: int,
                         agreed_value: bytes):
        """Background final-vote count for a pipelined round."""
        final_vote = yield from count_votes(
            self.participant, ctx, round_number, FINAL_STEP,
            self.params.t_final, self.params.tau_final,
            self.params.lambda_step,
        )
        if final_vote is not TIMEOUT and final_vote == agreed_value:
            self.metrics.finalize_kind(round_number, FINAL)
            if self.obs is not None:
                self.obs.emit("final_certified", node=self.index,
                              round=round_number, pipelined=True)
            final_certificate = build_certificate(
                self.buffer, ctx, self.backend, self.params, round_number,
                FINAL_STEP, agreed_value,
            )
            if final_certificate is not None:
                self.chain.set_final_certificate(round_number,
                                                 final_certificate)

    # --- Proposal ----------------------------------------------------

    def propose_block(self, round_number: int, ctx: BAContext, proof,
                      tracker: ProposalTracker) -> None:
        """Assemble, register, and gossip this node's proposal.

        Overridden by adversarial nodes (e.g. equivocating proposers).
        """
        block = self.assemble_block(round_number, proof)
        self.registry.register(block)
        announcement = make_priority_message(self.keypair.public,
                                             round_number, proof)
        self._seen_priorities.add((self.keypair.public, round_number))
        tracker.observe_priority(announcement, self.env)
        tracker.observe_block(block, self.env)
        self.interface.broadcast(
            priority_envelope(self.keypair.public, announcement))
        self.interface.broadcast(
            block_envelope(self.keypair.public, block, block.size))

    def assemble_block(self, round_number: int, proof) -> Block:
        """Build a block of pending transactions for this round."""
        transactions = tuple(self.mempool.assemble(self.chain.state,
                                                   self.params.block_size))
        previous_seed = self.chain.seed_of_round(round_number - 1)
        seed, seed_proof = propose_seed(self.backend, self.keypair.secret,
                                        previous_seed, round_number)
        return Block(
            round_number=round_number,
            prev_hash=self.chain.tip_hash,
            timestamp=self.env.now,
            seed=seed,
            seed_proof=seed_proof,
            proposer=self.keypair.public,
            proposer_vrf_hash=proof.vrf_hash,
            proposer_vrf_proof=proof.vrf_proof,
            proposer_priority=block_priority(proof.vrf_hash, proof.j),
            transactions=transactions,
        )

    def _wait_for_proposal(self, round_number: int, ctx: BAContext,
                           tracker: ProposalTracker):
        """Sections 6: wait for priorities, then for the winning block.

        Returns the hash BA* should start from: the highest-priority valid
        block if it arrives in time, else the empty-block hash.
        """
        params = self.params
        yield self.env.timeout(params.lambda_stepvar + params.lambda_priority)
        empty_hash = empty_block_hash(round_number, ctx.last_block_hash)
        deadline = self.env.now + params.lambda_block
        priority_signal, block_signal = tracker.signals(self.env)
        while True:
            best = tracker.best_priority
            if best is not None:
                block = tracker.best_block()
                if block is not None:
                    if self._validate_proposal(round_number, ctx, best,
                                               block):
                        return block.block_hash
                    #

                    # Invalid block from the winning proposer: treat the
                    # round's proposal as empty (section 8.1).
                    return empty_hash
            remaining = deadline - self.env.now
            if remaining <= 0:
                return empty_hash
            yield self.env.any_of([
                priority_signal.next_event(),
                block_signal.next_event(),
                self.env.timeout(remaining),
            ])

    def _validate_proposal(self, round_number: int, ctx: BAContext,
                           announcement: PriorityMessage,
                           block: Block) -> bool:
        if not announcement.verify(
                self.backend, ctx.seed, self.params.tau_proposer,
                ctx.weight_of(announcement.proposer), ctx.total_weight):
            return False
        try:
            validate_block(
                block, backend=self.backend, state=self.chain.state,
                prev_hash=self.chain.tip_hash, round_number=round_number,
                prev_timestamp=self.chain.last_nonempty_timestamp(),
                now=self.env.now,
            )
        except InvalidBlock:
            return False
        return verify_seed(
            self.backend, block.proposer, block.seed, block.seed_proof,
            self.chain.seed_of_round(round_number - 1), round_number,
        )

    # --- Commit --------------------------------------------------------

    def _resolve_block(self, round_number: int, ctx: BAContext,
                       block_hash: bytes,
                       tracker: ProposalTracker) -> Block:
        """Algorithm 3's ``BlockOfHash``: hash -> block."""
        if block_hash == empty_block_hash(round_number, ctx.last_block_hash):
            return empty_block(round_number, ctx.last_block_hash)
        block = tracker.blocks.get(block_hash)
        if block is None:
            block = self.registry.fetch(block_hash)
        return block

    def _commit(self, round_number: int, ctx: BAContext, block: Block,
                certificate: Certificate | None) -> None:
        seed_override = None
        if block.is_empty:
            seed_override = fallback_seed(
                self.chain.seed_of_round(round_number - 1), round_number)
        elif not verify_seed(
                self.backend, block.proposer, block.seed, block.seed_proof,
                self.chain.seed_of_round(round_number - 1), round_number):
            seed_override = fallback_seed(
                self.chain.seed_of_round(round_number - 1), round_number)
        self.chain.append(block, certificate, seed_override=seed_override)
        self._weights_memo.clear()
        self.mempool.prune_committed(block.transactions, self.chain.state)
        if self.on_commit is not None:
            self.on_commit(round_number)

    def _prune(self, completed_round: int) -> None:
        """Drop per-round state older than the previous round."""
        # With pipelining, the previous round's final-vote count may
        # still be consuming its buffer bucket; keep one extra round.
        horizon = completed_round
        if self.params.pipeline_final_step:
            horizon -= 1
        self.buffer.prune_before(horizon)
        for round_number in [r for r in self._trackers if r < horizon]:
            del self._trackers[round_number]
        self._seen_votes = {key for key in self._seen_votes
                            if key[1] >= horizon}
        self._seen_priorities = {key for key in self._seen_priorities
                                 if key[1] >= horizon}
        if self.admission is not None:
            self.admission.end_round(completed_round)
        if self.damper is not None:
            self.damper.end_round(completed_round)
