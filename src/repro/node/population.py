"""Aggregated population: a stake pool plus lazily materialized agents.

The classic harness builds one live :class:`~repro.node.agent.Node` per
user — N chains, N vote buffers, N gossip interfaces — even though a
round's behaviour is determined by its committee-sized fraction of the
population. :class:`Population` replaces "build N nodes" with:

* an **aggregated stake pool** — every account's key pair and balance,
  held as arrays keyed by the stable slot index of
  :class:`repro.ledger.arraystate.AccountIndex` (slot == simulation
  node index);
* an **always-on core** — the first ``core_size`` accounts stay full
  agents for the whole run (they anchor liveness measurements, carry
  transaction injection, and drive round completion);
* **materialization on selection** — at each round boundary one
  vectorized pool-sortition pass (:func:`repro.sortition.pool
  .pool_select`) finds every account selected for the coming round's
  roles; those accounts are instantiated as full agents (chain replica
  via :meth:`~repro.ledger.blockchain.Blockchain.replica`, fresh node,
  activated gossip interface) just in time to propose and vote;
* **retirement after their round** — transient agents are torn down at
  the next boundary unless re-selected.

Role coverage: winners are computed for the proposer role, both
reduction steps, BinaryBA* steps ``1..steps_ahead``, and the final
committee. ``steps_ahead`` defaults to 4: an honest round decides at
binary step 1 and its deciders then vote steps 2-4 (Algorithm 8's
"next three steps" steering), so 4 covers the clean-path traffic
exactly; pathological rounds that run deeper than ``steps_ahead``
simply lose those later committees' (dormant) votes — acceptable for
the honest large-scale deployments this mode targets, and configurable
upward. Adversarial experiments keep the full-agent mode.

The boundary trigger is the *first* commit of each round across the
live agents: no agent has started the next round at that instant, so a
freshly materialized winner never misses next-round gossip.

Equivalence: when the core covers the whole population there is no
dormant stake — no pool pass runs, no topology changes happen, and the
deployment must commit byte-identical chains to the classic full-agent
harness (asserted by the representation-equivalence suite). With a
small core, committed *content* diverges only through block timestamps
(commit times shift with the thinner relay fabric), while the
protocol-outcome trajectory — proposer sequence and seed chain, which
depend solely on VRFs — stays identical to the full run.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.baplus.voting import interrupt_open_steps
from repro.common.errors import ConfigError
from repro.common.params import ProtocolParams
from repro.crypto.backend import CryptoBackend, KeyPair
from repro.ledger.arraystate import AccountIndex, ArrayState, ArrayWeights
from repro.ledger.blockchain import Blockchain
from repro.network.gossip import GossipNetwork
from repro.node.agent import Node
from repro.node.registry import BlockRegistry
from repro.sim.loop import Environment, Process
from repro.sortition.pool import pool_select
from repro.sortition.roles import (
    FINAL_STEP,
    REDUCTION_ONE,
    REDUCTION_TWO,
    committee_role,
    proposer_role,
)


class Population:
    """Owns the stake pool and the live-agent table of one deployment."""

    def __init__(self, *, env: Environment, backend: CryptoBackend,
                 params: ProtocolParams, network: GossipNetwork,
                 registry: BlockRegistry, keypairs: list[KeyPair],
                 balances: list[int], genesis_seed: bytes,
                 core_size: int, steps_ahead: int = 4,
                 node_class: type[Node] = Node,
                 obs=None,
                 attach_admission: Callable[[Node], None] | None = None,
                 round_hook: Callable[[int], None] | None = None) -> None:
        if core_size < 1:
            raise ConfigError("always-on core must hold at least 1 agent")
        if steps_ahead < 1:
            raise ConfigError("steps_ahead must be >= 1")
        self.env = env
        self.backend = backend
        self.params = params
        self.network = network
        self.registry = registry
        self.keypairs = keypairs
        self.genesis_seed = genesis_seed
        self.steps_ahead = steps_ahead
        self.node_class = node_class
        self.obs = obs
        self._attach_admission = attach_admission
        #: Harness round hook (seen-set pruning, quarantine round end,
        #: optional reshuffle) — invoked on the designated core agent's
        #: commits, exactly as the classic harness does via node 0.
        self._round_hook = round_hook

        self.num_accounts = len(keypairs)
        self.core = list(range(min(core_size, self.num_accounts)))
        self._all_core = len(self.core) == self.num_accounts
        #: Stable account index: slot i == simulation node index i.
        self.index = AccountIndex(kp.public for kp in keypairs)
        self._secrets = [kp.secret for kp in keypairs]
        self.initial_balances = {
            kp.public: balance
            for kp, balance in zip(keypairs, balances) if balance > 0
        }

        #: Live agents by slot (core + current transients).
        self.live: dict[int, Node] = {}
        self._targets: dict[int, int] = {}
        self._retired: set[int] = set()
        #: Boundary bookkeeping: rounds whose winners are materialized.
        self._materialized_through = 0
        self._rounds_target = 0
        # Lifecycle counters for summaries and the scale bench.
        self.materialized_total = 0
        self.retired_total = 0
        self.live_high_water = 0

        for slot in self.core:
            self._create_agent(slot)

    # ------------------------------------------------------------------
    # Agent lifecycle
    # ------------------------------------------------------------------

    def _state_factory(self, initial: Mapping[bytes, int]) -> ArrayState:
        return ArrayState(initial, index=self.index)

    def _create_agent(self, slot: int, source: Blockchain | None = None
                      ) -> Node:
        """Materialize one account as a full agent.

        ``source`` is the boundary chain to replicate; ``None`` builds
        a genesis chain (construction-time core agents).
        """
        if source is None:
            chain = Blockchain(self.initial_balances, self.genesis_seed,
                               self.params.seed_refresh_interval,
                               state_factory=self._state_factory)
        else:
            chain = source.replica()
        node = self.node_class(
            index=slot, env=self.env, keypair=self.keypairs[slot],
            backend=self.backend, params=self.params, chain=chain,
            interface=self.network.interfaces[slot],
            registry=self.registry, obs=self.obs,
        )
        if self._attach_admission is not None:
            self._attach_admission(node)
        node.on_commit = (
            lambda round_number, _node=node: self.note_commit(
                _node, round_number))
        self.live[slot] = node
        self.materialized_total += 1
        if len(self.live) > self.live_high_water:
            self.live_high_water = len(self.live)
        return node

    def _retire(self, slot: int) -> None:
        node = self.live.pop(slot)
        self._targets.pop(slot, None)
        self._retired.add(slot)
        self.retired_total += 1
        process = node._round_process
        if process is not None and not process.done and not process.running:
            # A running process here is the committing agent retiring
            # itself at its own boundary hook; its round loop exits on
            # its own once the hook unwinds (height reached its target).
            process.interrupt()
        for background in node._background:
            if not background.done:
                background.interrupt()
        node._background.clear()
        node.buffer.clear()
        if self.obs is not None:
            # Close whatever step intervals the interrupted processes
            # held before announcing the retirement (conformance and
            # per-step timings require closed intervals).
            interrupt_open_steps(node.participant)
            self.obs.emit("agent_retired", node=slot,
                          height=node.chain.height)

    def _run_until(self, slot: int, target: int) -> None:
        """Ensure ``slot``'s agent runs (at least) through ``target``.

        If its round process already completed, restart it; if it is
        still mid-round, chain the restart onto process completion (the
        done callback fires synchronously at the commit that ends its
        current target).
        """
        node = self.live[slot]
        current = self._targets.get(slot, 0)
        if target <= current:
            return
        self._targets[slot] = target
        process = node._round_process
        if process is None or process.done:
            node.start(target)
        else:
            def extend(_process, slot=slot, target=target) -> None:
                live = self.live.get(slot)
                if (live is not None
                        and self._targets.get(slot, 0) == target
                        and live.chain.height < target):
                    live.start(target)

            process.add_done_callback(extend)

    # ------------------------------------------------------------------
    # Round boundaries
    # ------------------------------------------------------------------

    def start(self, rounds: int) -> list[Process]:
        """Start the core for a ``rounds``-round run; returns processes.

        Also materializes round 1's winners from the genesis state (the
        construction-time analogue of the per-round boundary pass).
        """
        self._rounds_target = rounds
        reference = self.live[self.core[0]].chain
        self._materialize_round(1, reference)
        processes = []
        for slot in self.core:
            self._targets[slot] = rounds
            processes.append(self.live[slot].start(rounds))
        return processes

    def note_commit(self, node: Node, round_number: int) -> None:
        """Per-agent commit hook: drive boundaries off the first commit.

        The first live agent to commit round ``r`` triggers the pool
        pass for round ``r + 1`` — at that instant nobody has begun
        round ``r + 1``, so winners materialize before any of its
        gossip exists. The designated core agent's commit additionally
        runs the harness round hook (matching classic node-0 wiring).
        """
        if round_number > self._materialized_through:
            next_round = round_number + 1
            if next_round <= self._rounds_target or self._rounds_target == 0:
                self._materialize_round(next_round, node.chain)
            self._materialized_through = round_number
        if node.index == self.core[0] and self._round_hook is not None:
            self._round_hook(round_number)

    def _materialize_round(self, round_number: int,
                           reference: Blockchain) -> None:
        if self._all_core:
            # No dormant stake: nothing to select, retire, or rewire —
            # and critically no extra RNG/event consumption, which is
            # what keeps this configuration byte-identical to the
            # classic full-agent harness.
            return
        winners = self.select_round(round_number, reference)
        for slot in sorted(set(self.live) - set(self.core) - winners):
            self._retire(slot)
        fresh = sorted(winners - set(self.live))
        for slot in fresh:
            self._create_agent(slot, source=reference)
        self.network.set_active(sorted(self.live))
        target = round_number
        if self._rounds_target:
            target = min(target, self._rounds_target)
        # Core agents run to the full horizon under start()'s control;
        # only transients need per-round target management.
        for slot in sorted(winners - set(self.core)):
            self._run_until(slot, target)
        if self.obs is not None:
            self.obs.emit("population_boundary", round=round_number,
                          winners=len(winners), fresh=len(fresh),
                          live=len(self.live))

    # ------------------------------------------------------------------
    # Pool sortition
    # ------------------------------------------------------------------

    def _round_roles(self, round_number: int) -> list[tuple[bytes, float]]:
        params = self.params
        roles = [
            (proposer_role(round_number), params.tau_proposer),
            (committee_role(round_number, REDUCTION_ONE), params.tau_step),
            (committee_role(round_number, REDUCTION_TWO), params.tau_step),
        ]
        for step in range(1, self.steps_ahead + 1):
            roles.append((committee_role(round_number, str(step)),
                          params.tau_step))
        roles.append((committee_role(round_number, FINAL_STEP),
                      params.tau_final))
        return roles

    def _slot_weights(self, reference: Blockchain,
                      round_number: int) -> tuple[np.ndarray, int]:
        """Weight array over pool slots for sortition at ``round_number``.

        Mirrors :meth:`Node._sortition_weights` (section 5.3 look-back
        included) so pool selection and the materialized agents' own
        sortition calls answer from the same table.
        """
        params = self.params
        lookback = params.weight_lookback_rounds
        if lookback == 0:
            weights: Mapping[bytes, int] = reference.state.weights()
        else:
            cutoff = max(0, round_number - 1 - lookback)
            weights = reference.weights_at(cutoff)
            if params.lookback_take_min:
                current = reference.state.weights()
                weights = {public: min(balance, current.get(public, 0))
                           for public, balance in weights.items()}
        n = self.num_accounts
        if (isinstance(weights, ArrayWeights)
                and weights.index is self.index
                and len(weights.array) >= n):
            return weights.array[:n], weights.total
        array = np.zeros(n, dtype=np.int64)
        for public, balance in weights.items():
            slot = self.index.get(public)
            if slot is not None and slot < n:
                array[slot] = balance
        return array, int(array.sum())

    def select_round(self, round_number: int,
                     reference: Blockchain) -> set[int]:
        """Slots selected for any of ``round_number``'s covered roles."""
        weights, total_weight = self._slot_weights(reference, round_number)
        seed = reference.selection_seed(round_number)
        winners: set[int] = set()
        for role, tau in self._round_roles(round_number):
            selection = pool_select(self.backend, self._secrets, weights,
                                    tau, total_weight, seed, role)
            winners.update(selection.winners)
        return winners

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def core_nodes(self) -> list[Node]:
        return [self.live[slot] for slot in self.core]

    def stats(self) -> dict[str, int]:
        return {
            "accounts": self.num_accounts,
            "core": len(self.core),
            "live": len(self.live),
            "live_high_water": self.live_high_water,
            "materialized_total": self.materialized_total,
            "retired_total": self.retired_total,
        }
