"""Per-node measurement records used by the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundRecord:
    """One node's view of one completed round."""

    round_number: int
    start_time: float
    proposal_done_time: float
    ba_done_time: float
    end_time: float
    kind: str
    block_hash: bytes
    is_empty: bool
    payload_bytes: int
    binary_steps: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def proposal_duration(self) -> float:
        """Time to obtain the proposed block (Figure 7, bottom segment)."""
        return self.proposal_done_time - self.start_time

    @property
    def ba_duration(self) -> float:
        """BA* up to (not including) the final-vote count."""
        return self.ba_done_time - self.proposal_done_time

    @property
    def final_step_duration(self) -> float:
        """The final-step segment (Figure 7, top segment)."""
        return self.end_time - self.ba_done_time


@dataclass
class NodeMetrics:
    """Accumulates a node's round records and step timings."""

    rounds: list[RoundRecord] = field(default_factory=list)
    #: (round, step, seconds) for every CountVotes invocation that returned
    #: a value (used by the section 10.5 timeout-validation experiment).
    step_durations: list[tuple[int, str, float]] = field(default_factory=list)

    def record_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def record_step(self, round_number: int, step: str,
                    seconds: float) -> None:
        self.step_durations.append((round_number, step, seconds))

    def finalize_kind(self, round_number: int, kind: str) -> None:
        """Late kind update for pipelined rounds (final count finishes
        after the round's record was written)."""
        import dataclasses
        for i, record in enumerate(self.rounds):
            if record.round_number == round_number:
                self.rounds[i] = dataclasses.replace(record, kind=kind)
                return

    def round_record(self, round_number: int) -> RoundRecord | None:
        for record in self.rounds:
            if record.round_number == round_number:
                return record
        return None
