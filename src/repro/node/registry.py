"""Shared block registry: the simulation's ``BlockOfHash`` fetch path.

BA* votes on block *hashes*; a node that reaches agreement on a hash
without having received the block "must obtain it from other users (and,
since the block was agreed upon, many of the honest users must have
received it during block proposal)" — Algorithm 3's ``BlockOfHash()``.

In the simulation this fetch is modeled by a registry shared by all nodes
of one experiment: proposers register every block they originate, and a
node resolving an unseen hash performs a registry lookup (counted, so
experiments can report how often the slow path was taken). The bandwidth
cost of the normal path is fully modeled by the gossip layer; the rare
fetch path is deliberately free, which can only *under*-state Algorand's
latency by a fraction of a block transfer.
"""

from __future__ import annotations

from repro.common.errors import LedgerError
from repro.ledger.block import Block


class BlockRegistry:
    """Hash -> block mapping shared across one simulation."""

    def __init__(self) -> None:
        self._blocks: dict[bytes, Block] = {}
        self.fetches = 0

    def register(self, block: Block) -> None:
        self._blocks[block.block_hash] = block

    def fetch(self, block_hash: bytes) -> Block:
        """Resolve a hash the node never received; counts as a slow fetch."""
        try:
            block = self._blocks[block_hash]
        except KeyError:
            raise LedgerError(
                f"no proposer ever built block {block_hash.hex()[:16]}"
            ) from None
        self.fetches += 1
        return block

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)
