"""Fork recovery (section 8.2).

When weak synchrony lets BA* reach *tentative* consensus on different
blocks, nodes end up on forks and can no longer count each other's votes
(their ``prev_hash`` bindings differ); at least one fork starves. The
paper recovers by periodically running BA* on "which fork should everyone
adopt":

1. users propose forks via the block-proposal mechanism — a selected
   "fork proposer" announces the longest chain it knows;
2. everyone waits for the highest-priority proposal whose chain is at
   least as long as their own longest known fork (so final blocks are
   always retained);
3. BA* runs over the proposal, using seed and weights *from before the
   fork* so all participants share a context;
4. on agreement, everyone adopts the winning fork. If the round fails
   (empty outcome), the attempt counter is hashed into the roles and the
   protocol retries.

This module implements that protocol over the same gossip network. The
recovery context uses the weights and seed at ``pre_fork_round`` — the
paper's quantized look-back; the simulation harness passes the last round
known to precede the partition (in production this comes from the
block-timestamp quantization described in section 8.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baplus.context import BAContext
from repro.baplus.protocol import ba_star
from repro.common.encoding import encode
from repro.common.errors import ConsensusHalted
from repro.crypto.hashing import H
from repro.ledger.block import Block, empty_block_hash
from repro.network.message import Envelope
from repro.node.agent import Node
from repro.node.proposal import block_priority
from repro.sortition.roles import fork_proposer_role
from repro.sortition.selection import sortition, verify_sort

#: Recovery BA* executions use round numbers far above any real round so
#: their votes can never collide with in-band consensus votes.
RECOVERY_ROUND_BASE = 1_000_000_000


@dataclass(frozen=True)
class ForkProposal:
    """A fork proposer's announcement: its full candidate chain."""

    proposer: bytes
    attempt: int
    vrf_hash: bytes
    vrf_proof: bytes
    sub_users: int
    blocks: tuple[Block, ...]  # rounds 1..n of the proposed chain

    @property
    def priority(self) -> bytes:
        return block_priority(self.vrf_hash, self.sub_users)

    @property
    def tip_hash(self) -> bytes:
        if not self.blocks:
            return b""
        return self.blocks[-1].block_hash

    @property
    def length(self) -> int:
        return len(self.blocks)

    @property
    def size(self) -> int:
        return 200 + sum(block.size for block in self.blocks)


class RecoverySession:
    """One node's participation in one recovery attempt."""

    def __init__(self, node: Node, pre_fork_round: int) -> None:
        self.node = node
        self.pre_fork_round = pre_fork_round
        self.proposals: dict[bytes, ForkProposal] = {}
        self._signal = node.env.signal()
        # Replace any previous session's handler: recovery retries create
        # a fresh session per attempt window on the same node.
        node.router.register("fork", self._handle_proposal, replace=True)

    # -- context ---------------------------------------------------------

    def _recovery_ctx(self, attempt: int) -> BAContext:
        """Shared context: seed/weights from before any possible fork."""
        chain = self.node.chain
        cut = min(self.pre_fork_round, chain.height)
        seed = H(chain.seed_of_round(cut), encode(attempt))
        # Weights must come from the shared pre-fork prefix (section 8.2):
        # replay it so stake moved by post-fork blocks cannot diverge the
        # contexts.
        weights = chain.fork_from(chain.blocks[1:cut + 1]).state.weights()
        return BAContext.from_weights(
            seed, weights, H(b"recovery", encode(attempt)))

    # -- gossip ----------------------------------------------------------

    def _handle_proposal(self, proposal: ForkProposal) -> bool:
        if proposal.proposer in self.proposals:
            return False
        self.proposals[proposal.proposer] = proposal
        self._signal.pulse()
        return True

    def _propose_if_selected(self, attempt: int, ctx: BAContext) -> None:
        node = self.node
        role = fork_proposer_role(self.pre_fork_round, attempt)
        proof = sortition(
            node.backend, node.keypair.secret, ctx.seed,
            node.params.tau_proposer, role,
            ctx.weight_of(node.keypair.public), ctx.total_weight,
        )
        if proof.j == 0:
            return
        proposal = ForkProposal(
            proposer=node.keypair.public, attempt=attempt,
            vrf_hash=proof.vrf_hash, vrf_proof=proof.vrf_proof,
            sub_users=proof.j, blocks=node.chain.blocks[1:],
        )
        self._handle_proposal(proposal)
        node.interface.broadcast(Envelope(
            origin=node.keypair.public, kind="fork", payload=proposal,
            size=proposal.size,
        ))

    def _valid(self, proposal: ForkProposal, attempt: int,
               ctx: BAContext) -> bool:
        if proposal.attempt != attempt:
            return False
        j = verify_sort(
            self.node.backend, proposal.proposer, proposal.vrf_hash,
            proposal.vrf_proof, ctx.seed, self.node.params.tau_proposer,
            fork_proposer_role(self.pre_fork_round, attempt),
            ctx.weight_of(proposal.proposer), ctx.total_weight,
        )
        if j == 0 or j != proposal.sub_users:
            return False
        # The proposed fork must be at least as long as our own chain
        # (choosing the longest fork retains all final blocks).
        return proposal.length >= self.node.chain.height

    def _best_proposal(self, attempt: int,
                       ctx: BAContext) -> ForkProposal | None:
        valid = [proposal for proposal in self.proposals.values()
                 if self._valid(proposal, attempt, ctx)]
        if not valid:
            return None
        return max(valid, key=lambda proposal: proposal.priority)

    # -- the protocol ------------------------------------------------------

    def run(self, max_attempts: int = 3):
        """Generator: participate in recovery until a fork is adopted.

        Returns True if this node adopted (or confirmed) a winning fork.
        """
        node = self.node
        for attempt in range(max_attempts):
            ctx = self._recovery_ctx(attempt)
            recovery_round = RECOVERY_ROUND_BASE + attempt
            # Regular block processing is stopped during recovery
            # (section 8.2): protect the active recovery round's votes
            # from the bounded buffer's future-first eviction.
            node.buffer.anchor_round = recovery_round
            self._propose_if_selected(attempt, ctx)
            # Wait for fork proposals to spread (blocks are bulky).
            yield node.env.timeout(node.params.lambda_priority
                                   + node.params.lambda_block)
            best = self._best_proposal(attempt, ctx)
            empty = empty_block_hash(recovery_round, ctx.last_block_hash)
            start_value = best.tip_hash if best is not None else empty
            try:
                result = yield from ba_star(
                    node.participant, ctx, recovery_round, start_value)
            except ConsensusHalted:
                continue
            if result.block_hash == empty:
                continue  # no winning fork this attempt; retry
            winner = next(
                (proposal for proposal in self.proposals.values()
                 if proposal.tip_hash == result.block_hash), None)
            if winner is None:
                continue  # agreed on a fork we never received; retry
            self._adopt(winner)
            return True
        return False

    def _adopt(self, proposal: ForkProposal) -> None:
        node = self.node
        if node.admission is not None:
            # The rounds re-run after adoption are new executions; stale
            # vote-dedup state would misread honest re-votes as
            # equivocation (see AdmissionControl.on_chain_adopted).
            node.admission.on_chain_adopted()
        if node.damper is not None:
            # Likewise: stale threshold crossings from the abandoned
            # view could suppress votes the re-run rounds need.
            node.damper.on_chain_adopted()
        if proposal.tip_hash == node.chain.tip_hash:
            node.halted = False
            return
        node.chain = node.chain.fork_from(proposal.blocks)
        node.halted = False

    def close(self) -> None:
        self.node.router.unregister("fork")
        # Recovery votes live at RECOVERY_ROUND_BASE + attempt, far above
        # any real round, so normal-round watermarks passed to
        # ``prune_before`` never remove them — drop them here or every
        # concluded recovery leaks its vote buckets forever.
        self.node.buffer.prune_at_or_above(RECOVERY_ROUND_BASE)
        if self.node.admission is not None:
            self.node.admission.on_chain_adopted()
        if self.node.damper is not None:
            self.node.damper.on_chain_adopted()


def run_recovery(nodes: list[Node], pre_fork_round: int,
                 max_attempts: int = 3) -> list[RecoverySession]:
    """Kick off a recovery session on every node; returns the sessions.

    The caller runs the environment; afterwards all participating nodes
    whose session returned True share one chain.
    """
    sessions = [RecoverySession(node, pre_fork_round) for node in nodes]
    for session in sessions:
        session.node.env.process(session.run(max_attempts),
                                 f"recovery-{session.node.index}")
    return sessions


class RecoveryDaemon:
    """Clock-driven recovery (section 8.2's periodic kick-off).

    "Users then use loosely synchronized clocks to stop regular block
    processing and kick off the recovery protocol at every time
    interval." Each node runs one daemon; at every
    ``params.recovery_interval`` tick it checks whether the node has
    halted (BinaryBA* hit MaxSteps) and, if so, joins a recovery
    session. The pre-fork round is quantized from chain length the same
    way for all nodes: the last round at least ``safety_margin`` rounds
    below the *shortest* halted chain is guaranteed to be on the shared
    prefix, and the simulation's loosely synchronized clocks make every
    daemon fire within the same interval.

    ``clock_skew`` staggers the tick per node (the paper requires only
    *loose* synchronization; recovery tolerates skews well below the
    proposal-wait windows).
    """

    def __init__(self, node: Node, safety_margin: int = 1,
                 clock_skew: float = 0.0,
                 max_attempts: int = 3,
                 resume_target: int | None = None) -> None:
        if safety_margin < 0:
            raise ValueError("safety_margin must be >= 0")
        self.node = node
        self.safety_margin = safety_margin
        self.clock_skew = clock_skew
        self.max_attempts = max_attempts
        #: If set, restart the node's round loop toward this chain height
        #: after a successful recovery (liveness restoration).
        self.resume_target = resume_target
        self.recoveries = 0
        node.env.process(self._loop(), f"recovery-daemon-{node.index}")

    def _pre_fork_round(self) -> int:
        return max(0, self.node.chain.height - self.safety_margin)

    def _loop(self):
        node = self.node
        if self.clock_skew:
            yield node.env.timeout(self.clock_skew)
        while True:
            yield node.env.timeout(node.params.recovery_interval)
            if not node.halted:
                continue
            session = RecoverySession(node, self._pre_fork_round())
            recovered = yield from session.run(self.max_attempts)
            session.close()
            if recovered:
                self.recoveries += 1
                if (self.resume_target is not None
                        and node.chain.height < self.resume_target):
                    node.start(self.resume_target)


def attach_recovery_daemons(nodes: list[Node], safety_margin: int = 1,
                            skew_per_node: float = 0.0,
                            resume_target: int | None = None
                            ) -> list[RecoveryDaemon]:
    """One daemon per node, with small per-node clock skews."""
    return [
        RecoveryDaemon(node, safety_margin=safety_margin,
                       clock_skew=index * skew_per_node,
                       resume_target=resume_target)
        for index, node in enumerate(nodes)
    ]
