"""Threshold-aware relay damping (the quorum-trimmed relay, section 8.4+).

The paper's gossip rule relays at most one message per key per step, but
that still floods every committee vote to every peer: once a node has
locally tallied more than ``T * tau`` weight for a ``(round, step,
value)``, every further vote for that key it forwards is pure redundancy
— its neighbors either crossed already or will cross from the quorum
this node has *already forwarded them*. The analytical census in
``repro.experiments.traffic`` (after makman568/algofun's ``pq`` model)
puts the minimal per-round consensus traffic at roughly a quarter of
what relay-to-threshold-and-beyond produces; go-algorand ships the same
trim for its vote bundles.

This module implements the damping decision:

* :class:`DampingTally` — the pure per-key weight accumulator (no node,
  no I/O), mirroring :func:`repro.baplus.voting.count_votes` exactly:
  one count per voter per ``(round, step)``, crossing when the summed
  weight strictly exceeds the step threshold. Being pure, the Hypothesis
  suite drives it through arbitrary arrival orders directly.
* :class:`RelayDamper` — the per-node wrapper consulted by
  ``Node._handle_vote`` after a vote is accepted locally: it weighs the
  vote with the same memoized ``VerifySort`` admission uses
  (:func:`repro.runtime.admission.sortition_weight`) and answers "still
  worth relaying?". Undecidable votes (future rounds, recovery rounds,
  foreign tips) are never counted and always relayed — suppressing what
  we cannot weigh is exactly the trap the undecidable-messages paper
  warns about.

Why safety holds (the FIFO argument, tested in
``tests/test_damping_equivalence.py``): a node suppresses a vote for a
key only *after* having already forwarded strictly more than ``T * tau``
weight for it; those forwarded votes left on the same links earlier, so
every neighbor receives a full quorum for the key no later than it would
have received the suppressed copy. Quorum is not the only thing a vote
can carry, though: Algorithm 9's common coin is the *minimum*
``H(sorthash || j)`` over every vote seen in a step, so a late vote
holding a fresh minimum is exempt from suppression and relays anyway —
otherwise two honest nodes could flip different coins in the very
adversarial binary-step scenarios the coin exists for. With bandwidth modeling off the
arrival prefix up to each node's threshold crossing is untouched, making
committed chains — timestamps, certificates and all — byte-identical
with damping on or off. With bandwidth modeling on, suppressed relays
free uplink serialization slots, so *timings* shift (that is the point)
while the agreed blocks, proposers, and seeds stay identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baplus.messages import VoteMessage
from repro.crypto.hashing import H, HASHLEN_BITS
from repro.sortition.roles import FINAL_STEP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.agent import Node

#: Mirrors :data:`repro.node.recovery.RECOVERY_ROUND_BASE` by value
#: (recovery sits above this module in the import graph).
RECOVERY_ROUND_BASE = 1_000_000_000

#: One past the largest possible coin hash (Algorithm 9 sentinel).
COIN_HASH_CEILING = 1 << HASHLEN_BITS


def coin_min_hash(sorthash: bytes, weight: int) -> int:
    """Algorithm 9's per-vote coin contribution: min H(sorthash || j).

    Matches :func:`repro.baplus.voting.common_coin` exactly — one hash
    per selected sub-user. Weight 0 contributes nothing (the ceiling).
    """
    best = COIN_HASH_CEILING
    for j in range(1, weight + 1):
        h = int.from_bytes(H(sorthash, j.to_bytes(8, "big")), "big")
        if h < best:
            best = h
    return best


class DampingTally:
    """Pure threshold bookkeeping for one node's relay decisions.

    Semantics are a verbatim mirror of ``count_votes``: per ``(round,
    step)`` each voter is counted once (whatever value their first
    counted vote carried), weights accumulate per value, and a key is
    *crossed* once its accumulated weight strictly exceeds the step's
    threshold. The crossing vote itself still relays — suppression
    starts with the first redundant vote after it.
    """

    __slots__ = ("step_threshold", "final_threshold", "_counts",
                 "_voters", "_crossed", "_coin_min")

    def __init__(self, step_threshold: float,
                 final_threshold: float) -> None:
        self.step_threshold = step_threshold
        self.final_threshold = final_threshold
        #: (round, step) -> value -> accumulated weight.
        self._counts: dict[tuple[int, str], dict[bytes, int]] = {}
        #: (round, step) -> voters already counted.
        self._voters: dict[tuple[int, str], set[bytes]] = {}
        #: Keys past their threshold: (round, step, value).
        self._crossed: set[tuple[int, str, bytes]] = set()
        #: (round, step) -> lowest Algorithm 9 coin hash seen so far.
        self._coin_min: dict[tuple[int, str], int] = {}

    def threshold_for(self, step: str) -> float:
        return (self.final_threshold if step == FINAL_STEP
                else self.step_threshold)

    def crossed(self, round_number: int, step: str, value: bytes) -> bool:
        return (round_number, step, value) in self._crossed

    def observe(self, round_number: int, step: str, value: bytes,
                voter: bytes, weight: int,
                coin_hash: int = COIN_HASH_CEILING) -> bool:
        """Count one vote; returns True iff the key is already crossed.

        The return value is the *suppression* verdict for this vote:
        False while the tally is at or below threshold (including the
        crossing vote itself), True for every vote after — except votes
        that lower the step's running Algorithm 9 minimum (their
        ``coin_hash``), which always relay: the common coin is the least
        ``H(sorthash || j)`` over *every* vote a node has seen, so a
        fresh minimum must keep propagating after quorum or nodes could
        flip different coins. The exemption costs ~ln(k) relays per key.
        """
        key = (round_number, step, value)
        step_key = (round_number, step)
        coin_relevant = coin_hash < self._coin_min.get(
            step_key, COIN_HASH_CEILING)
        if coin_relevant:
            self._coin_min[step_key] = coin_hash
        if weight <= 0:
            # Uncounted (undecidable) votes are never suppressed, even
            # when their (round, step, value) matches a crossed key —
            # they may carry weight at a node that *can* weigh them.
            return False
        if key in self._crossed:
            return not coin_relevant
        voters = self._voters.setdefault(step_key, set())
        if voter in voters:
            return False
        voters.add(voter)
        counts = self._counts.setdefault(step_key, {})
        total = counts.get(value, 0) + weight
        counts[value] = total
        if total > self.threshold_for(step):
            self._crossed.add(key)
        return False

    def prune_before(self, horizon: int) -> None:
        """Drop per-round state older than ``horizon`` (round hygiene).

        Recovery-round keys (>= :data:`RECOVERY_ROUND_BASE`) are dropped
        too: a concluded recovery never revisits its synthetic rounds.
        """
        for table in (self._counts, self._voters, self._coin_min):
            for step_key in [k for k in table
                             if k[0] < horizon
                             or k[0] >= RECOVERY_ROUND_BASE]:
                del table[step_key]
        self._crossed = {key for key in self._crossed
                         if horizon <= key[0] < RECOVERY_ROUND_BASE}

    def clear(self) -> None:
        self._counts.clear()
        self._voters.clear()
        self._crossed.clear()
        self._coin_min.clear()


class RelayDamper:
    """Per-node relay trimmer installed by :func:`attach_damping`.

    Consulted from ``Node._handle_vote`` *after* the vote passed the
    dedup/staleness/signature checks and entered the local buffer — a
    suppressed vote is still counted locally; only its forwarding is
    skipped. The node's own votes are observed via ``_gossip_vote`` so
    its tally matches what it has put on the wire.
    """

    __slots__ = ("node", "tally", "suppressed", "observed", "_metrics",
                 "_ctx_cache")

    def __init__(self, node: "Node") -> None:
        self.node = node
        params = node.params
        self.tally = DampingTally(params.step_vote_threshold,
                                  params.final_vote_threshold)
        #: Relays skipped / votes weighed-in (receipts for the census).
        self.suppressed = 0
        self.observed = 0
        self._metrics = (node.obs.metrics if node.obs is not None
                         else None)
        #: round -> the BAContext this node weighed that round with.
        #: Kept so steering votes trailing a commit (their round is
        #: already behind ``chain.next_round``) are weighed against the
        #: *exact* context used in-round, not a post-commit rebuild
        #: whose balances the committed block may have shifted.
        self._ctx_cache: dict[int, object] = {}

    # -- the decision --------------------------------------------------

    def _weight(self, vote: VoteMessage) -> int:
        """Committee weight if fully decidable here, else 0 (uncounted).

        Decidable means one of:

        * admission's test — the vote is for ``chain.next_round`` on our
          tip, not a recovery execution; or
        * the vote trails our commit by exactly one round (steering
          votes for steps "2"-"4" mostly arrive after their round is
          sealed) *and* we weighed that round in-round — then the cached
          :class:`BAContext` weighs it identically to how admission did
          while the round was live.

        Anything else gets weight 0, which :meth:`DampingTally.observe`
        treats as "do not count" — and an uncounted vote is never
        suppressed.
        """
        chain = self.node.chain
        round_number = vote.round_number
        if round_number >= RECOVERY_ROUND_BASE:
            return 0
        from repro.runtime.admission import sortition_weight
        if (round_number == chain.next_round
                and vote.prev_hash == chain.tip_hash):
            ctx = self.node._current_context(round_number)
            self._ctx_cache[round_number] = ctx
            return sortition_weight(self.node, vote, ctx)
        if (round_number == chain.next_round - 1 and round_number >= 1
                and vote.prev_hash == chain.block_at(round_number).prev_hash):
            ctx = self._ctx_cache.get(round_number)
            if ctx is None:
                return 0
            return sortition_weight(self.node, vote, ctx)
        return 0

    def should_relay(self, vote: VoteMessage) -> bool:
        """Weigh one accepted vote; False skips the forward."""
        weight = self._weight(vote)
        suppress = self.tally.observe(
            vote.round_number, vote.step, vote.value, vote.voter,
            weight, coin_min_hash(vote.sorthash, weight))
        if suppress:
            self.suppressed += 1
            if self._metrics is not None:
                self._metrics.inc("gossip.damped.vote")
            return False
        self.observed += 1
        return True

    def observe_own(self, vote: VoteMessage) -> None:
        """Count a vote this node cast itself (it broadcast it)."""
        self.observed += 1
        weight = self._weight(vote)
        self.tally.observe(vote.round_number, vote.step, vote.value,
                           vote.voter, weight,
                           coin_min_hash(vote.sorthash, weight))

    # -- round hygiene -------------------------------------------------

    def end_round(self, completed_round: int) -> None:
        """Prune per-round state; mirrors ``Node._prune``'s horizon."""
        horizon = completed_round
        if self.node.params.pipeline_final_step:
            horizon -= 1
        self.tally.prune_before(horizon)
        for round_number in [r for r in self._ctx_cache if r < horizon]:
            del self._ctx_cache[round_number]

    def on_chain_adopted(self) -> None:
        """Forget tallies after a fork-recovery adoption.

        The re-run rounds are new executions over a different context;
        stale crossings could suppress votes the new executions need.
        """
        self.tally.clear()
        self._ctx_cache.clear()

    def reset(self) -> None:
        """Drop volatile state (crash); counters survive as receipts."""
        self.tally.clear()
        self._ctx_cache.clear()


def attach_damping(node: "Node") -> RelayDamper:
    """Wire a :class:`RelayDamper` onto ``node``."""
    damper = RelayDamper(node)
    node.damper = damper
    return damper
