"""Resilient message ingress: admission control, flood budgets, quarantine.

The paper bounds per-step traffic by relaying only validated messages and
at most one message per key per step (sections 4 and 8.4), but a relay
callback alone is a thin line of defense: every delivered message still
costs the receiving node verification work, and messages whose validity
*cannot yet be decided* — future-round votes, votes for proposals not yet
seen — must be buffered and so become a memory-exhaustion vector ("the
undecidable-messages DoS", see PAPERS.md). This module closes the gap
with an explicit ingress layer in front of the router:

* **Sortition-gated admission** — a vote for the receiver's current round
  and chain tip is admitted only if its sortition proof verifies for the
  claimed ``(round, step)`` committee (section 5.2's ``VerifySort``).
  Votes that cannot be gated yet (future rounds, recovery rounds, foreign
  tips) are *admitted undecided* but bounded by the vote-buffer budget —
  rejecting them outright would break laggards and fork recovery, which
  is precisely the liveness trap the undecidable-messages paper points
  out.
* **Flood budgets** — each origin may contribute at most
  ``flood_budget_per_round`` admitted signature-valid votes per round;
  crossing the budget is itself an offense.
* **A peer-health table** — deterministic scores for invalid signatures,
  failed sortition proofs, duplicates, equivocation (self-certifying
  :mod:`repro.baplus.accountability` evidence), and flooding, with decay,
  local quarantine, and a network-wide :class:`QuarantineDirectory` that
  severs gossip links once enough independent nodes report the same
  offender. Quarantined users rejoin via the existing
  certificate-verified catch-up path (``resync_from_peers``, section
  8.3) — being severed never forfeits the chain, only the right to speak.

Blame assignment is framing-proof by construction:

==================  =======================================================
offense             who is penalized, and why it cannot frame an honest node
==================  =======================================================
invalid signature   the *immediate sender*: admission rejects these before
failed sortition    relay, so an honest node never forwards one — whoever
                    handed it to us produced it.
duplicate           the immediate sender, and only when it is also the
                    message's origin (honest relays can lose benign races).
equivocation        the *origin*, from two conflicting validly-signed
double vote         statements — self-certifying evidence nobody can forge
                    on an honest key's behalf.
flooding            the *origin*, counting only admitted signature-valid
                    votes whose ``voter`` matches the envelope origin.
==================  =======================================================

Admission is pure synchronous computation: no randomness, no scheduling,
no message sends. On an honest deployment it rejects exactly the
messages the protocol handlers already refuse to buffer or relay, so the
committed chain is byte-identical with admission on or off (tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.baplus.accountability import DoubleVoteEvidence, EquivocationEvidence
from repro.baplus.messages import VoteMessage
from repro.common.errors import ConfigError
from repro.network.message import Envelope
from repro.sortition.roles import FINAL_STEP, committee_role
from repro.sortition.selection import verify_sort

if TYPE_CHECKING:
    from repro.baplus.context import BAContext  # pragma: no cover - typing only
    from repro.network.gossip import GossipNetwork
    from repro.node.agent import Node

#: Votes at or above this round belong to fork-recovery BA* executions
#: (:data:`repro.node.recovery.RECOVERY_ROUND_BASE`); they use a context
#: ingress cannot reconstruct, so they are admitted signature-checked only.
RECOVERY_ROUND_BASE = 1_000_000_000

#: Offense kinds recognized by :class:`PeerHealth`.
OFFENSES = ("invalid_signature", "failed_sortition", "duplicate",
            "equivocation", "flood")

#: Cap on retained misbehavior evidence per node (adversaries can commit
#: offenses without bound; the receipts need not grow with them).
_MAX_EVIDENCE = 64


@dataclass
class AdmissionConfig:
    """Budgets and scoring weights of the ingress layer."""

    #: Max buffered votes per node (round-proximity eviction past this).
    vote_buffer_budget: int | None = 4096
    #: Max queued messages per egress lane per interface (tail-drop).
    egress_lane_budget: int | None = 10_000
    #: Admitted signature-valid votes per origin per round; crossing it
    #: is the ``flood`` offense. Honest traffic is two orders of
    #: magnitude below this (a committee member sends ~1 vote per step).
    flood_budget_per_round: int = 512
    #: Local score at which a peer is quarantined by this node.
    quarantine_threshold: float = 8.0
    #: Rounds a quarantine lasts (scaled by times served).
    quarantine_rounds: int = 2
    #: Network quarantines served before a permanent ban.
    ban_after_quarantines: int = 3
    #: Per-round multiplicative score decay (forgiveness).
    decay_factor: float = 0.5
    #: Fraction of nodes that must independently report an offender
    #: before the directory severs its links (min 2). Kept low because
    #: admission stops junk *before relay*: only an offender's direct
    #: neighbors ever witness link-level offenses.
    network_quarantine_fraction: float = 0.2
    #: Offense score weights.
    w_invalid_signature: float = 2.0
    w_failed_sortition: float = 2.0
    w_duplicate: float = 0.5
    w_equivocation: float = 4.0

    def validate(self) -> None:
        if (self.vote_buffer_budget is not None
                and self.vote_buffer_budget < 1):
            raise ConfigError("vote_buffer_budget must be >= 1 or None")
        if (self.egress_lane_budget is not None
                and self.egress_lane_budget < 1):
            raise ConfigError("egress_lane_budget must be >= 1 or None")
        if self.flood_budget_per_round < 1:
            raise ConfigError("flood_budget_per_round must be >= 1")
        if self.quarantine_threshold <= 0:
            raise ConfigError("quarantine_threshold must be positive")
        if self.quarantine_rounds < 1:
            raise ConfigError("quarantine_rounds must be >= 1")
        if self.ban_after_quarantines < 1:
            raise ConfigError("ban_after_quarantines must be >= 1")
        if not 0 <= self.decay_factor < 1:
            raise ConfigError("decay_factor must be in [0, 1)")
        if not 0 < self.network_quarantine_fraction <= 1:
            raise ConfigError(
                "network_quarantine_fraction must be in (0, 1]")

    def weight_of(self, offense: str) -> float:
        if offense == "invalid_signature":
            return self.w_invalid_signature
        if offense == "failed_sortition":
            return self.w_failed_sortition
        if offense == "duplicate":
            return self.w_duplicate
        if offense == "equivocation":
            return self.w_equivocation
        if offense == "flood":
            # Over-budget flooding is unambiguous: jump straight to the
            # threshold (decay otherwise never lets repeated sub-threshold
            # penalties accumulate to it).
            return self.quarantine_threshold
        raise ValueError(f"unknown offense {offense!r}")


class PeerHealth:
    """One node's deterministic reputation table over peer indices."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.scores: dict[int, float] = {}
        #: offense kind -> total times penalized (all peers).
        self.offense_counts: dict[str, int] = {}
        #: peer index -> round at which the local quarantine lifts.
        self.quarantined_until: dict[int, int] = {}

    def penalize(self, index: int, offense: str,
                 round_number: int) -> bool:
        """Score one offense; returns True if ``index`` is newly blocked."""
        self.offense_counts[offense] = (
            self.offense_counts.get(offense, 0) + 1)
        if index in self.quarantined_until:
            return False
        score = self.scores.get(index, 0.0) + self.config.weight_of(offense)
        self.scores[index] = score
        if score >= self.config.quarantine_threshold:
            self.quarantined_until[index] = (
                round_number + self.config.quarantine_rounds)
            del self.scores[index]
            return True
        return False

    def is_blocked(self, index: int) -> bool:
        return index in self.quarantined_until

    def end_round(self, completed_round: int) -> None:
        """Decay scores and release expired local quarantines."""
        decay = self.config.decay_factor
        if decay:
            self.scores = {index: score * decay
                           for index, score in self.scores.items()
                           if score * decay >= 0.01}
        else:
            self.scores.clear()
        released = [index for index, until in self.quarantined_until.items()
                    if completed_round >= until]
        for index in released:
            del self.quarantined_until[index]

    def reset(self) -> None:
        """Forget everything (a crashed node's volatile state)."""
        self.scores.clear()
        self.offense_counts.clear()
        self.quarantined_until.clear()


class QuarantineDirectory:
    """Network-wide quarantine from independent per-node reports.

    Nodes report offenders the moment their local health table blocks
    them; once ``max(2, ceil(n * fraction))`` distinct reporters agree,
    the directory severs the offender's gossip links (both directions,
    via :meth:`repro.network.gossip.GossipNetwork.set_quarantined`) for
    ``quarantine_rounds * times_served`` rounds — escalating, and a
    permanent ban after ``ban_after_quarantines`` strikes. Releases
    happen at round boundaries; the freed peer re-enters the topology at
    the next reshuffle and catches up via certificate-verified resync.

    All state lives in insertion-ordered dicts over ints and every
    decision happens at a commit boundary, so the directory is fully
    deterministic.
    """

    def __init__(self, network: "GossipNetwork", config: AdmissionConfig,
                 obs=None) -> None:
        self.network = network
        self.config = config
        self.obs = obs
        self._reports: dict[int, set[int]] = {}
        self._until: dict[int, int] = {}
        self._served: dict[int, int] = {}
        self.banned: set[int] = set()
        #: Total quarantine impositions (including escalations to bans).
        self.quarantines = 0

    @property
    def quarantined(self) -> frozenset[int]:
        return frozenset(self._until) | frozenset(self.banned)

    def required_reports(self) -> int:
        return max(2, math.ceil(self.network.num_nodes
                                * self.config.network_quarantine_fraction))

    def report(self, reporter: int, offender: int) -> None:
        if offender in self.banned or offender in self._until:
            return
        self._reports.setdefault(offender, set()).add(reporter)

    def end_round(self, completed_round: int) -> None:
        """Impose new quarantines and release expired ones."""
        changed = False
        need = self.required_reports()
        for offender in sorted(self._reports):
            if offender in self._until or offender in self.banned:
                continue
            if len(self._reports[offender]) < need:
                continue
            served = self._served.get(offender, 0) + 1
            self._served[offender] = served
            if served >= self.config.ban_after_quarantines:
                self.banned.add(offender)
            else:
                self._until[offender] = (
                    completed_round
                    + self.config.quarantine_rounds * served)
            self.quarantines += 1
            del self._reports[offender]
            changed = True
            if self.obs is not None:
                self.obs.emit("peer_quarantined", peer=offender,
                              scope="network", round=completed_round,
                              banned=offender in self.banned)
        for offender in sorted(self._until):
            if completed_round >= self._until[offender]:
                del self._until[offender]
                changed = True
        if changed:
            self.network.set_quarantined(self.quarantined)


def sortition_weight(node: "Node", vote: VoteMessage,
                     ctx: "BAContext | None" = None) -> int:
    """Committee weight of ``vote`` in ``node``'s current context.

    Section 5.2's ``VerifySort`` against the committee for the vote's
    ``(round, step)``, memoized through the shared verification cache
    when one is installed. The single weighing every ingress-side
    consumer shares: sortition-gated admission and the relay damper
    (:mod:`repro.runtime.damping`) must agree on a vote's weight or
    their decisions could diverge from the vote count itself.

    Callers are responsible for decidability (same round, same tip) —
    this helper weighs against ``node``'s context for the vote's round,
    or against an explicit ``ctx`` (the damper passes the round's
    in-round context when weighing votes that trail a commit).
    """
    if ctx is None:
        ctx = node._current_context(vote.round_number)
    tau = (node.params.tau_final if vote.step == FINAL_STEP
           else node.params.tau_step)
    role = committee_role(vote.round_number, vote.step)
    weight = ctx.weight_of(vote.voter)
    cache = getattr(node.backend, "cache", None)
    if cache is not None:
        return cache.memo_sortition(
            lambda: verify_sort(
                node.backend, vote.voter, vote.sorthash, vote.sortproof,
                ctx.seed, tau, role, weight, ctx.total_weight),
            vote.voter, vote.sorthash, vote.sortproof, ctx.seed,
            tau, role, weight, ctx.total_weight)
    return verify_sort(
        node.backend, vote.voter, vote.sorthash, vote.sortproof,
        ctx.seed, tau, role, weight, ctx.total_weight)


class AdmissionControl:
    """Per-node ingress filter installed on the gossip interface.

    ``admit(envelope, from_index)`` runs *after* duplicate suppression
    and *before* the inbox, the router, and any relay — a rejected
    message costs the node one verification and is never amplified.
    """

    def __init__(self, node: "Node", config: AdmissionConfig,
                 directory: QuarantineDirectory | None = None,
                 index_of: dict[bytes, int] | None = None) -> None:
        self.node = node
        self.config = config
        self.directory = directory
        #: Origin public key -> node index (for origin-blame offenses).
        self.index_of = index_of if index_of is not None else {}
        self.health = PeerHealth(config)
        self.admitted = 0
        self.rejected: dict[str, int] = {}
        #: Self-certifying misbehavior receipts (bounded).
        self.evidence: list = []
        #: (voter, round, step) -> first admitted vote (dedup + evidence).
        self._first_vote: dict[tuple[bytes, int, str], VoteMessage] = {}
        #: (proposer, round) seen priority announcements.
        self._seen_priorities: set[tuple[bytes, int]] = set()
        #: (proposer, round) -> first announced block hash.
        self._first_block: dict[tuple[bytes, int], bytes] = {}
        #: (proposer, round) pairs already caught equivocating.
        self._equivocators: set[tuple[bytes, int]] = set()
        #: Origin index -> admitted signature-valid votes this round.
        self._vote_counts: dict[int, int] = {}

    # -- bookkeeping ---------------------------------------------------

    def _reject(self, reason: str) -> bool:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return False

    def _penalize(self, index: int | None, offense: str) -> None:
        if index is None or index == self.node.index:
            return
        round_number = self.node.chain.next_round
        if self.health.penalize(index, offense, round_number):
            if self.directory is not None:
                self.directory.report(self.node.index, index)
            if self.node.obs is not None:
                self.node.obs.emit("peer_quarantined", node=self.node.index,
                                   peer=index, scope="local",
                                   offense=offense, round=round_number)

    def _record_evidence(self, item) -> None:
        if len(self.evidence) < _MAX_EVIDENCE:
            self.evidence.append(item)

    def _stale_horizon(self) -> int:
        horizon = self.node.chain.next_round
        if self.node.params.pipeline_final_step:
            horizon -= 1
        return horizon

    # -- the gate ------------------------------------------------------

    def admit(self, envelope: Envelope, from_index: int) -> bool:
        """Decide one delivered envelope; False drops it pre-router."""
        if self.health.is_blocked(from_index):
            return self._reject("quarantined")
        origin_index = self.index_of.get(envelope.origin)
        if origin_index is not None and origin_index != from_index \
                and self.health.is_blocked(origin_index):
            return self._reject("quarantined")
        kind = envelope.kind
        if kind == "vote":
            return self._admit_vote(envelope, from_index, origin_index)
        if kind == "priority":
            return self._admit_priority(envelope, from_index)
        if kind == "block":
            return self._admit_block(envelope, from_index, origin_index)
        # tx / fork / chain-sync and future kinds: their handlers carry
        # full validation; ingress contributes only the quarantine check.
        self.admitted += 1
        return True

    def _admit_vote(self, envelope: Envelope, from_index: int,
                    origin_index: int | None) -> bool:
        vote: VoteMessage = envelope.payload
        if vote.round_number < self._stale_horizon():
            return self._reject("stale")
        if not vote.verify_signature(self.node.backend):
            self._penalize(from_index, "invalid_signature")
            return self._reject("invalid_signature")
        if vote.voter != envelope.origin:
            # A valid signature under a spoofed origin: the envelope was
            # crafted, and admission rejects it before relay, so only the
            # crafter can be handing it to us.
            self._penalize(from_index, "invalid_signature")
            return self._reject("origin_mismatch")
        key = (vote.voter, vote.round_number, vote.step)
        first = self._first_vote.get(key)
        if first is not None:
            if first.value == vote.value:
                if from_index == origin_index:
                    self._penalize(from_index, "duplicate")
                return self._reject("duplicate")
            evidence = DoubleVoteEvidence(
                offender=vote.voter, round_number=vote.round_number,
                step=vote.step, first=first, second=vote)
            self._record_evidence(evidence)
            self._penalize(origin_index, "equivocation")
            return self._reject("equivocation")
        chain = self.node.chain
        if (vote.round_number == chain.next_round
                and vote.round_number < RECOVERY_ROUND_BASE
                and vote.prev_hash == chain.tip_hash):
            # Fully decidable: same round, same tip -> same seed and
            # weight table. Gate on the sortition proof (section 5.2).
            if self._committee_sort(vote) == 0:
                self._penalize(from_index, "failed_sortition")
                return self._reject("failed_sortition")
        # Future-round, recovery, and foreign-tip votes are undecidable
        # here; admit them signature-checked (the vote buffer's budget
        # and round-proximity eviction bound what they can cost us).
        if origin_index is not None:
            count = self._vote_counts.get(origin_index, 0) + 1
            self._vote_counts[origin_index] = count
            if count > self.config.flood_budget_per_round:
                self._penalize(origin_index, "flood")
                return self._reject("flood")
        self._first_vote[key] = vote
        self.admitted += 1
        return True

    def _committee_sort(self, vote: VoteMessage) -> int:
        return sortition_weight(self.node, vote)

    def _admit_priority(self, envelope: Envelope, from_index: int) -> bool:
        message = envelope.payload
        if message.round_number < self.node.chain.next_round:
            return self._reject("stale")
        key = (message.proposer, message.round_number)
        if key in self._seen_priorities:
            return self._reject("duplicate")
        if message.round_number == self.node.chain.next_round:
            ctx = self.node._current_context(message.round_number)
            if not message.verify(
                    self.node.backend, ctx.seed,
                    self.node.params.tau_proposer,
                    ctx.weight_of(message.proposer), ctx.total_weight):
                self._penalize(from_index, "failed_sortition")
                return self._reject("failed_sortition")
        self._seen_priorities.add(key)
        self.admitted += 1
        return True

    def _admit_block(self, envelope: Envelope, from_index: int,
                     origin_index: int | None) -> bool:
        block = envelope.payload
        if block.round_number < self.node.chain.next_round:
            return self._reject("stale")
        proposer = block.proposer
        if proposer is None:
            self.admitted += 1
            return True
        key = (proposer, block.round_number)
        if key in self._equivocators:
            return self._reject("equivocation")
        first_hash = self._first_block.get(key)
        if first_hash is None:
            self._first_block[key] = block.block_hash
        elif first_hash != block.block_hash:
            # One proposal per proposer per round. The *second* version is
            # still admitted — the proposal tracker must see it to discard
            # both per section 10.4 — but it is scored here and every
            # further version is rejected at ingress.
            self._equivocators.add(key)
            self._record_evidence(EquivocationEvidence(
                offender=proposer, round_number=block.round_number,
                first_hash=first_hash, second_hash=block.block_hash))
            if envelope.origin == proposer:
                self._penalize(origin_index, "equivocation")
        elif from_index == origin_index:
            # Same block re-announced under a fresh message id.
            self._penalize(from_index, "duplicate")
            return self._reject("duplicate")
        else:
            return self._reject("duplicate")
        self.admitted += 1
        return True

    # -- round hygiene -------------------------------------------------

    def end_round(self, completed_round: int) -> None:
        """Prune per-round state; mirrors ``Node._prune``'s horizon."""
        horizon = completed_round
        if self.node.params.pipeline_final_step:
            horizon -= 1
        self._vote_counts.clear()
        self._first_vote = {
            key: vote for key, vote in self._first_vote.items()
            if horizon <= key[1] < RECOVERY_ROUND_BASE}
        self._seen_priorities = {key for key in self._seen_priorities
                                 if key[1] >= horizon}
        self._first_block = {key: value
                             for key, value in self._first_block.items()
                             if key[1] >= horizon}
        self._equivocators = {key for key in self._equivocators
                              if key[1] >= horizon}
        self.health.end_round(completed_round)

    def on_chain_adopted(self) -> None:
        """Forget per-round vote state after a recovery/catch-up adoption.

        Fork recovery (section 8.2) legitimately re-runs rounds: after
        adopting the winning fork, every participant votes *again* at
        round numbers it already voted in, generally for different
        values. Those re-votes are not equivocation — the node's entire
        view of "round r" changed — so the dedup tables from the old
        view must not be allowed to frame honest peers. Health scores
        and counters survive; only round-keyed state is dropped.
        """
        self._first_vote.clear()
        self._seen_priorities.clear()
        self._first_block.clear()
        self._equivocators.clear()
        self._vote_counts.clear()

    def reset(self) -> None:
        """Drop volatile state (crash); counters survive as receipts."""
        self.on_chain_adopted()
        self.health.reset()


class BatchVerifier:
    """Per-drain batch signature verification for the gossip fabric.

    Installed as ``network.batch_verifier``: the event loop calls it
    once per same-instant delivery group (one
    :class:`repro.sim.loop.BatchSchedule` walk) with the group's
    ``(dst, envelope)`` payloads, *before* any of them is delivered.
    One pass over the group's distinct vote signatures fills the shared
    :class:`~repro.runtime.cache.VerificationCache`, so the per-envelope
    checks admission and the vote handler then run — synchronously,
    validate-before-relay, exactly as without batching — are all cache
    hits. Semantics are untouched by construction: the only observable
    is verification *cost*, which is what the aggregated population is
    buying down.
    """

    __slots__ = ("_backend", "_cache", "groups", "votes_primed")

    def __init__(self, backend, cache) -> None:
        #: The *inner* (uncached) backend — primes must do real work
        #: exactly once, not recurse through the cache wrapper.
        self._backend = backend
        self._cache = cache
        self.groups = 0
        self.votes_primed = 0

    def __call__(self, payloads: list) -> None:
        triples = None
        seen = None
        for item in payloads:
            envelope: Envelope = item[1]
            if envelope.kind != "vote":
                continue
            vote: VoteMessage = envelope.payload
            key = (vote.voter, vote.signature)
            if triples is None:
                triples = []
                seen = set()
            if key in seen:
                continue
            seen.add(key)
            triples.append((vote.voter, vote.signing_payload(),
                            vote.signature))
        if not triples:
            return
        self.groups += 1
        self.votes_primed += self._cache.prime_signatures(self._backend,
                                                          triples)


def attach_admission(node: "Node", config: AdmissionConfig | None = None,
                     directory: QuarantineDirectory | None = None,
                     index_of: dict[bytes, int] | None = None
                     ) -> AdmissionControl:
    """Wire an :class:`AdmissionControl` onto ``node``'s interface."""
    if config is None:
        config = AdmissionConfig()
    config.validate()
    admission = AdmissionControl(node, config, directory=directory,
                                 index_of=index_of)
    node.admission = admission
    node.interface.ingress = admission.admit
    if config.vote_buffer_budget is not None:
        node.buffer.budget_messages = config.vote_buffer_budget
    return admission
