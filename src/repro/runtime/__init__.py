"""Message-path runtime: routed dispatch + shared verification cache.

This package is the small runtime layer under the Algorand node: a
:class:`MessageRouter` that subsystems register gossip handlers with
(replacing hard-coded dispatch chains), a :class:`VerificationCache`
that memoizes context-independent crypto checks across every node of a
simulation (the paper's section 10.1 observation that verification
dominates CPU, applied to the simulator itself), and an
:class:`AdmissionControl` ingress layer that gates every delivered
envelope on sortition proofs, duplicate/equivocation checks, and peer
health before the router sees it. The cache is wired through
:class:`repro.crypto.backend.CachedBackend`, which works over both the
real Ed25519 backend and the fast simulation backend.
"""

from repro.runtime.admission import (
    AdmissionConfig,
    AdmissionControl,
    PeerHealth,
    QuarantineDirectory,
    attach_admission,
)
from repro.runtime.cache import VerificationCache
from repro.runtime.router import MessageRouter

__all__ = [
    "AdmissionConfig",
    "AdmissionControl",
    "MessageRouter",
    "PeerHealth",
    "QuarantineDirectory",
    "VerificationCache",
    "attach_admission",
]
