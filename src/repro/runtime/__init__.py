"""Message-path runtime: routed dispatch + shared verification cache.

This package is the small runtime layer under the Algorand node: a
:class:`MessageRouter` that subsystems register gossip handlers with
(replacing hard-coded dispatch chains), and a :class:`VerificationCache`
that memoizes context-independent crypto checks across every node of a
simulation (the paper's section 10.1 observation that verification
dominates CPU, applied to the simulator itself). The cache is wired
through :class:`repro.crypto.backend.CachedBackend`, which works over
both the real Ed25519 backend and the fast simulation backend.
"""

from repro.runtime.cache import VerificationCache
from repro.runtime.router import MessageRouter

__all__ = [
    "MessageRouter",
    "VerificationCache",
]
