"""Shared verification cache for the gossip hot path.

Section 10.1 of the paper models crypto verification as the dominant CPU
cost of running Algorand. In a simulated deployment the cost multiplies:
a message relayed through the gossip network reaches every node, and a
naive reproduction re-verifies its VRF proof and signature at each of
the ~n arrivals. Those checks are *context-independent* — the same
``(public key, bytes, proof)`` triple verifies identically everywhere —
so one simulation-wide memo table collapses n verifications into one.

What is safe to memoize and what is not:

* **Safe**: signature validity of exact bytes, VRF proof validity of
  exact ``(public, proof, alpha)``. Cache keys are the *full
  verification inputs*, never the envelope ``msg_id`` alone — a message
  id is sender-assigned and an adversary who reuses one on different
  contents must not inherit the original's verdict (see the equivocation
  tests). Negative results are memoized too: a forged signature is
  forged at every node.
* **Not safe**: anything evaluated against node-local context — seed
  lookback, weight tables, one-vote-per-key-per-step, equivocation
  tracking, balance checks. Those stay per-node in the protocol layer.

Hit/miss counters feed :class:`repro.crypto.counting.CryptoOpCounts` so
the section 10.3 CPU-cost proxy can report how much verification work
the cache removed.
"""

from __future__ import annotations

from itertools import islice
from typing import Any

#: Key-namespace tags: one cache holds every kind of check.
_SIG = 0
_VRF = 1
_SORT = 2


class VerificationCache:
    """Memo table for context-independent crypto checks.

    One instance is shared by every node of a simulation (plumbed through
    :class:`repro.crypto.backend.CachedBackend`). Entries are bounded:
    past ``max_entries`` the oldest quarter is evicted, which is harmless
    (a miss merely re-verifies) and keeps adversarial floods of unique
    invalid messages from growing memory without bound.
    """

    __slots__ = ("_entries", "max_entries", "hits", "misses",
                 "negative_hits", "sort_hits", "sort_misses",
                 "batch_primed", "counts")

    def __init__(self, max_entries: int = 1 << 18,
                 counts: Any = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._entries: dict[tuple, tuple] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: Sortition-verdict memo traffic, counted apart from the
        #: signature/VRF hits: a sortition miss runs ``verify_sort``,
        #: whose inner VRF check is *itself* cached, so folding it into
        #: ``misses`` would break the "every miss reached the inner
        #: backend" accounting invariant.
        self.sort_hits = 0
        self.sort_misses = 0
        #: Hits that replayed a memoized *failure* (forged signature /
        #: bad VRF proof seen before) — the adversarial-flood share of
        #: the cache's work, reported separately in trace snapshots.
        self.negative_hits = 0
        #: Verdicts stored by :meth:`prime_signatures` (batched drains);
        #: kept out of ``hits``/``misses`` so those preserve the "every
        #: miss reached the inner backend *from a delivery*" accounting.
        self.batch_primed = 0
        #: Optional :class:`repro.crypto.counting.CryptoOpCounts` (or any
        #: object with ``cache_hits``/``cache_misses``) to mirror into.
        self.counts = counts

    def __len__(self) -> int:
        return len(self._entries)

    # -- bookkeeping ---------------------------------------------------

    def _record_hit(self) -> None:
        self.hits += 1
        if self.counts is not None:
            self.counts.cache_hits += 1

    def _record_miss(self) -> None:
        self.misses += 1
        if self.counts is not None:
            self.counts.cache_misses += 1
        if len(self._entries) >= self.max_entries:
            drop = max(1, len(self._entries) // 4)
            for key in list(islice(iter(self._entries), drop)):
                del self._entries[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int | float]:
        """Counters for benchmarks and experiment reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "sort_hits": self.sort_hits,
            "sort_misses": self.sort_misses,
            "batch_primed": self.batch_primed,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }

    # -- memoized checks -----------------------------------------------

    def verify(self, backend: Any, public: bytes, message: bytes,
               signature: bytes) -> None:
        """Memoized ``backend.verify``; re-raises cached failures."""
        key = (_SIG, public, message, signature)
        entry = self._entries.get(key)
        if entry is not None:
            self._record_hit()
            if entry[0] is not None:
                self.negative_hits += 1
                raise entry[0]
            return
        self._record_miss()
        try:
            backend.verify(public, message, signature)
        except Exception as exc:
            self._entries[key] = (exc,)
            raise
        self._entries[key] = (None,)

    def prime_signatures(self, backend: Any,
                         triples: "list[tuple[bytes, bytes, bytes]]") -> int:
        """Batched warm-up: verify unseen ``(public, message, signature)``
        triples once and memoize the verdicts.

        Used by the admission layer's per-drain batch verification: one
        pass over a delivery group's vote signatures replaces that
        group's per-envelope cache misses. Verdicts (including
        failures) land in the same key space :meth:`verify` reads, so
        the subsequent per-envelope checks are guaranteed hits. Purely
        a cache effect — simulation semantics cannot observe it.

        Returns the number of triples actually verified (cache fills).
        """
        entries = self._entries
        primed = 0
        for public, message, signature in triples:
            key = (_SIG, public, message, signature)
            if key in entries:
                continue
            primed += 1
            try:
                backend.verify(public, message, signature)
            except Exception as exc:
                entries[key] = (exc,)
            else:
                entries[key] = (None,)
        if primed and len(entries) >= self.max_entries:
            drop = max(1, len(entries) // 4)
            for stale in list(islice(iter(entries), drop)):
                del entries[stale]
        self.batch_primed += primed
        return primed

    def vrf_verify(self, backend: Any, public: bytes, proof: bytes,
                   alpha: bytes) -> bytes:
        """Memoized ``backend.vrf_verify``; re-raises cached failures."""
        key = (_VRF, public, proof, alpha)
        entry = self._entries.get(key)
        if entry is not None:
            self._record_hit()
            if entry[0] is not None:
                self.negative_hits += 1
                raise entry[0]
            return entry[1]
        self._record_miss()
        try:
            beta = backend.vrf_verify(public, proof, alpha)
        except Exception as exc:
            self._entries[key] = (exc, None)
            raise
        self._entries[key] = (None, beta)
        return beta

    def memo_sortition(self, compute, public: bytes, vrf_hash: bytes,
                       vrf_proof: bytes, seed: bytes, tau: float,
                       role: bytes, weight: int, total_weight: int) -> int:
        """Memoized sortition verdict (``verify_sort``'s sub-user count).

        The full verification context — seed, role, tau, and the weight
        pair — is part of the key, so the verdict is context-independent
        in exactly the sense the module docstring requires: every node
        holding the same chain state computes the same inputs, and one
        CDF walk serves all of them. ``compute`` is a thunk running the
        real :func:`repro.sortition.selection.verify_sort`.
        """
        key = (_SORT, public, vrf_hash, vrf_proof, seed, tau, role,
               weight, total_weight)
        entry = self._entries.get(key)
        if entry is not None:
            self.sort_hits += 1
            return entry[0]
        self.sort_misses += 1
        if len(self._entries) >= self.max_entries:
            drop = max(1, len(self._entries) // 4)
            for stale in list(islice(iter(self._entries), drop)):
                del self._entries[stale]
        j = int(compute())
        self._entries[key] = (j,)
        return j
