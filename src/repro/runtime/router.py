"""Declarative gossip-message dispatch.

The node used to route envelopes through a hard-coded ``if/elif`` chain
plus an ad-hoc ``extra_handlers`` dict that protocol extensions (fork
recovery, chain sync) mutated behind its back. :class:`MessageRouter`
replaces both: every subsystem *registers* a handler for the message
kinds it owns, and the network layer calls one dispatch entry point.

Handlers keep the relay-policy contract of section 8.4: they receive the
envelope's payload, perform validate-before-relay, and return ``True``
iff the message should be forwarded to neighbors. Unknown kinds are
counted and dropped (never relayed) — gossip must not amplify messages
nobody can validate.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import NetworkError
from repro.network.message import Envelope

#: A handler takes the envelope payload, returns True to relay.
Handler = Callable[[Any], bool]


class MessageRouter:
    """Kind -> handler dispatch table for gossip envelopes."""

    __slots__ = ("_handlers", "unknown_kinds", "metrics")

    def __init__(self) -> None:
        self._handlers: dict[str, Handler] = {}
        #: Count of envelopes dropped for lack of a registered handler.
        self.unknown_kinds = 0
        #: Optional :class:`repro.obs.MetricsRegistry`: when set, every
        #: dispatch/relay/unknown-kind is counted per message kind. The
        #: default ``None`` keeps the hot path at one extra comparison.
        self.metrics = None

    def register(self, kind: str, handler: Handler, *,
                 replace: bool = False) -> None:
        """Register ``handler`` for ``kind``.

        Raises :class:`NetworkError` on double registration unless
        ``replace`` is set — two subsystems silently fighting over one
        message kind is a wiring bug, not a runtime condition.
        """
        if not kind:
            raise NetworkError("message kind must be non-empty")
        if not replace and kind in self._handlers:
            raise NetworkError(
                f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    def unregister(self, kind: str) -> None:
        """Remove the handler for ``kind`` (no-op if absent)."""
        self._handlers.pop(kind, None)

    def is_registered(self, kind: str) -> bool:
        return kind in self._handlers

    def kinds(self) -> frozenset[str]:
        """The currently routable message kinds."""
        return frozenset(self._handlers)

    def dispatch(self, envelope: Envelope) -> bool:
        """Route one envelope; returns the handler's relay decision."""
        metrics = self.metrics
        handler = self._handlers.get(envelope.kind)
        if handler is None:
            self.unknown_kinds += 1
            if metrics is not None:
                metrics.inc("router.unknown_kind")
            return False
        if metrics is not None:
            metrics.inc("router.dispatch." + envelope.kind)
        relay = handler(envelope.payload)
        if metrics is not None:
            if relay:
                metrics.inc("router.relayed." + envelope.kind)
            else:
                metrics.inc("router.denied." + envelope.kind)
        return relay
