"""Offline conformance checker for recorded JSONL traces.

Usage::

    python -m repro.conformance trace.jsonl [--verdict out.json]
        [--require-complete] [--quiet]

Replays every node's event stream through the reference BA* state
machine and prints the verdict. Exit status: 0 when the trace conforms,
1 on any violation (or, with ``--require-complete``, on an incomplete
trace), 2 on usage errors. CI runs this against the recorded smoke
traces and uploads the verdict JSON as an artifact.

A trace that *lost events* (bounded bus with sinks attached after the
bound, or a sink with ``max_records``) is flagged: the machine may then
report artifacts of the loss rather than real bugs, and a clean verdict
over an incomplete trace proves nothing. Completeness is read from the
trace's snapshot record (``dropped_events`` / ``obs.sink_dropped``).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.conformance.monitor import ConformanceMonitor
from repro.obs.sink import read_trace


def trace_losses(snapshot: dict | None) -> int:
    """Events the recorded trace is known to be missing."""
    if not snapshot:
        return 0
    dropped = int(snapshot.get("dropped_events", 0) or 0)
    gauges = snapshot.get("gauges", {})
    dropped += int(gauges.get("obs.sink_dropped", 0) or 0)
    return dropped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Check a recorded JSONL trace against the reference "
                    "BA* state machine.")
    parser.add_argument("trace", help="JSONL trace file to check")
    parser.add_argument("--verdict", default=None,
                        help="also write the verdict JSON to this path")
    parser.add_argument("--require-complete", action="store_true",
                        help="fail (exit 1) if the trace lost events")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the one-line verdict")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"error: trace file {path} does not exist")
        return 2
    events, snapshot = read_trace(path)

    monitor = ConformanceMonitor()
    monitor.feed(events)
    losses = trace_losses(snapshot)
    complete = losses == 0
    verdict = monitor.verdict(
        trace_complete=complete or not args.require_complete)

    status = "CONFORMS" if monitor.ok else "VIOLATIONS"
    print(f"{path}: {status} — {verdict.events_checked} protocol events "
          f"across {verdict.nodes} nodes, "
          f"{len(monitor.violations)} violation(s)")
    if not complete:
        print(f"WARNING: trace is INCOMPLETE — {losses} event(s) were "
              f"dropped before reaching this file; a clean verdict over "
              f"a lossy trace is not a proof"
              + (" (--require-complete: failing)"
                 if args.require_complete else ""))
    if not args.quiet:
        for violation in monitor.violations[:50]:
            print(f"  [{violation.rule}] t={violation.t:.2f} "
                  f"node={violation.node} round={violation.round} "
                  f"step={violation.step}: {violation.detail}")
        if len(monitor.violations) > 50:
            print(f"  ... and {len(monitor.violations) - 50} more")
        open_steps = verdict.open_steps
        if open_steps:
            print(f"  open intervals at end of trace (informational): "
                  f"{open_steps}")
    if args.verdict:
        Path(args.verdict).write_text(verdict.to_json() + "\n",
                                      encoding="utf-8")
        print(f"verdict written to {args.verdict}")

    if not monitor.ok:
        return 1
    if args.require_complete and not complete:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
