"""Online conformance checking over the trace stream.

:class:`ConformanceMonitor` implements the
:class:`repro.obs.bus.TraceSink` protocol (shaped like
:class:`repro.chaos.monitor.InvariantMonitor`): attach it with one
``bus.add_sink(monitor)`` and every emitted event is replayed through
that node's :class:`~repro.conformance.machine.NodeMachine` the instant
it happens. Violations are recorded with full context — never raised —
so a red run still completes and renders its verdict.

The monitor is a pure observer: it never touches the bus, the clock,
randomness, or scheduling, so a monitored run commits chains
byte-identical to an unmonitored one (tested alongside the obs
pure-observer suite).
"""

from __future__ import annotations

import json

from repro.conformance.machine import (
    PROTOCOL_EVENT_KINDS,
    NodeMachine,
    Violation,
)


class ConformanceVerdict:
    """Deterministic summary of one conformance check."""

    def __init__(self, *, ok: bool, events_checked: int, nodes: int,
                 violations: list[dict], open_steps: dict[str, list],
                 trace_complete: bool = True) -> None:
        self.ok = ok
        self.events_checked = events_checked
        self.nodes = nodes
        self.violations = violations
        #: node -> [[round, step], ...] intervals open at end of trace
        #: (informational: runs are truncated, pipelined finals outlive
        #: them — an open interval at end-of-trace is not a violation).
        self.open_steps = open_steps
        #: False when the source trace lost events (bounded sink/bus):
        #: a clean verdict over an incomplete trace is not a proof.
        self.trace_complete = trace_complete

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "events_checked": self.events_checked,
            "nodes": self.nodes,
            "violations": self.violations,
            "open_steps": self.open_steps,
            "trace_complete": self.trace_complete,
        }

    def to_json(self) -> str:
        """Stable serialization: same trace, same bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class ConformanceMonitor:
    """TraceBus sink replaying each node's stream through the machine."""

    def __init__(self, *, registry=None,
                 max_violations: int = 1000) -> None:
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` that
        #: receives ``conformance.*`` counters (usually ``bus.metrics``).
        self.registry = registry
        #: Stop recording (not checking) beyond this many violations —
        #: a systematically wrong trace would otherwise accumulate one
        #: violation per event.
        self.max_violations = max_violations
        self.machines: dict[int | None, NodeMachine] = {}
        self.violations: list[Violation] = []
        self.events_checked = 0
        self.dropped_violations = 0

    # -- TraceSink protocol --------------------------------------------

    def write_event(self, record: dict) -> None:
        if record.get("kind") not in PROTOCOL_EVENT_KINDS:
            return
        self.events_checked += 1
        node = record.get("node")
        machine = self.machines.get(node)
        if machine is None:
            machine = self.machines[node] = NodeMachine(node)
        found = machine.feed(record)
        if found:
            self._record(found)

    def write_snapshot(self, snapshot: dict) -> None:
        """Snapshots carry counters, not protocol events."""

    def close(self) -> None:
        """The bus owns the run's end; verdicts are pulled on demand."""

    # -- recording -----------------------------------------------------

    def _record(self, found: list[Violation]) -> None:
        for violation in found:
            if len(self.violations) >= self.max_violations:
                self.dropped_violations += 1
                continue
            self.violations.append(violation)
            if self.registry is not None:
                self.registry.inc("conformance.violations")
                self.registry.inc("conformance.violation."
                                  + violation.rule)

    # -- offline -------------------------------------------------------

    def feed(self, events: list[dict]) -> None:
        """Replay a recorded trace (list of event dicts) through checks."""
        for record in events:
            self.write_event(record)

    # -- verdict -------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations and not self.dropped_violations

    def open_steps(self) -> dict[str, list]:
        out: dict[str, list] = {}
        for node in sorted(self.machines,
                           key=lambda n: (n is None, n)):
            intervals = self.machines[node].open_steps()
            if intervals:
                out[str(node)] = [[rnd, step] for rnd, step in intervals]
        return out

    def verdict(self, *, trace_complete: bool = True) -> ConformanceVerdict:
        """Render the deterministic verdict for everything seen so far."""
        violations = [violation.to_dict()
                      for violation in self.violations]
        if self.dropped_violations:
            violations.append({
                "rule": "violations-truncated", "t": 0.0, "node": None,
                "round": None, "step": None, "kind": "",
                "phase": "", "detail":
                f"{self.dropped_violations} further violation(s) beyond "
                f"the max_violations={self.max_violations} cap"})
        return ConformanceVerdict(
            ok=self.ok and trace_complete,
            events_checked=self.events_checked,
            nodes=len(self.machines),
            violations=violations,
            open_steps=self.open_steps(),
            trace_complete=trace_complete,
        )

    def harvest(self, registry) -> None:
        """Write summary gauges into ``registry`` (snapshot time)."""
        registry.set_counter("conformance.events_checked",
                             self.events_checked)
        registry.set_counter("conformance.violations",
                             len(self.violations)
                             + self.dropped_violations)
        registry.set_gauge("conformance.nodes", len(self.machines))
