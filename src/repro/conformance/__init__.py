"""Trace-conformance harness: a reference BA* state machine.

PRs 1-6 rewrote the hot path repeatedly with chain byte-identity as the
main safety net; byte-identical chains can still hide wrong
*intermediate* protocol behaviour. This package closes that gap:

* :mod:`repro.conformance.machine` — a standalone, dependency-free
  labelled transition system for one node's BA* protocol state, with
  explicit legal-transition tables (see ``docs/CONFORMANCE.md``);
* :mod:`repro.conformance.monitor` — :class:`ConformanceMonitor`, a
  :class:`~repro.obs.bus.TraceSink` that checks every node's event
  stream online as it is emitted and renders a deterministic
  :class:`ConformanceVerdict`;
* ``python -m repro.conformance trace.jsonl`` — the offline checker for
  recorded JSONL traces (CI artifacts, old runs).

The harness attaches a monitor automatically whenever a simulation has
a trace bus (``SimulationConfig.conformance="auto"``); chaos scenario
verdicts include conformance violations alongside the safety/liveness
invariants.
"""

from repro.conformance.machine import (
    NodeMachine,
    PROTOCOL_EVENT_KINDS,
    Violation,
    step_order,
)
from repro.conformance.monitor import ConformanceMonitor, ConformanceVerdict

__all__ = [
    "ConformanceMonitor",
    "ConformanceVerdict",
    "NodeMachine",
    "PROTOCOL_EVENT_KINDS",
    "Violation",
    "step_order",
]
