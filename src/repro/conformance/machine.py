"""Reference BA* state machine for one node's trace-event stream.

This module is **standalone and dependency-free** (stdlib only, no
imports from the rest of the tree): it is the specification the
implementation is checked against, so it must not share code with the
implementation. The step names and round conventions mirror the paper
(§7-§8) and the constants in :mod:`repro.sortition.roles` /
:mod:`repro.node.recovery` by value, not by import.

One :class:`NodeMachine` tracks a single node's protocol state as a
small labelled transition system over the phases

``IDLE -> PROPOSAL -> BA -> IDLE``  (one round)

with terminal/exceptional phases ``HALTED`` (MaxSteps exhausted),
``CRASHED`` (fail-stop), and ``RETIRED`` (aggregated-population
teardown). Feeding it one event either advances the state or returns a
:class:`Violation` naming the broken rule. The machine is
**prefix-closed**: a trace may end in any state (runs are truncated by
time limits, pipelined final counts legitimately outlive the run), so
only *events*, never end-of-trace, produce violations.

Legal transitions (the tables the guards implement):

==================  =========================  =======================
event               legal in phases            next phase
==================  =========================  =======================
round_start         IDLE, HALTED, RETIRED      PROPOSAL
block_proposed      PROPOSAL (once)            PROPOSAL
proposal_resolved   PROPOSAL                   BA
vote_cast           BA (current round) [1]     unchanged
step_enter          BA (current round) [2]     unchanged
step_exit           any with a matching open   unchanged
                    interval
round_commit        BA (current round) [3]     IDLE
final_certified     any but CRASHED/RETIRED    unchanged
                    [4]
consensus_halted    BA (current round)         HALTED
node_crashed        any but CRASHED            CRASHED
node_restarted      CRASHED                    IDLE
catchup_adopted     IDLE, BA [5]               IDLE
agent_retired       any but CRASHED            RETIRED [6]
==================  =========================  =======================

[1] At most one vote per (round, step); steps need not be entered
    (Algorithm 8's next-three steering and the step-1 final vote are
    votes without a local count). Recovery-lane rounds
    (>= :data:`RECOVERY_ROUND_BASE`) are checked per-round in any
    phase but CRASHED/RETIRED.
[2] Steps are entered in protocol order — ``reduction_one``,
    ``reduction_two``, then numeric steps ``1..k`` with no gaps, then
    ``final`` — each at most once per round, with at most one non-final
    step open at a time. ``final`` may additionally be entered after
    the round committed (§10.2 pipelining), including concurrently for
    several past rounds.
[3] A commit must have entered+exited ``reduction_one``,
    ``reduction_two`` and binary step 1, hold no open non-final step,
    and its deciding step (the ``binary_steps`` field) must have exited
    with ``timed_out == False`` (a quorum, not a timeout, decides);
    ``consensus == "final"`` additionally requires a non-timeout
    ``final`` exit. Committed rounds are strictly increasing.
[4] ``final_certified`` needs the round committed and a non-timeout
    ``final`` exit for it (the pipelined count landed a quorum).
[5] From BA only via the ConsensusHalted -> resync path, which leaves
    no open steps.
[6] In the aggregated population a transient committing its own
    boundary retires *during* its commit hook, so the machine grants a
    one-event grace: the ``round_commit`` for exactly the in-flight
    round may still arrive after ``agent_retired``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Mirrors repro.sortition.roles (by value; this module must not import
# the implementation it specifies).
REDUCTION_ONE = "reduction_one"
REDUCTION_TWO = "reduction_two"
FINAL_STEP = "final"
#: Mirrors repro.node.recovery.RECOVERY_ROUND_BASE: fork-recovery BA*
#: executions use round numbers at/above this base; they run while the
#: node's normal lifecycle is elsewhere (often HALTED), so the machine
#: checks them as an independent per-round lane.
RECOVERY_ROUND_BASE = 1_000_000_000

# Phases of the node lifecycle.
IDLE = "IDLE"
PROPOSAL = "PROPOSAL"
BA = "BA"
HALTED = "HALTED"
CRASHED = "CRASHED"
RETIRED = "RETIRED"


@dataclass(frozen=True)
class Violation:
    """One conformance breach, with enough context to reproduce it."""

    rule: str
    t: float
    node: int | None
    round: int | None
    step: str | None
    kind: str
    phase: str
    detail: str

    def to_dict(self) -> dict:
        return {"rule": self.rule, "t": self.t, "node": self.node,
                "round": self.round, "step": self.step, "kind": self.kind,
                "phase": self.phase, "detail": self.detail}


def step_order(step: str) -> int | None:
    """Total order of BA* steps; ``None`` for unknown labels."""
    if step == REDUCTION_ONE:
        return -2
    if step == REDUCTION_TWO:
        return -1
    if step == FINAL_STEP:
        return 1_000_000
    try:
        value = int(step)
    except (TypeError, ValueError):
        return None
    return value if value >= 1 else None


@dataclass
class _RoundSteps:
    """Per-round step bookkeeping (normal current round or recovery)."""

    entered: set[str] = field(default_factory=set)
    #: step -> exit record fields (timed_out, seconds, ...).
    exited: dict[str, dict] = field(default_factory=dict)
    #: currently open non-final step (enter seen, no exit yet).
    open_step: str | None = None
    voted: set[str] = field(default_factory=set)


class NodeMachine:
    """The reference LTS for one node; feed events, collect violations."""

    def __init__(self, node: int | None) -> None:
        self.node = node
        self.phase = IDLE
        #: Round in progress (PROPOSAL/BA phases only).
        self.round: int | None = None
        #: Expected next round_start round; ``None`` accepts any (fresh
        #: machines, post-halt rejoins, re-materialized transients).
        self.expected_round: int | None = None
        self.proposed = False
        self.steps = _RoundSteps()
        #: Rounds committed by this node (for pipelined-final checks).
        self.committed: set[int] = set()
        self.last_commit: int | None = None
        #: round -> final-step exit record (normal rounds; final opens
        #: and exits can straddle commits under pipelining).
        self.final_open: dict[int, float] = {}
        self.final_exit: dict[int, dict] = {}
        #: Recovery lane: recovery round -> its own step bookkeeping.
        self.recovery: dict[int, _RoundSteps] = {}
        #: Aggregated self-retirement grace (see module docstring, [6]).
        self._retired_pending_commit: int | None = None
        self.events_seen = 0

    # -- helpers -------------------------------------------------------

    def _violation(self, rule: str, event: dict, detail: str) -> Violation:
        return Violation(
            rule=rule, t=float(event.get("t", 0.0)), node=self.node,
            round=event.get("round"), step=event.get("step"),
            kind=str(event.get("kind")), phase=self.phase, detail=detail)

    def _reset_round_state(self) -> None:
        self.round = None
        self.proposed = False
        self.steps = _RoundSteps()

    def open_steps(self) -> list[tuple[int, str]]:
        """Intervals currently open — end-of-trace info, not violations."""
        out: list[tuple[int, str]] = []
        if self.round is not None and self.steps.open_step is not None:
            out.append((self.round, self.steps.open_step))
        out.extend((rnd, FINAL_STEP) for rnd in sorted(self.final_open))
        for rnd in sorted(self.recovery):
            lane = self.recovery[rnd]
            if lane.open_step is not None:
                out.append((rnd, lane.open_step))
        return out

    # -- the transition function ---------------------------------------

    def feed(self, event: dict) -> list[Violation]:
        """Advance on one event; returns the violations it triggered."""
        self.events_seen += 1
        kind = event.get("kind")
        handler = _HANDLERS.get(kind)
        if handler is None:
            return []  # not a protocol event (faults, population, sweep)
        return handler(self, event)

    # Each handler returns a list of violations (usually empty) and
    # advances the state as far as is sound even on violation, so one
    # bad event does not cascade into spurious follow-on reports.

    def _on_round_start(self, event: dict) -> list[Violation]:
        violations: list[Violation] = []
        round_number = event.get("round")
        if self.phase == CRASHED:
            return [self._violation(
                "crashed-activity", event,
                "round_start from a crashed node (no restart seen)")]
        if self.phase in (PROPOSAL, BA):
            violations.append(self._violation(
                "round-start-mid-round", event,
                f"round_start while round {self.round} is in progress"))
        if (self.phase == IDLE and self.expected_round is not None
                and round_number != self.expected_round):
            violations.append(self._violation(
                "round-sequence", event,
                f"expected round {self.expected_round} next, "
                f"got {round_number}"))
        if self.steps.open_step is not None:
            violations.append(self._violation(
                "unclosed-step", event,
                f"step {self.steps.open_step!r} of round {self.round} "
                f"never exited"))
        self._reset_round_state()
        self._retired_pending_commit = None
        self.phase = PROPOSAL
        self.round = round_number
        return violations

    def _on_block_proposed(self, event: dict) -> list[Violation]:
        if self.phase != PROPOSAL or event.get("round") != self.round:
            return [self._violation(
                "proposal-phase", event,
                f"block_proposed outside the proposal phase of its round "
                f"(current round {self.round})")]
        if self.proposed:
            return [self._violation(
                "duplicate-proposal", event,
                f"second block_proposed in round {self.round}")]
        self.proposed = True
        return []

    def _on_proposal_resolved(self, event: dict) -> list[Violation]:
        if self.phase != PROPOSAL or event.get("round") != self.round:
            return [self._violation(
                "resolve-phase", event,
                f"proposal_resolved outside the proposal phase "
                f"(current round {self.round})")]
        self.phase = BA
        return []

    def _lane(self, round_number: int) -> _RoundSteps:
        return self.recovery.setdefault(round_number, _RoundSteps())

    def _on_vote_cast(self, event: dict) -> list[Violation]:
        round_number = event.get("round")
        step = event.get("step")
        if step_order(step) is None:
            return [self._violation(
                "unknown-step", event, f"unknown step label {step!r}")]
        if (isinstance(round_number, int)
                and round_number >= RECOVERY_ROUND_BASE):
            # Recovery sessions run in any lifecycle phase (typically
            # HALTED); they are checked per-lane, not against the phase.
            lane = self._lane(round_number)
            if step in lane.voted:
                return [self._violation(
                    "duplicate-vote", event,
                    f"second vote for recovery round {round_number} "
                    f"step {step!r}")]
            lane.voted.add(step)
            return []
        if self.phase != BA or round_number != self.round:
            return [self._violation(
                "vote-phase", event,
                f"vote_cast outside BA of its round "
                f"(current round {self.round})")]
        if step in self.steps.voted:
            return [self._violation(
                "duplicate-vote", event,
                f"second vote for round {round_number} step {step!r}")]
        self.steps.voted.add(step)
        return []

    def _enter_lane_step(self, lane: _RoundSteps, event: dict,
                         where: str) -> list[Violation]:
        """Shared step_enter ordering/dedup checks for one round lane."""
        step = event.get("step")
        violations: list[Violation] = []
        if step in lane.entered:
            violations.append(self._violation(
                "duplicate-step", event,
                f"step {step!r} entered twice in {where}"))
            return violations
        order = step_order(step)
        if order is None:
            return [self._violation(
                "unknown-step", event, f"unknown step label {step!r}")]
        if step == REDUCTION_TWO and REDUCTION_ONE not in lane.entered:
            violations.append(self._violation(
                "step-order", event,
                f"{REDUCTION_TWO} entered before {REDUCTION_ONE} "
                f"in {where}"))
        elif step == FINAL_STEP:
            if "1" not in lane.entered:
                violations.append(self._violation(
                    "step-order", event,
                    f"final step entered before binary step 1 in {where}"))
        elif order >= 1:
            predecessor = REDUCTION_TWO if order == 1 else str(order - 1)
            if predecessor not in lane.entered:
                violations.append(self._violation(
                    "step-order", event,
                    f"binary step {step!r} entered but its predecessor "
                    f"{predecessor!r} was never entered in {where}"))
        if step != FINAL_STEP:
            if lane.open_step is not None:
                violations.append(self._violation(
                    "concurrent-steps", event,
                    f"step {step!r} entered while {lane.open_step!r} "
                    f"is still open in {where}"))
            lane.open_step = step
        lane.entered.add(step)
        return violations

    def _on_step_enter(self, event: dict) -> list[Violation]:
        round_number = event.get("round")
        step = event.get("step")
        if (isinstance(round_number, int)
                and round_number >= RECOVERY_ROUND_BASE):
            return self._enter_lane_step(
                self._lane(round_number), event,
                f"recovery round {round_number}")
        if step == FINAL_STEP and round_number in self.committed:
            # §10.2 pipelining: the final count for a committed round
            # runs concurrently with later rounds.
            if round_number in self.final_open:
                return [self._violation(
                    "duplicate-step", event,
                    f"pipelined final step of round {round_number} "
                    f"entered twice")]
            if round_number in self.final_exit:
                return [self._violation(
                    "duplicate-step", event,
                    f"final step of round {round_number} re-entered "
                    f"after exiting")]
            self.final_open[round_number] = float(event.get("t", 0.0))
            return []
        if self.phase != BA or round_number != self.round:
            return [self._violation(
                "step-phase", event,
                f"step_enter outside BA of its round "
                f"(current round {self.round})")]
        if step == FINAL_STEP:
            violations = self._enter_lane_step(
                self.steps, event, f"round {round_number}")
            if not any(v.rule == "duplicate-step" for v in violations):
                self.final_open[round_number] = float(event.get("t", 0.0))
            return violations
        return self._enter_lane_step(self.steps, event,
                                     f"round {round_number}")

    def _on_step_exit(self, event: dict) -> list[Violation]:
        round_number = event.get("round")
        step = event.get("step")
        if (isinstance(round_number, int)
                and round_number >= RECOVERY_ROUND_BASE):
            lane = self.recovery.get(round_number)
            if lane is None or (lane.open_step != step
                                and step != FINAL_STEP):
                return [self._violation(
                    "unmatched-step-exit", event,
                    f"step_exit with no open step_enter in recovery "
                    f"round {round_number}")]
            if step == FINAL_STEP:
                if FINAL_STEP not in lane.entered or step in lane.exited:
                    return [self._violation(
                        "unmatched-step-exit", event,
                        f"final step_exit with no open final interval "
                        f"in recovery round {round_number}")]
            else:
                lane.open_step = None
            lane.exited[step] = dict(event)
            return []
        if step == FINAL_STEP:
            if round_number not in self.final_open:
                return [self._violation(
                    "unmatched-step-exit", event,
                    f"final step_exit for round {round_number} with no "
                    f"open final interval")]
            del self.final_open[round_number]
            self.final_exit[round_number] = dict(event)
            if round_number == self.round:
                self.steps.exited[step] = dict(event)
            return []
        if (round_number != self.round
                or self.steps.open_step != step):
            return [self._violation(
                "unmatched-step-exit", event,
                f"step_exit for round {round_number} step {step!r} "
                f"with no matching open step_enter "
                f"(open: {self.steps.open_step!r} of round {self.round})")]
        self.steps.open_step = None
        self.steps.exited[step] = dict(event)
        return []

    def _on_round_commit(self, event: dict) -> list[Violation]:
        violations: list[Violation] = []
        round_number = event.get("round")
        if self._retired_pending_commit is not None:
            # Aggregated self-retirement: the commit of the in-flight
            # round lands after agent_retired (see [6] above).
            if round_number == self._retired_pending_commit:
                self._retired_pending_commit = None
                self.committed.add(round_number)
                self.last_commit = round_number
                return violations
            return [self._violation(
                "retired-activity", event,
                f"round_commit for round {round_number} from a retired "
                f"node (only the in-flight round "
                f"{self._retired_pending_commit} may commit)")]
        if self.phase != BA or round_number != self.round:
            return [self._violation(
                "commit-phase", event,
                f"round_commit outside BA of its round "
                f"(current round {self.round})")]
        if round_number in self.committed:
            violations.append(self._violation(
                "duplicate-commit", event,
                f"round {round_number} committed twice"))
        for required in (REDUCTION_ONE, REDUCTION_TWO, "1"):
            if required not in self.steps.exited:
                violations.append(self._violation(
                    "commit-skipped-step", event,
                    f"round {round_number} committed without completing "
                    f"step {required!r}"))
        if self.steps.open_step is not None:
            violations.append(self._violation(
                "unclosed-step", event,
                f"round {round_number} committed with step "
                f"{self.steps.open_step!r} still open"))
        deciding = event.get("binary_steps")
        deciding_exit = self.steps.exited.get(str(deciding))
        if deciding_exit is None:
            violations.append(self._violation(
                "commit-without-quorum", event,
                f"deciding step {deciding!r} of round {round_number} "
                f"was never completed"))
        elif (deciding_exit.get("timed_out")
                or deciding_exit.get("interrupted")):
            violations.append(self._violation(
                "commit-without-quorum", event,
                f"deciding step {deciding!r} of round {round_number} "
                f"did not reach a vote quorum — only a quorum can "
                f"decide a round"))
        if event.get("consensus") == "final":
            final_exit = self.final_exit.get(round_number)
            if final_exit is None:
                violations.append(self._violation(
                    "final-without-quorum", event,
                    f"round {round_number} committed as final but the "
                    f"final step never completed"))
            elif (final_exit.get("timed_out")
                    or final_exit.get("interrupted")):
                violations.append(self._violation(
                    "final-without-quorum", event,
                    f"round {round_number} committed as final but the "
                    f"final step reached no quorum"))
        self.committed.add(round_number)
        self.last_commit = round_number
        if isinstance(round_number, int):
            self.expected_round = round_number + 1
        self._reset_round_state()
        self.phase = IDLE
        return violations

    def _on_final_certified(self, event: dict) -> list[Violation]:
        round_number = event.get("round")
        if self.phase in (CRASHED, RETIRED):
            return [self._violation(
                f"{self.phase.lower()}-activity", event,
                f"final_certified from a {self.phase.lower()} node")]
        if round_number not in self.committed:
            return [self._violation(
                "final-certified-uncommitted", event,
                f"final_certified for round {round_number}, which this "
                f"node never committed")]
        final_exit = self.final_exit.get(round_number)
        if final_exit is None:
            return [self._violation(
                "final-certified-without-quorum", event,
                f"final_certified for round {round_number} but its "
                f"final step never completed")]
        if final_exit.get("timed_out") or final_exit.get("interrupted"):
            return [self._violation(
                "final-certified-without-quorum", event,
                f"final_certified for round {round_number} but its "
                f"final step reached no quorum")]
        return []

    def _on_consensus_halted(self, event: dict) -> list[Violation]:
        violations: list[Violation] = []
        if self.phase != BA or event.get("round") != self.round:
            violations.append(self._violation(
                "halt-phase", event,
                f"consensus_halted outside BA of its round "
                f"(current round {self.round})"))
        if self.steps.open_step is not None:
            violations.append(self._violation(
                "unclosed-step", event,
                f"halted with step {self.steps.open_step!r} still open"))
        self._reset_round_state()
        self.phase = HALTED
        # Recovery may adopt a different chain while halted; the rejoin
        # round is not predictable from this trace alone.
        self.expected_round = None
        return violations

    def _on_node_crashed(self, event: dict) -> list[Violation]:
        violations: list[Violation] = []
        if self.phase == CRASHED:
            violations.append(self._violation(
                "crashed-activity", event, "crashed node crashed again"))
        # Recovery-lane intervals are exempt: crash() does not kill
        # recovery sessions, so their counts legitimately finish later.
        open_now = [(rnd, step) for rnd, step in self.open_steps()
                    if rnd < RECOVERY_ROUND_BASE]
        for rnd, step in open_now:
            violations.append(self._violation(
                "unclosed-step", event,
                f"crashed with step {step!r} of round {rnd} still open "
                f"(no interrupted step_exit emitted)"))
        self._reset_round_state()
        self.final_open.clear()
        self.phase = CRASHED
        self.expected_round = None
        return violations

    def _on_node_restarted(self, event: dict) -> list[Violation]:
        if self.phase != CRASHED:
            return [self._violation(
                "restart-phase", event,
                "node_restarted without a preceding node_crashed")]
        self.phase = IDLE
        round_number = event.get("round")
        self.expected_round = (round_number
                               if isinstance(round_number, int) else None)
        return []

    def _on_catchup_adopted(self, event: dict) -> list[Violation]:
        violations: list[Violation] = []
        if self.phase not in (IDLE, BA):
            violations.append(self._violation(
                "catchup-phase", event,
                f"catchup_adopted in phase {self.phase} (legal from IDLE "
                f"or from BA after a ConsensusHalted)"))
        if self.steps.open_step is not None:
            violations.append(self._violation(
                "unclosed-step", event,
                f"catchup with step {self.steps.open_step!r} still open"))
        from_height = event.get("from_height")
        to_height = event.get("to_height")
        if (isinstance(from_height, int) and isinstance(to_height, int)
                and to_height <= from_height):
            violations.append(self._violation(
                "catchup-shrank", event,
                f"catchup adopted a chain of height {to_height} over "
                f"height {from_height} (must be strictly longer)"))
        self._reset_round_state()
        if self.phase != RETIRED:
            self.phase = IDLE
        round_number = event.get("round")
        self.expected_round = (round_number
                               if isinstance(round_number, int) else None)
        return violations

    def _on_agent_retired(self, event: dict) -> list[Violation]:
        violations: list[Violation] = []
        if self.phase == CRASHED:
            violations.append(self._violation(
                "crashed-activity", event, "crashed node retired"))
        if self.phase == RETIRED:
            violations.append(self._violation(
                "retired-activity", event, "retired node retired again"))
        if self.steps.open_step is not None:
            violations.append(self._violation(
                "unclosed-step", event,
                f"retired with step {self.steps.open_step!r} of round "
                f"{self.round} still open"))
        if self.final_open:
            stuck = sorted(self.final_open)
            violations.append(self._violation(
                "unclosed-step", event,
                f"retired with pipelined final step(s) of round(s) "
                f"{stuck} still open"))
        # Self-retirement during the boundary hook happens mid-commit:
        # grant the in-flight round's commit a one-event grace.
        self._retired_pending_commit = (self.round if self.phase == BA
                                        else None)
        self._reset_round_state()
        self.final_open.clear()
        self.phase = RETIRED
        self.expected_round = None
        return violations


_HANDLERS = {
    "round_start": NodeMachine._on_round_start,
    "block_proposed": NodeMachine._on_block_proposed,
    "proposal_resolved": NodeMachine._on_proposal_resolved,
    "vote_cast": NodeMachine._on_vote_cast,
    "step_enter": NodeMachine._on_step_enter,
    "step_exit": NodeMachine._on_step_exit,
    "round_commit": NodeMachine._on_round_commit,
    "final_certified": NodeMachine._on_final_certified,
    "consensus_halted": NodeMachine._on_consensus_halted,
    "node_crashed": NodeMachine._on_node_crashed,
    "node_restarted": NodeMachine._on_node_restarted,
    "catchup_adopted": NodeMachine._on_catchup_adopted,
    "agent_retired": NodeMachine._on_agent_retired,
}

#: Event kinds the machine interprets (everything else is ignored).
PROTOCOL_EVENT_KINDS = frozenset(_HANDLERS)
