"""Canonical byte encoding for protocol messages.

Consensus requires every honest node to hash and sign *identical* byte
strings, so all structures are serialized through one deterministic codec.
The format is a small, self-describing, length-prefixed binary encoding
(a simplified canonical CBOR): deterministic, byte-exact, and reversible.

Supported value types: ``None``, ``bool``, ``int`` (signed, arbitrary
precision), ``bytes``, ``str``, ``list``/``tuple`` (encoded identically) and
``dict`` with string keys (encoded with keys sorted lexicographically).
"""

from __future__ import annotations

import struct
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"f"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_DICT = b"D"


def _encode_length(n: int) -> bytes:
    return struct.pack(">Q", n)


def encode(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes.

    Raises:
        TypeError: if ``value`` (or a nested element) has an unsupported
            type, or a dict has non-string keys.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        raw = _canonical_int_bytes(value)
        out += _TAG_INT
        out += _encode_length(len(raw))
        out += raw
    elif isinstance(value, float):
        # IEEE-754 big-endian double: one canonical bit pattern per value.
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out += _TAG_BYTES
        out += _encode_length(len(data))
        out += data
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += _TAG_STR
        out += _encode_length(len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _encode_length(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = list(value.keys())
        if not all(isinstance(k, str) for k in keys):
            raise TypeError("canonical encoding requires string dict keys")
        out += _TAG_DICT
        out += _encode_length(len(keys))
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def _canonical_int_bytes(value: int) -> bytes:
    """Minimal-length big-endian two's-complement encoding of ``value``."""
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 8) // 8
    raw = value.to_bytes(length, "big", signed=True)
    # int.to_bytes with the computed length is already minimal for signed
    # values, but guard against a redundant leading byte.
    while len(raw) > 1 and (
        (raw[0] == 0x00 and raw[1] < 0x80)
        or (raw[0] == 0xFF and raw[1] >= 0x80)
    ):
        raw = raw[1:]
    return raw


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError("truncated canonical encoding")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def _length(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def decode_value(self) -> Any:
        tag = self._take(1)
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_INT:
            return int.from_bytes(self._take(self._length()), "big",
                                  signed=True)
        if tag == _TAG_FLOAT:
            return struct.unpack(">d", self._take(8))[0]
        if tag == _TAG_BYTES:
            return self._take(self._length())
        if tag == _TAG_STR:
            return self._take(self._length()).decode("utf-8")
        if tag == _TAG_LIST:
            return [self.decode_value() for _ in range(self._length())]
        if tag == _TAG_DICT:
            n = self._length()
            result = {}
            for _ in range(n):
                key = self.decode_value()
                result[key] = self.decode_value()
            return result
        raise ValueError(f"unknown encoding tag {tag!r}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`.

    Raises:
        ValueError: if ``data`` is not a complete canonical encoding.
    """
    decoder = _Decoder(data)
    value = decoder.decode_value()
    if decoder.pos != len(data):
        raise ValueError("trailing bytes after canonical encoding")
    return value
