"""Shared building blocks: parameters, canonical encoding, errors."""

from repro.common.encoding import decode, encode
from repro.common.errors import (
    ConsensusHalted,
    CryptoError,
    InvalidBlock,
    InvalidCertificate,
    InvalidTransaction,
    LedgerError,
    NetworkError,
    ReproError,
    SignatureError,
    SimulationError,
    SortitionError,
    VRFError,
)
from repro.common.params import PAPER_PARAMS, TEST_PARAMS, ProtocolParams

__all__ = [
    "PAPER_PARAMS",
    "TEST_PARAMS",
    "ProtocolParams",
    "encode",
    "decode",
    "ReproError",
    "CryptoError",
    "SignatureError",
    "VRFError",
    "SortitionError",
    "LedgerError",
    "InvalidTransaction",
    "InvalidBlock",
    "InvalidCertificate",
    "SimulationError",
    "NetworkError",
    "ConsensusHalted",
]
