"""Protocol parameters (Figure 4 of the paper).

The paper fixes one canonical parameter set for its prototype; we expose it
as :data:`PAPER_PARAMS` and allow experiments to derive scaled-down variants
via :meth:`ProtocolParams.scaled`, which preserves the committee/population
ratios so that small simulations keep the paper's safety margins in
expectation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class ProtocolParams:
    """All tunable constants of Algorand and BA*.

    Attributes mirror Figure 4 of the paper; times are in (simulated)
    seconds.
    """

    # Assumed fraction of honest weighted users (h > 2/3).
    honest_fraction: float = 0.80
    # Seed refresh interval R, in rounds (section 5.2).
    seed_refresh_interval: int = 1000
    # Seed look-back: sortition at round r uses seed from round
    # r - 1 - (r mod R); see seed.py.
    # Expected number of block proposers (tau_proposer, appendix B.1).
    tau_proposer: int = 26
    # Expected committee size for ordinary BA* steps (tau_step).
    tau_step: int = 2000
    # Vote threshold fraction for ordinary steps (T_step > 2/3).
    t_step: float = 0.685
    # Expected committee size for the final step (tau_final).
    tau_final: int = 10000
    # Vote threshold fraction for the final step (T_final).
    t_final: float = 0.74
    # Maximum number of steps in BinaryBA* before halting (MaxSteps).
    max_steps: int = 150
    # Time to gossip sortition proofs (lambda_priority), seconds.
    lambda_priority: float = 5.0
    # Timeout for receiving a block (lambda_block), seconds.
    lambda_block: float = 60.0
    # Timeout for a BA* step (lambda_step), seconds.
    lambda_step: float = 20.0
    # Estimate of BA* completion-time variance (lambda_stepvar), seconds.
    lambda_stepvar: float = 5.0
    # Maximum block payload in bytes (1 MByte default, as evaluated).
    block_size: int = 1_000_000
    # Look-back period b for weights/keys (section 5.3), seconds.
    lookback_b: float = 86_400.0
    # Recovery protocol kick-off interval (section 8.2), seconds.
    recovery_interval: float = 3600.0
    # Weight look-back in rounds (section 5.3): sortition at round r uses
    # the weight table as of round r - 1 - weight_lookback_rounds. 0
    # means current weights (the simulator's round-based analogue of the
    # paper's b-long time window).
    weight_lookback_rounds: int = 0
    # The section 5.3 "nothing at stake" mitigation the paper suggests as
    # future work: weigh each user by min(current balance, look-back
    # balance) instead of the look-back balance alone.
    lookback_take_min: bool = False
    # Section 10.2 optimization: overlap the final-consensus vote count
    # with the next round ("it could be pipelined with the next round
    # (although our prototype does not do so)"). The block commits after
    # BinaryBA*; its final/tentative designation lands asynchronously.
    pipeline_final_step: bool = False

    def __post_init__(self) -> None:
        if not 2 / 3 < self.honest_fraction <= 1.0:
            raise ValueError(
                f"honest_fraction must be in (2/3, 1], got {self.honest_fraction}"
            )
        if not 2 / 3 < self.t_step < 1.0:
            raise ValueError(f"t_step must be in (2/3, 1), got {self.t_step}")
        if not 2 / 3 < self.t_final < 1.0:
            raise ValueError(f"t_final must be in (2/3, 1), got {self.t_final}")
        for name in ("tau_proposer", "tau_step", "tau_final", "max_steps",
                     "seed_refresh_interval"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("lambda_priority", "lambda_block", "lambda_step",
                     "lambda_stepvar"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.weight_lookback_rounds < 0:
            raise ValueError("weight_lookback_rounds must be >= 0")

    @property
    def step_vote_threshold(self) -> float:
        """Votes needed to settle an ordinary step: T_step * tau_step."""
        return self.t_step * self.tau_step

    @property
    def final_vote_threshold(self) -> float:
        """Votes needed to declare final consensus: T_final * tau_final."""
        return self.t_final * self.tau_final

    def scaled(self, scale: float, **overrides: object) -> "ProtocolParams":
        """Return a copy with committee sizes multiplied by ``scale``.

        Used by experiments that simulate far fewer users than the paper's
        500,000: committees must shrink with the population or sortition
        would select every sub-user in every step. Thresholds (T values)
        and timeouts are preserved unless overridden.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        fields = {
            "tau_proposer": max(3, round(self.tau_proposer * max(scale, 0.2))),
            "tau_step": max(8, round(self.tau_step * scale)),
            "tau_final": max(12, round(self.tau_final * scale)),
        }
        fields.update(overrides)  # type: ignore[arg-type]
        return dataclasses.replace(self, **fields)  # type: ignore[arg-type]


#: The canonical parameter set from Figure 4 of the paper.
PAPER_PARAMS = ProtocolParams()

#: A small parameter set suitable for unit tests and quick examples.
#:
#: Committee sizes are chosen for a default population of 20 users x 10
#: currency units (W = 200): with ``tau_step = 80`` the expected committee
#: is 80 votes against a threshold of ~55, a 3.6-sigma margin, so honest
#: steps practically never time out — the small-scale analogue of the
#: paper's 5e-9 violation probability at tau_step = 2000.
TEST_PARAMS = ProtocolParams(
    tau_proposer=5,
    tau_step=80,
    tau_final=100,
    lambda_priority=1.0,
    lambda_block=6.0,
    lambda_step=3.0,
    lambda_stepvar=1.0,
    block_size=10_000,
    max_steps=30,
)
