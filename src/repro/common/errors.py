"""Exception hierarchy for the Algorand reproduction.

Every package raises subclasses of :class:`ReproError` so that callers can
distinguish protocol-level failures (invalid blocks, bad proofs) from
programming errors (which surface as standard Python exceptions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad signature encoding)."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class VRFError(CryptoError):
    """A VRF proof failed verification or could not be decoded."""


class SortitionError(ReproError):
    """Sortition was invoked with inconsistent weights or parameters."""


class LedgerError(ReproError):
    """A ledger operation failed (unknown account, malformed block)."""


class InvalidTransaction(LedgerError):
    """A transaction failed validation (bad signature, overspend, replay)."""


class InvalidBlock(LedgerError):
    """A proposed block failed validation (per paper section 8.1)."""


class InvalidCertificate(LedgerError):
    """A block certificate does not carry enough valid committee votes."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigError(ReproError, ValueError):
    """A simulation or experiment was configured inconsistently.

    Subclasses :class:`ValueError` so callers written against the
    original bare ``ValueError``\\ s (``except ValueError`` /
    ``pytest.raises(ValueError)``) keep working while new code can
    catch the typed hierarchy.
    """


class PopulationError(ConfigError):
    """User / malicious / observer counts are out of range or inconsistent
    (negative counts, no honest user left at index 0, empty deployment)."""


class BalancesError(ConfigError):
    """An explicit balance table does not match the configured population
    (wrong length, negative stake)."""


class LatencyModelError(ConfigError):
    """An unknown network latency model was requested."""


class SpecError(ConfigError):
    """An :class:`~repro.experiments.spec.ExperimentSpec` carries
    out-of-range values (bad sweep fraction, non-positive wait, ...)."""


class NetworkError(ReproError):
    """The simulated network was misconfigured (unknown peer, bad topology)."""


class NoSamplesError(ReproError, ValueError):
    """A statistical summary was requested over an empty sample set.

    Subclasses :class:`ValueError` so callers that predate the typed
    hierarchy (``except ValueError``) keep working. Experiment runners
    catch this to report an empty measurement point instead of crashing
    a whole figure sweep.
    """


class ConsensusHalted(ReproError):
    """BinaryBA* exceeded MaxSteps; liveness must be restored by recovery.

    This mirrors the ``HangForever()`` call in Algorithm 8: the protocol
    deliberately stops making progress and waits for the periodic recovery
    protocol of section 8.2.
    """
