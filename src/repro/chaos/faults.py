"""Compile a :class:`ScenarioScript` onto a live simulation.

The injector leans on exactly the control surfaces the paper grants the
adversary: message *dropping* goes through the gossip layer's
``drop_filter`` (via :class:`repro.adversary.FilterChain`, which now
composes with anything already installed), message *timing* goes through
the ``link_shaper`` hook (delay spikes, duplication, reordering), and
node-level faults use the agent's fail-stop :meth:`~repro.node.agent.Node.crash`
/ :meth:`~repro.node.agent.Node.restart` with certificate-verified
catch-up from :mod:`repro.node.catchup`.

All randomness (loss coin flips, duplicate coins, reorder jitter) is
drawn from a generator seeded by the scenario seed and independent of
the simulation's own RNG, so a scenario is reproducible and adding a
chaos fault never perturbs the underlying deployment's random choices.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.network_control import FilterChain, Partitioner
from repro.baplus.messages import VoteMessage, make_vote
from repro.chaos.scenario import FaultAction, ScenarioScript
from repro.crypto.hashing import H
from repro.network.gossip import GossipNetwork
from repro.network.message import Envelope, vote_envelope
from repro.node.catchup import resync_from_peers

#: Seed-sequence spice mixed with the scenario seed for fault RNG.
_FAULT_RNG_TAG = 0xC4A05


class ShaperChain:
    """Composes per-link delivery mutators into one ``link_shaper``.

    Mirrors :class:`~repro.adversary.FilterChain` for the timing hook:
    each effect maps a list of arrival delays to a new list (empty =
    drop, longer = duplicate). Effects apply in installation order. An
    already-installed shaper is absorbed as the first effect.
    """

    def __init__(self, network: GossipNetwork) -> None:
        self.network = network
        self._effects: list = []
        existing = network.link_shaper
        if existing is not None:
            self._effects.append(
                lambda src, dst, env, delays:
                [shaped for delay in delays
                 for shaped in existing(src, dst, env, delay)])
        network.link_shaper = self._shape

    def add(self, effect) -> None:
        self._effects.append(effect)

    def remove(self, effect) -> None:
        self._effects.remove(effect)

    def _shape(self, src: int, dst: int, envelope: Envelope,
               base_delay: float) -> list[float]:
        delays = [base_delay]
        for effect in self._effects:
            delays = effect(src, dst, envelope, delays)
            if not delays:
                return delays
        return delays


def _matches(nodes: frozenset[int], src: int, dst: int) -> bool:
    return not nodes or src in nodes or dst in nodes


class _WindowedLinkEffect:
    """A link mutator active only inside its scheduled window."""

    def __init__(self, action: FaultAction,
                 rng: np.random.Generator) -> None:
        self.action = action
        self.nodes = frozenset(action.nodes)
        self.rng = rng
        self.active = False

    def activate(self) -> None:
        self.active = True

    def deactivate(self) -> None:
        self.active = False

    def __call__(self, src: int, dst: int, envelope: Envelope,
                 delays: list[float]) -> list[float]:
        if not self.active or not _matches(self.nodes, src, dst):
            return delays
        kind = self.action.kind
        if kind == "delay":
            return [delay + self.action.extra_delay for delay in delays]
        if kind == "reorder":
            jitter = self.action.jitter
            return [delay + jitter * float(self.rng.random())
                    for delay in delays]
        if kind == "duplicate":
            out = []
            for delay in delays:
                out.append(delay)
                if float(self.rng.random()) < self.action.rate:
                    out.append(delay + max(self.action.jitter, 0.05))
            return out
        if kind == "loss":
            return [delay for delay in delays
                    if float(self.rng.random()) >= self.action.rate]
        return delays


class FaultInjector:
    """Installs every action of a scenario onto the simulation clock."""

    def __init__(self, sim, script: ScenarioScript) -> None:
        script.validate()
        total_nodes = len(sim.nodes)
        for action in script.actions:
            action.validate(total_nodes)
        self.sim = sim
        self.script = script
        self.rng = np.random.default_rng([script.seed, _FAULT_RNG_TAG])
        self.chain = FilterChain(sim.network)
        self.shaper = ShaperChain(sim.network)
        #: Nodes crashed with no scheduled restart; the runner excludes
        #: them from convergence and liveness accounting.
        self.permanently_crashed: frozenset[int] = (
            script.permanently_crashed())
        #: Round-loop processes created by scheduled restarts, so the
        #: runner can surface their failures like initial processes.
        self.restarted_processes: list = []
        self._installed = False

    # -- wiring --------------------------------------------------------

    def install(self) -> None:
        """Schedule every fault action; idempotence-guarded."""
        if self._installed:
            return
        self._installed = True
        for node in self.sim.nodes:
            # Crash-rejoin catch-up (and late-round resync for everyone):
            # adopt the longest valid peer chain at round boundaries.
            node.resync = (lambda n=node:
                           resync_from_peers(n, self.sim.nodes))
        for action in self.script.actions:
            self._install_action(action)

    def _emit(self, event: str, action: FaultAction) -> None:
        obs = self.sim.obs
        if obs is not None:
            obs.emit(event, fault=action.kind,
                     nodes=list(action.nodes),
                     window=[action.start, action.end])

    def _install_action(self, action: FaultAction) -> None:
        env = self.sim.env
        if action.kind == "partition":
            partition = Partitioner(
                self.chain, [set(group) for group in action.groups])
            env.schedule(action.start, partition.activate)
            env.schedule(action.start,
                         lambda a=action: self._emit("fault_applied", a))
            assert action.end is not None  # validated
            env.schedule(action.end, partition.heal)
            env.schedule(action.end,
                         lambda a=action: self._emit("fault_cleared", a))
            return
        if action.kind in ("delay", "loss", "duplicate", "reorder"):
            effect = _WindowedLinkEffect(action, self.rng)
            if action.kind == "loss":
                # Loss is a drop decision: route it through the filter
                # chain so it shares the partition/DoS machinery (and
                # the gossip.filtered counter).
                self.chain.add(
                    lambda src, dst, envelope, e=effect:
                    e.active and _matches(e.nodes, src, dst)
                    and float(e.rng.random()) < e.action.rate)
            else:
                self.shaper.add(effect)
            env.schedule(action.start, effect.activate)
            env.schedule(action.start,
                         lambda a=action: self._emit("fault_applied", a))
            assert action.end is not None
            env.schedule(action.end, effect.deactivate)
            env.schedule(action.end,
                         lambda a=action: self._emit("fault_cleared", a))
            return
        if action.kind == "dos":
            interfaces = [self.sim.network.interfaces[node]
                          for node in action.nodes]

            def strike(ifaces=interfaces, a=action) -> None:
                for iface in ifaces:
                    iface.disconnected = True
                self._emit("fault_applied", a)

            def release(ifaces=interfaces, a=action) -> None:
                for iface in ifaces:
                    iface.disconnected = False
                self._emit("fault_cleared", a)

            env.schedule(action.start, strike)
            assert action.end is not None
            env.schedule(action.end, release)
            return
        if action.kind in ("flood", "spam"):
            env.schedule(action.start,
                         lambda a=action: self._emit("fault_applied", a))
            assert action.end is not None  # validated
            env.schedule(action.end,
                         lambda a=action: self._emit("fault_cleared", a))
            for target in action.nodes:
                env.process(self._attack_loop(action, target),
                            f"{action.kind}-{target}")
            return
        if action.kind == "crash":
            victims = [self.sim.nodes[node] for node in action.nodes]

            def crash(nodes=victims, a=action) -> None:
                for node in nodes:
                    node.crash()
                self._emit("fault_applied", a)

            env.schedule(action.start, crash)
            if action.end is not None:
                def restart(nodes=victims, a=action) -> None:
                    for node in nodes:
                        self.restarted_processes.append(
                            node.restart(self.script.rounds))
                    self._emit("fault_cleared", a)

                env.schedule(action.end, restart)
            return
        raise AssertionError(f"unreachable fault kind {action.kind!r}")

    def _attack_loop(self, action: FaultAction, target: int):
        """Broadcast ``rate`` junk votes per second from ``target``.

        ``flood`` sends invalid-signature votes at the attacker's own
        current round; ``spam`` sends validly signed votes for rounds no
        receiver can validate yet (the undecidable-message DoS). Both
        loops are counter-based — no RNG — so a scenario stays
        byte-reproducible.
        """
        env = self.sim.env
        node = self.sim.nodes[target]
        batch = max(1, int(action.rate))
        tag = b"flood" if action.kind == "flood" else b"spam"
        counter = 0
        if action.start > env.now:
            yield env.timeout(action.start - env.now)
        assert action.end is not None  # validated
        while env.now < action.end:
            if not node.crashed and not node.interface.disconnected:
                for _ in range(batch):
                    counter += 1
                    junk = H(tag, node.keypair.public,
                             counter.to_bytes(8, "big"))
                    if action.kind == "flood":
                        vote = VoteMessage(
                            voter=node.keypair.public,
                            round_number=node.chain.next_round,
                            step="reduction_one",
                            sorthash=junk, sortproof=junk,
                            prev_hash=node.chain.tip_hash,
                            value=junk, signature=junk[:32],
                        )
                    else:
                        vote = make_vote(
                            node.backend, node.keypair.secret,
                            node.keypair.public,
                            node.chain.next_round + 100 + counter,
                            "reduction_one", junk, junk,
                            node.chain.tip_hash, junk,
                        )
                    node.interface.broadcast(
                        vote_envelope(node.keypair.public, vote))
            yield env.timeout(1.0)
