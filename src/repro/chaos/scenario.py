"""Declarative chaos scenarios: a seeded timeline of fault actions.

A :class:`ScenarioScript` is pure data — one simulated deployment
(users, rounds, seed) plus a list of :class:`FaultAction` entries, each
a time window ``[start, end)`` on the simulated clock during which one
fault is in force. The script never touches the network itself;
:class:`repro.chaos.faults.FaultInjector` compiles it onto a live
:class:`~repro.experiments.harness.Simulation`.

Fault vocabulary (the ``kind`` field):

``partition``
    Split the network into ``groups`` (complete node coverage is not
    required; ungrouped nodes share an implicit extra group). Messages
    crossing group boundaries are dropped until ``end``.
``delay``
    Add ``extra_delay`` seconds to every delivery on matching links.
``loss``
    Drop each matching delivery independently with probability ``rate``.
``duplicate``
    With probability ``rate``, deliver a second copy of the message
    ``jitter`` seconds later (exercising duplicate suppression).
``reorder``
    Add an independent uniform ``[0, jitter)`` extra delay per delivery,
    so messages overtake each other.
``crash``
    Fail-stop ``nodes`` at ``start``; if ``end`` is set they restart
    there and rejoin via certificate-verified catch-up (section 8.3).
    ``end=None`` crashes them for good.
``dos``
    Disconnect ``nodes`` (targeted denial of service) until ``end``.
``flood``
    ``nodes`` broadcast ``rate`` invalid-signature votes per simulated
    second until ``end`` (link-level junk; admission control rejects it
    at ingress and quarantines the senders).
``spam``
    ``nodes`` broadcast ``rate`` validly signed far-future votes per
    simulated second until ``end`` (the "undecidable messages" DoS:
    signature checks pass, so only bounded buffers with future-first
    eviction and per-origin flood budgets contain it).

For link faults (``delay``/``loss``/``duplicate``/``reorder``), an empty
``nodes`` tuple means *all* links; otherwise only links whose source or
destination is listed are affected.

Scripts serialize to/from JSON with stable key order, so a scenario file
is diffable and a verdict built from one is byte-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.common.errors import ReproError

#: Every fault kind the injector knows how to compile.
FAULT_KINDS = ("partition", "delay", "loss", "duplicate", "reorder",
               "crash", "dos", "flood", "spam")

#: Kinds where the target nodes are attackers, not victims: the runner
#: excludes them from liveness/convergence accounting and from the
#: ingress-bounds audit.
ATTACKER_FAULTS = frozenset({"flood", "spam"})

#: Kinds expressed through the gossip ``link_shaper`` hook.
LINK_FAULTS = frozenset({"delay", "loss", "duplicate", "reorder"})


class ScenarioError(ReproError):
    """A scenario script failed validation."""


@dataclass(frozen=True)
class FaultAction:
    """One fault window on the simulated clock."""

    kind: str
    start: float
    #: End of the window; ``None`` only for permanent crashes.
    end: float | None = None
    #: Partition groups (``partition`` only).
    groups: tuple[tuple[int, ...], ...] = ()
    #: Target nodes (``crash``/``dos``; optional link filter otherwise).
    nodes: tuple[int, ...] = ()
    #: Probability per delivery (``loss``/``duplicate``).
    rate: float = 0.0
    #: Added seconds per delivery (``delay``).
    extra_delay: float = 0.0
    #: Extra-delay spread in seconds (``reorder``; dup copy offset).
    jitter: float = 0.0

    def validate(self, num_nodes: int) -> None:
        if self.kind not in FAULT_KINDS:
            raise ScenarioError(f"unknown fault kind {self.kind!r}")
        if self.start < 0:
            raise ScenarioError(f"{self.kind}: start must be >= 0")
        if self.end is None:
            if self.kind != "crash":
                raise ScenarioError(
                    f"{self.kind}: only crashes may be permanent "
                    f"(end=None)")
        elif self.end <= self.start:
            raise ScenarioError(
                f"{self.kind}: window must end after it starts "
                f"({self.start} .. {self.end})")
        for node in self.nodes:
            if not 0 <= node < num_nodes:
                raise ScenarioError(
                    f"{self.kind}: node {node} out of range 0..{num_nodes - 1}")
        if self.kind == "partition":
            if len(self.groups) < 2:
                raise ScenarioError("partition needs at least 2 groups")
            seen: set[int] = set()
            for group in self.groups:
                for node in group:
                    if not 0 <= node < num_nodes:
                        raise ScenarioError(
                            f"partition: node {node} out of range")
                    if node in seen:
                        raise ScenarioError(
                            f"partition: node {node} in two groups")
                    seen.add(node)
        if self.kind in ("crash", "dos") and not self.nodes:
            raise ScenarioError(f"{self.kind}: needs at least one node")
        if self.kind in ("flood", "spam"):
            if not self.nodes:
                raise ScenarioError(f"{self.kind}: needs at least one node")
            if self.rate <= 0:
                raise ScenarioError(
                    f"{self.kind}: rate (votes per second) must be positive")
        if self.kind in ("loss", "duplicate") and not 0 < self.rate <= 1:
            raise ScenarioError(f"{self.kind}: rate must be in (0, 1]")
        if self.kind == "delay" and self.extra_delay <= 0:
            raise ScenarioError("delay: extra_delay must be positive")
        if self.kind == "reorder" and self.jitter <= 0:
            raise ScenarioError("reorder: jitter must be positive")

    def to_dict(self) -> dict:
        record: dict = {"kind": self.kind, "start": self.start,
                        "end": self.end}
        if self.groups:
            record["groups"] = [list(group) for group in self.groups]
        if self.nodes:
            record["nodes"] = list(self.nodes)
        if self.rate:
            record["rate"] = self.rate
        if self.extra_delay:
            record["extra_delay"] = self.extra_delay
        if self.jitter:
            record["jitter"] = self.jitter
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultAction":
        return cls(
            kind=record["kind"],
            start=float(record["start"]),
            end=None if record.get("end") is None else float(record["end"]),
            groups=tuple(tuple(int(n) for n in group)
                         for group in record.get("groups", ())),
            nodes=tuple(int(n) for n in record.get("nodes", ())),
            rate=float(record.get("rate", 0.0)),
            extra_delay=float(record.get("extra_delay", 0.0)),
            jitter=float(record.get("jitter", 0.0)),
        )


@dataclass(frozen=True)
class ScenarioScript:
    """One chaos run: deployment shape + fault timeline + liveness bound."""

    name: str
    seed: int = 0
    num_users: int = 12
    rounds: int = 2
    payments: int = 0
    #: Seconds after the last fault heals within which a new block must
    #: commit (the paper's weak-synchrony liveness promise, section 3).
    liveness_bound: float = 150.0
    #: Optional hard cap on simulated time; ``None`` derives one from
    #: the protocol parameters, fault windows, and the liveness bound.
    time_limit: float | None = None
    actions: tuple[FaultAction, ...] = field(default_factory=tuple)

    def validate(self) -> None:
        if self.num_users < 4:
            raise ScenarioError("scenario needs at least 4 users")
        if self.rounds < 1:
            raise ScenarioError("scenario needs at least 1 round")
        if self.liveness_bound <= 0:
            raise ScenarioError("liveness_bound must be positive")
        permanent_crashes: set[int] = set()
        for action in self.actions:
            action.validate(self.num_users)
            if action.kind == "crash" and action.end is None:
                permanent_crashes.update(action.nodes)
        if len(permanent_crashes) * 3 >= self.num_users:
            raise ScenarioError(
                "permanently crashing >= 1/3 of the users forfeits the "
                "paper's honest-majority assumption")

    def last_heal_time(self) -> float:
        """When the final transient fault clears (0.0 when fault-free)."""
        ends = [action.end for action in self.actions
                if action.end is not None]
        return max(ends, default=0.0)

    def permanently_crashed(self) -> frozenset[int]:
        """Nodes that crash and never restart (excluded from liveness)."""
        gone: set[int] = set()
        for action in self.actions:
            if action.kind == "crash" and action.end is None:
                gone.update(action.nodes)
        return frozenset(gone)

    def attacker_nodes(self) -> frozenset[int]:
        """Nodes that run flood/spam attacks (excluded from audits)."""
        attackers: set[int] = set()
        for action in self.actions:
            if action.kind in ATTACKER_FAULTS:
                attackers.update(action.nodes)
        return frozenset(attackers)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "num_users": self.num_users,
            "rounds": self.rounds,
            "payments": self.payments,
            "liveness_bound": self.liveness_bound,
            "time_limit": self.time_limit,
            "actions": [action.to_dict() for action in self.actions],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, record: dict) -> "ScenarioScript":
        script = cls(
            name=str(record["name"]),
            seed=int(record.get("seed", 0)),
            num_users=int(record.get("num_users", 12)),
            rounds=int(record.get("rounds", 2)),
            payments=int(record.get("payments", 0)),
            liveness_bound=float(record.get("liveness_bound", 150.0)),
            time_limit=(None if record.get("time_limit") is None
                        else float(record["time_limit"])),
            actions=tuple(FaultAction.from_dict(action)
                          for action in record.get("actions", ())),
        )
        script.validate()
        return script

    @classmethod
    def from_json(cls, text: str) -> "ScenarioScript":
        return cls.from_dict(json.loads(text))

    def with_seed(self, seed: int) -> "ScenarioScript":
        return replace(self, seed=seed)


def partition_heal_scenario(*, num_users: int = 16, seed: int = 31,
                            start: float = 0.0,
                            end: float = 50.0) -> ScenarioScript:
    """The canonical smoke scenario: split in half, stall, heal, commit.

    While partitioned neither half can reach a BA* quorum (thresholds
    are calibrated to the full committee), so no block — and no fork —
    can form; after healing the round completes within the liveness
    bound. This is the weak-synchrony story of sections 3 and 8.3 in one
    scripted timeline.
    """
    half = num_users // 2
    return ScenarioScript(
        name="partition-heal",
        seed=seed,
        num_users=num_users,
        rounds=1,
        actions=(
            FaultAction(kind="partition", start=start, end=end,
                        groups=(tuple(range(half)),
                                tuple(range(half, num_users)))),
        ),
    )


def flood_recovery_scenario(*, num_users: int = 15, seed: int = 47,
                            start: float = 0.0,
                            end: float = 40.0) -> ScenarioScript:
    """The ingress smoke scenario: 20% of peers flood, honest peers cope.

    The last fifth of the deployment attacks from ``start`` to ``end``:
    most spray invalid-signature votes (cheap junk), the final one sends
    validly signed far-future votes (the undecidable-message DoS). The
    verdict must show honest vote buffers and egress lanes inside their
    budgets throughout (the ``ingress-bounds`` audit), no safety
    violation, and rounds still committing after the flood stops.
    """
    attackers = max(2, num_users // 5)
    first = num_users - attackers
    actions = [
        FaultAction(kind="flood", start=start, end=end, nodes=(node,),
                    rate=60.0)
        for node in range(first, num_users - 1)
    ]
    actions.append(FaultAction(kind="spam", start=start, end=end,
                               nodes=(num_users - 1,), rate=400.0))
    return ScenarioScript(
        name="flood-recovery",
        seed=seed,
        num_users=num_users,
        rounds=3,
        actions=tuple(actions),
    )


def kill_partition_scenario(*, num_users: int = 5, seed: int = 11,
                            rounds: int = 12) -> ScenarioScript:
    """The live-substrate smoke scenario: SIGKILL, rejoin, isolate, heal.

    One node is crashed mid-run and restarted (on the live substrate
    that is a real SIGKILL and a respawned process), then a different
    node is partitioned off and healed. Both victims must rejoin via
    certificate-verified catch-up (section 8.3) and the cluster must
    still converge on byte-identical chains — the full weak-synchrony
    recovery story on a deployment sized so that any single victim
    leaves 80% of the stake online (BA* quorums keep forming).

    Timing: at the live chaos parameter scale
    (:data:`repro.chaos.live.LIVE_CHAOS_PARAMS`) the lambdas are
    timeout *ceilings* — a healthy loopback round commits in well under
    a second, so the windows here are tight: the crash covers roughly
    rounds 2-8 and the partition starts near where a fast host finishes
    its rounds. Recovery does not depend on that pacing, though:
    finished processes linger and keep serving catch-up until the
    coordinator releases them, so both victims converge even when the
    survivors raced far ahead (and on slow hosts, where the windows
    land mid-run, quorums keep forming throughout).
    """
    victim = num_users - 2
    isolated = num_users - 1
    return ScenarioScript(
        name="kill-partition",
        seed=seed,
        num_users=num_users,
        rounds=rounds,
        payments=10,
        liveness_bound=30.0,
        actions=(
            FaultAction(kind="crash", start=1.5, end=4.5,
                        nodes=(victim,)),
            FaultAction(kind="partition", start=6.0, end=9.0,
                        groups=(tuple(node for node in range(num_users)
                                      if node != isolated),
                                (isolated,))),
        ),
    )
