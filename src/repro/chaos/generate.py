"""Seeded random scenario generation for chaos sweeps.

:func:`generate_scenario` draws a small fault timeline from a generator
seeded by ``[seed, tag]`` — independent of both the simulation RNG and
the injector's fault RNG, so the *shape* of scenario ``k`` never shifts
when either of those evolves. The same seed always yields the same
script (and therefore, through :func:`repro.chaos.runner.run_scenario`,
a byte-identical verdict).

Generated scenarios stay inside the paper's operating envelope on
purpose: every fault heals (transient crashes restart, windows close by
``~70s``), loss rates stay moderate, and at most one "heavy" fault
(partition / crash / dos) appears per script — the sweep's job is to
certify safety under realistic turbulence and liveness after it clears,
not to prove theorems the protocol does not claim (e.g. progress during
a permanent quorum-killing split).
"""

from __future__ import annotations

import numpy as np

from repro.chaos.scenario import FaultAction, ScenarioScript

#: Seed-sequence spice for scenario generation (distinct from the
#: injector's fault-RNG tag, so generation and injection draw from
#: unrelated streams even for the same seed).
_GEN_RNG_TAG = 0xFA117

#: Faults that materially suppress quorums; one per scenario at most.
_HEAVY = ("partition", "crash", "dos")
_LIGHT = ("delay", "loss", "duplicate", "reorder")


def _window(rng: np.random.Generator, *, latest_end: float = 16.0
            ) -> tuple[float, float]:
    """A fault window on the *round* timescale.

    With the test protocol parameters a round completes in ~2.5
    simulated seconds, so windows must open within the first round or
    two to actually bite; a window opening at t=40 would start after a
    2-round scenario has already finished, making the sweep vacuous.
    """
    start = round(float(rng.uniform(0.2, 3.5)), 2)
    duration = round(float(rng.uniform(3.0, 10.0)), 2)
    return start, min(round(start + duration, 2), latest_end)


def _pick_nodes(rng: np.random.Generator, num_users: int,
                count: int) -> tuple[int, ...]:
    """Choose distinct victims from 1..n-1 (node 0 stays untouched: it

    hosts the harness's end-of-round housekeeping hook and serves as the
    always-honest observer every test reads results from)."""
    chosen = rng.choice(np.arange(1, num_users), size=count, replace=False)
    return tuple(sorted(int(node) for node in chosen))


def _heavy_action(rng: np.random.Generator, kind: str,
                  num_users: int) -> FaultAction:
    start, end = _window(rng)
    if kind == "partition":
        nodes = list(range(num_users))
        permutation = rng.permutation(num_users)
        cut = int(rng.integers(num_users // 4, 3 * num_users // 4 + 1))
        cut = max(1, min(num_users - 1, cut))
        left = tuple(sorted(int(nodes[i]) for i in permutation[:cut]))
        right = tuple(sorted(int(nodes[i]) for i in permutation[cut:]))
        return FaultAction(kind="partition", start=start, end=end,
                           groups=(left, right))
    if kind == "crash":
        return FaultAction(kind="crash", start=start, end=end,
                           nodes=_pick_nodes(rng, num_users, 1))
    return FaultAction(kind="dos", start=start, end=end,
                       nodes=_pick_nodes(rng, num_users,
                                         int(rng.integers(1, 3))))


def _light_action(rng: np.random.Generator, kind: str,
                  num_users: int) -> FaultAction:
    start, end = _window(rng)
    # Half the light faults hit every link, half a victim's links only.
    nodes = (() if rng.random() < 0.5
             else _pick_nodes(rng, num_users, 1))
    if kind == "delay":
        return FaultAction(kind="delay", start=start, end=end, nodes=nodes,
                           extra_delay=round(float(rng.uniform(0.2, 1.5)),
                                             2))
    if kind == "loss":
        return FaultAction(kind="loss", start=start, end=end, nodes=nodes,
                           rate=round(float(rng.uniform(0.05, 0.35)), 2))
    if kind == "duplicate":
        return FaultAction(kind="duplicate", start=start, end=end,
                           nodes=nodes,
                           rate=round(float(rng.uniform(0.1, 0.5)), 2),
                           jitter=round(float(rng.uniform(0.05, 0.5)), 2))
    return FaultAction(kind="reorder", start=start, end=end, nodes=nodes,
                       jitter=round(float(rng.uniform(0.1, 1.0)), 2))


def generate_scenario(seed: int, *, num_users: int = 10, rounds: int = 2,
                      max_actions: int = 3,
                      liveness_bound: float = 150.0) -> ScenarioScript:
    """Draw one reproducible scenario for ``seed``."""
    rng = np.random.default_rng([seed, _GEN_RNG_TAG])
    count = int(rng.integers(1, max_actions + 1))
    actions: list[FaultAction] = []
    heavy_used = False
    for _ in range(count):
        want_heavy = not heavy_used and float(rng.random()) < 0.4
        if want_heavy:
            heavy_used = True
            kind = str(rng.choice(_HEAVY))
            actions.append(_heavy_action(rng, kind, num_users))
        else:
            kind = str(rng.choice(_LIGHT))
            actions.append(_light_action(rng, kind, num_users))
    script = ScenarioScript(
        name=f"gen-{seed}",
        seed=seed,
        num_users=num_users,
        rounds=rounds,
        liveness_bound=liveness_bound,
        actions=tuple(sorted(actions, key=lambda a: (a.start, a.kind))),
    )
    script.validate()
    return script
